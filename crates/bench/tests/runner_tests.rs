//! Harness-level tests: the parallel runner agrees with the sequential one
//! on candidate counts and exact counters, the dataset builders honour
//! their parameters, and the CSV mirror round-trips.

// Integration test: exact expected values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd_bench::{build, run_cell, run_cell_parallel, DatasetId, Report, Scale};
use osd_core::{FilterConfig, Operator};

fn tiny() -> Scale {
    Scale {
        n: 120,
        queries: 6,
        m_d: 4,
        m_q: 3,
        ..Scale::laptop()
    }
}

#[test]
fn parallel_runner_matches_sequential() {
    let bench = build(DatasetId::AN, &tiny());
    for op in [Operator::SSd, Operator::PSd, Operator::FPlusSd] {
        let seq = run_cell(&bench, op, &FilterConfig::all());
        let par = run_cell_parallel(&bench, op, &FilterConfig::all(), 4);
        assert_eq!(
            seq.avg_candidates, par.avg_candidates,
            "{op:?} candidates diverge"
        );
        assert_eq!(
            seq.avg_comparisons, par.avg_comparisons,
            "{op:?} counters diverge"
        );
        assert_eq!(seq.avg_flow_runs, par.avg_flow_runs);
        assert_eq!(seq.avg_mbr_checks, par.avg_mbr_checks);
    }
}

#[test]
fn dataset_builders_honour_scale() {
    let scale = tiny();
    for id in DatasetId::ALL {
        let bench = build(id, &scale);
        assert_eq!(bench.queries.len(), scale.queries, "{id:?}");
        assert!(!bench.db.is_empty(), "{id:?}");
        let dim = bench.db.dim();
        assert!(dim == 2 || dim == 3, "{id:?} unexpected dim {dim}");
        for q in &bench.queries {
            assert_eq!(q.object().dim(), dim, "{id:?} query dim mismatch");
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let a = build(DatasetId::Gw, &tiny());
    let b = build(DatasetId::Gw, &tiny());
    assert_eq!(a.db.len(), b.db.len());
    assert_eq!(a.db.store().coords(), b.db.store().coords());
    assert_eq!(a.db.store().probs(), b.db.store().probs());
    // Same workload ⇒ identical candidate counts.
    let ra = run_cell(&a, Operator::SsSd, &FilterConfig::all());
    let rb = run_cell(&b, Operator::SsSd, &FilterConfig::all());
    assert_eq!(ra.avg_candidates, rb.avg_candidates);
}

#[test]
fn csv_mirror_writes_files() {
    let dir = std::env::temp_dir().join(format!("osd-report-{}", std::process::id()));
    let report = Report::with_csv(&dir);
    report.table(
        "Test table: demo",
        "x",
        &["1".into(), "2".into()],
        &[("row".to_string(), vec![3.0, 4.0])],
    );
    let path = dir.join("test_table_demo.csv");
    let content = std::fs::read_to_string(&path).expect("csv written");
    assert!(content.contains("x,1,2"));
    assert!(content.contains("row,3,4"));
    std::fs::remove_dir_all(&dir).ok();
}
