//! Smoke tests: every figure function runs end-to-end at micro scale
//! without panicking. Guards the harness against API drift.

// Integration test: exact expected values and aborts are intentional.
#![allow(
    clippy::float_cmp,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic
)]

use osd_bench::{fig10, fig11_13, fig12, fig14, fig16, motivation, Report, Scale, SweepParam};

fn micro() -> Scale {
    Scale {
        n: 60,
        m_d: 3,
        m_q: 3,
        queries: 2,
        ..Scale::laptop()
    }
}

#[test]
fn fig10_and_12_run() {
    let s = micro();
    let r = Report::stdout();
    fig10(&s, &r);
    fig12(&s, &r);
}

#[test]
fn sweeps_run() {
    let s = micro();
    let r = Report::stdout();
    // One cheap axis suffices to exercise the sweep plumbing; the n-axis
    // would override scale.n with the laptop sweep values.
    fig11_13(SweepParam::Hq, &s, false, &r);
    fig11_13(SweepParam::Dim, &s, false, &r);
}

#[test]
fn fig14_runs() {
    fig14(&micro(), &Report::stdout());
}

#[test]
fn fig16_runs() {
    let s = Scale {
        n: 40,
        queries: 1,
        ..micro()
    };
    fig16(&s, false, &Report::stdout());
}

#[test]
fn motivation_runs() {
    let s = Scale {
        n: 30,
        queries: 2,
        ..micro()
    };
    motivation(&s, &Report::stdout());
}
