//! `repro trace`: tracer-overhead quantification, written to
//! `BENCH_trace.json`.
//!
//! The flight recorder's contract is that tracing is *pure observability*:
//! switching it on may cost a bounded slice of wall-clock but must never
//! change a result. This mode measures both halves of that claim on the
//! A-N workload — every query runs traced and untraced in interleaved
//! rounds, the candidate sets (ids, `min_dist` bit patterns) and legacy
//! counters must match exactly, and the per-query latency medians give the
//! tracer's overhead. With the `obs` feature off the traced run must
//! additionally produce no traces at all (the recorder stays empty), which
//! is the zero-cost half of the contract.
//!
//! Smoke runs (`--smoke`) are assertion-only: they validate bit-identity
//! and trace structure but skip the overhead gate (timing on a loaded CI
//! box is noise) and never clobber the measured artifact unless `--json`
//! names a path explicitly.

use crate::datasets::{build, DatasetId, Workbench};
use crate::params::Scale;
use osd_core::{nn_candidates, FilterConfig, FlightRecorder, Operator, QueryTrace, Stats};
use osd_obs::Stopwatch;

/// How slow a query must be (relative to nothing — the threshold is in
/// absolute nanoseconds) for the bench recorder to promote it to the slow
/// log. Low enough that a real workload always promotes a few.
const BENCH_SLOW_THRESHOLD_NS: u64 = 50_000;

/// A measured tracer-overhead report.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Dataset label (the bench runs on A-N).
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Objects in the database.
    pub objects: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Interleaved measurement rounds per configuration.
    pub rounds: usize,
    /// Whether the build records anything at all.
    pub traced_enabled: bool,
    /// Median per-query latency without tracing, nanoseconds.
    pub untraced_median_ns: u64,
    /// Median per-query latency with tracing, nanoseconds.
    pub traced_median_ns: u64,
    /// `(traced - untraced) / untraced`, percent; negative values are
    /// measurement noise and clamp to zero.
    pub overhead_pct: f64,
    /// Total spans across the final round's traces (0 with obs off).
    pub spans_total: usize,
    /// The recorder fed by the final traced round.
    pub recorder: FlightRecorder,
}

fn median(ns: &mut [u64]) -> u64 {
    if ns.is_empty() {
        return 0;
    }
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// The bit-exact projection of one query result: ids, `min_dist` bit
/// patterns and the deterministic counters.
fn fingerprint(
    db: &osd_core::Database,
    q: &osd_core::PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> (Vec<(usize, u64)>, Stats) {
    let res = nn_candidates(db, q, op, cfg);
    (
        res.candidates
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect(),
        res.stats,
    )
}

/// Runs the A-N workload traced and untraced in interleaved rounds,
/// validates bit-identity, and returns the latency medians plus the
/// recorder state of the final traced round.
///
/// # Errors
///
/// Returns a description of the first divergence: a traced query whose
/// candidates or counters differ from the untraced run, a traced query
/// that produced no trace (obs on), or a trace that appeared in a build
/// that must not record (obs off).
pub fn measure_trace(scale: &Scale, op: Operator, rounds: usize) -> Result<TraceReport, String> {
    let bench: Workbench = build(DatasetId::AN, scale);
    let plain = FilterConfig::all();
    let traced = FilterConfig::all().traced();
    let rounds = rounds.max(1);

    // Bit-identity first, once per query: tracing must be invisible in
    // the result.
    for (i, q) in bench.queries.iter().enumerate() {
        if fingerprint(&bench.db, q, op, &plain) != fingerprint(&bench.db, q, op, &traced) {
            return Err(format!(
                "query {i}: tracing changed the result — the observer is not pure"
            ));
        }
    }

    // Interleaved timing rounds; the last traced round also feeds the
    // recorder so the report can show ring/slow-log behaviour.
    let mut untraced_ns = Vec::with_capacity(rounds * bench.queries.len());
    let mut traced_ns = Vec::with_capacity(rounds * bench.queries.len());
    let mut recorder = FlightRecorder::new(
        osd_obs::trace::DEFAULT_RING_CAPACITY,
        BENCH_SLOW_THRESHOLD_NS,
        osd_obs::trace::DEFAULT_SLOW_CAPACITY,
    );
    let mut spans_total = 0usize;
    for round in 0..rounds {
        let last = round + 1 == rounds;
        for (i, q) in bench.queries.iter().enumerate() {
            let sw = Stopwatch::start();
            let _ = nn_candidates(&bench.db, q, op, &plain);
            untraced_ns.push(sw.elapsed_nanos());

            let sw = Stopwatch::start();
            let res = nn_candidates(&bench.db, q, op, &traced);
            traced_ns.push(sw.elapsed_nanos());

            match (res.trace, QueryTrace::enabled()) {
                (Some(mut t), true) => {
                    if t.spans.is_empty() || !t.spans[0].is_root() {
                        return Err(format!("query {i}: trace has no root span"));
                    }
                    if last {
                        spans_total += t.spans.len();
                        t.seq = i as u64;
                        recorder.record(t);
                    }
                }
                (None, true) => {
                    return Err(format!("query {i}: traced run produced no trace"));
                }
                (Some(_), false) => {
                    return Err(format!(
                        "query {i}: obs-off build recorded a trace — the tracer is not compiled out"
                    ));
                }
                (None, false) => {}
            }
        }
    }

    let untraced_median_ns = median(&mut untraced_ns);
    let traced_median_ns = median(&mut traced_ns);
    let overhead_pct = if untraced_median_ns == 0 {
        0.0
    } else {
        let raw = (traced_median_ns as f64 - untraced_median_ns as f64) / untraced_median_ns as f64
            * 100.0;
        raw.max(0.0)
    };

    Ok(TraceReport {
        dataset: DatasetId::AN.label(),
        op: op.label(),
        objects: bench.db.len(),
        queries: bench.queries.len(),
        rounds,
        traced_enabled: QueryTrace::enabled(),
        untraced_median_ns,
        traced_median_ns,
        overhead_pct,
        spans_total,
        recorder,
    })
}

impl TraceReport {
    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"objects\": {},\n", self.objects));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"traced_enabled\": {},\n", self.traced_enabled));
        out.push_str("  \"bit_identical\": true,\n");
        out.push_str(&format!(
            "  \"untraced_median_ns\": {},\n",
            self.untraced_median_ns
        ));
        out.push_str(&format!(
            "  \"traced_median_ns\": {},\n",
            self.traced_median_ns
        ));
        out.push_str(&format!("  \"overhead_pct\": {:.2},\n", self.overhead_pct));
        out.push_str(&format!("  \"spans_total\": {},\n", self.spans_total));
        out.push_str("  \"recorder\": {\n");
        out.push_str(&format!(
            "    \"recorded\": {},\n",
            self.recorder.recorded()
        ));
        out.push_str(&format!("    \"retained\": {},\n", self.recorder.len()));
        out.push_str(&format!("    \"evicted\": {},\n", self.recorder.evicted()));
        out.push_str(&format!(
            "    \"promoted_slow\": {},\n",
            self.recorder.promoted()
        ));
        out.push_str(&format!(
            "    \"slow_threshold_ns\": {}\n",
            self.recorder.slow_threshold_ns()
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// `repro trace`: prints the overhead table, optionally writes the JSON
/// artifact, and exits non-zero if the purity validation (or, on full
/// runs of an obs build, the <5% median-overhead gate) fails.
pub fn trace(scale: &Scale, smoke: bool, json: Option<&str>) {
    let rounds = if smoke { 2 } else { 9 };
    let report = match measure_trace(scale, Operator::PSd, rounds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\n== Tracer overhead: {} on {} ({} objects, {} queries × {} rounds, obs {}) ==",
        report.op,
        report.dataset,
        report.objects,
        report.queries,
        report.rounds,
        if report.traced_enabled { "on" } else { "off" }
    );
    println!(
        "{:>24} {:>14}",
        "untraced median ns", report.untraced_median_ns
    );
    println!("{:>24} {:>14}", "traced median ns", report.traced_median_ns);
    println!("{:>24} {:>13.2}%", "overhead", report.overhead_pct);
    println!("{:>24} {:>14}", "spans (final round)", report.spans_total);
    println!(
        "{:>24} {:>14}",
        "slow-log promotions",
        report.recorder.promoted()
    );
    if report.traced_enabled && !smoke && report.overhead_pct >= 5.0 {
        eprintln!(
            "trace: median overhead {:.2}% breaches the 5% budget",
            report.overhead_pct
        );
        std::process::exit(1);
    }
    if let Some(path) = json {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n: 80,
            m_d: 4,
            m_q: 3,
            queries: 6,
            ..Scale::laptop()
        }
    }

    #[test]
    fn measure_validates_purity_and_counts_spans() {
        let report = measure_trace(&tiny(), Operator::PSd, 2).unwrap();
        assert_eq!(report.queries, 6);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.traced_enabled, QueryTrace::enabled());
        if QueryTrace::enabled() {
            assert!(report.spans_total > 0);
            assert_eq!(report.recorder.recorded(), 6);
        } else {
            assert_eq!(report.spans_total, 0);
            assert!(report.recorder.is_empty());
        }
    }

    #[test]
    fn report_json_is_balanced_and_carries_the_gate_fields() {
        let report = measure_trace(&tiny(), Operator::SSd, 1).unwrap();
        let json = report.to_json();
        for key in [
            "\"untraced_median_ns\"",
            "\"traced_median_ns\"",
            "\"overhead_pct\"",
            "\"bit_identical\": true",
            "\"recorder\"",
            "\"promoted_slow\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
