//! `repro warm` — epoch-keyed warm-cache benchmark.
//!
//! Runs a repeated-query workload twice — fully cold (one throwaway
//! dominance cache per query) and warm (one snapshot-scoped
//! [`WarmPool`] shared by the whole batch) — and measures three things:
//!
//! 1. **bound-reuse savings** — median per-query level-prune + refine
//!    time, warm vs cold; the warm path reuses level snapshots, group
//!    MBRs and bound distributions across queries, so this combined
//!    median is where the reuse shows up;
//! 2. **bit-identity** — candidate ids, `min_dist` bit patterns and
//!    [`Stats`](osd_core::Stats) counters must match the cold run
//!    exactly, flat and sharded (the warm cache is a pure
//!    memoisation layer);
//! 3. **invalidation under churn** — a [`PublishedIndex`] applies an
//!    insert/delete/update script; after every epoch the same batch
//!    runs warm (through the index's own pool, invalidated
//!    incrementally from the epoch log) and cold, again bit-identical.
//!
//! The full run writes `BENCH_warm.json`; `--smoke` runs a small
//! assertion-only point for CI and never touches the artifact.

use crate::datasets::{build_objects, build_queries, DatasetId};
use crate::params::Scale;
use crate::throughput::host_cpus;
use osd_core::{
    Database, FilterConfig, NncResult, Operator, PublishedIndex, QueryEngine, ShardedDatabase,
    WarmPool,
};
use osd_obs::Phase;
use std::time::Instant;

/// A full `repro warm` run.
#[derive(Debug, Clone)]
pub struct WarmReport {
    /// Dataset label.
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Objects in the database.
    pub objects: usize,
    /// Distinct query specs in the workload.
    pub base_queries: usize,
    /// How many times each spec repeats (shuffled interleaving).
    pub repeats: usize,
    /// STR tiles of the sharded validation index.
    pub shards: usize,
    /// Logical CPUs the host reports.
    pub host_cpus: usize,
    /// Wall-clock seconds for the cold batch (sequential).
    pub cold_elapsed_s: f64,
    /// Wall-clock seconds for the warm batch (sequential).
    pub warm_elapsed_s: f64,
    /// Median per-query level-prune + refine nanoseconds, cold run.
    pub cold_prune_refine_median_ns: u64,
    /// Median per-query level-prune + refine nanoseconds, warm run.
    pub warm_prune_refine_median_ns: u64,
    /// `1 - warm/cold` over the combined medians (0 when unmeasurable).
    pub prune_refine_reduction: f64,
    /// Warm-cache hits over the whole warm batch.
    pub warm_hits: u64,
    /// Warm-cache misses (entry builds) over the whole warm batch.
    pub warm_misses: u64,
    /// Approximate bytes resident in the warm cache after the batch.
    pub warm_resident_bytes: u64,
    /// Warm results bit-identical to cold — flat index.
    pub bit_identical: bool,
    /// Warm results bit-identical to cold — sharded index.
    pub sharded_bit_identical: bool,
    /// Mutations published in the churn phase.
    pub churn_mutations: usize,
    /// Accumulated warm batch seconds across all churn epochs.
    pub churn_warm_s: f64,
    /// Accumulated cold batch seconds across the same epochs.
    pub churn_cold_s: f64,
    /// Warm entries discarded by epoch invalidation during churn.
    pub churn_evictions: u64,
    /// Warm results bit-identical to cold at every churn epoch.
    pub churn_bit_identical: bool,
}

impl WarmReport {
    /// Renders the report as a JSON document (hand-formatted; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"objects\": {},\n", self.objects));
        out.push_str(&format!("  \"base_queries\": {},\n", self.base_queries));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!(
            "  \"elapsed_s\": {{ \"cold\": {:.6}, \"warm\": {:.6} }},\n",
            self.cold_elapsed_s, self.warm_elapsed_s
        ));
        out.push_str(&format!(
            "  \"prune_refine_median_ns\": {{ \"cold\": {}, \"warm\": {}, \"reduction\": {:.4} }},\n",
            self.cold_prune_refine_median_ns,
            self.warm_prune_refine_median_ns,
            self.prune_refine_reduction
        ));
        out.push_str(&format!(
            "  \"warm_cache\": {{ \"hits\": {}, \"misses\": {}, \"resident_bytes\": {} }},\n",
            self.warm_hits, self.warm_misses, self.warm_resident_bytes
        ));
        out.push_str(&format!(
            "  \"bit_identical\": {},\n",
            self.bit_identical && self.sharded_bit_identical && self.churn_bit_identical
        ));
        out.push_str(&format!(
            "  \"sharded_bit_identical\": {},\n",
            self.sharded_bit_identical
        ));
        out.push_str(&format!(
            "  \"churn\": {{ \"mutations\": {}, \"warm_s\": {:.6}, \"cold_s\": {:.6}, \
             \"evictions\": {}, \"bit_identical\": {} }}\n",
            self.churn_mutations,
            self.churn_warm_s,
            self.churn_cold_s,
            self.churn_evictions,
            self.churn_bit_identical
        ));
        out.push_str("}\n");
        out
    }
}

/// `(id, min_dist bits, stats)` fingerprint of one result — equality is
/// the bit-identity contract.
fn fingerprint(r: &NncResult) -> (Vec<(usize, u64)>, osd_core::Stats) {
    (
        r.candidates
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect(),
        r.stats,
    )
}

/// Median per-query level-prune + refine nanoseconds (upper median; 0
/// when the batch is empty or the `obs` feature is off).
fn prune_refine_median(results: &[NncResult]) -> u64 {
    let mut per_query: Vec<u64> = results
        .iter()
        .map(|r| r.metrics.phase_nanos(Phase::LevelPrune) + r.metrics.phase_nanos(Phase::Refine))
        .collect();
    per_query.sort_unstable();
    per_query.get(per_query.len() / 2).copied().unwrap_or(0)
}

/// The repeated-query workload: each base spec appears `repeats` times,
/// interleaved (q0 q1 … qk q0 q1 …) so warm reuse is cross-query, not
/// just adjacent duplicates.
fn repeat_interleaved(
    base: &[osd_core::PreparedQuery],
    repeats: usize,
) -> Vec<osd_core::PreparedQuery> {
    let mut out = Vec::with_capacity(base.len() * repeats);
    for _ in 0..repeats {
        out.extend(base.iter().cloned());
    }
    out
}

/// Runs the warm benchmark under `scale`: cold/warm batches on the flat
/// index, a sharded cross-validation, and the churn phase.
///
/// # Panics
/// Panics if a mutation fails to publish — that would be an epoch
/// machinery bug, not a measurement artefact.
pub fn measure_warm(scale: &Scale, shards: usize, repeats: usize, op: Operator) -> WarmReport {
    let objects = build_objects(DatasetId::AN, scale);
    let base = build_queries(&objects, DatasetId::AN, scale);
    let queries = repeat_interleaved(&base, repeats.max(1));
    let cfg = FilterConfig::all();

    let db = Database::new(objects.clone());

    // Cold: the engine default — no pool, per-query caches only.
    let cold_engine = QueryEngine::with_config(&db, op, cfg);
    let started = Instant::now();
    let cold = cold_engine.run_batch(&queries, 1);
    let cold_elapsed_s = started.elapsed().as_secs_f64();

    // Warm: one snapshot-scoped pool shared by the whole batch.
    let pool = WarmPool::new();
    let warm_engine = cold_engine.with_warm(&pool);
    let started = Instant::now();
    let warm = warm_engine.run_batch(&queries, 1);
    let warm_elapsed_s = started.elapsed().as_secs_f64();

    let bit_identical = cold
        .iter()
        .zip(warm.iter())
        .all(|(c, w)| fingerprint(c) == fingerprint(w));
    let stats = pool.stats();

    // Sharded cross-validation: same contract through scatter-gather.
    let sdb = ShardedDatabase::new(objects.clone(), shards);
    let s_cold = QueryEngine::with_config(&sdb, op, cfg).run_batch(&queries, 1);
    let s_pool = WarmPool::new();
    let s_warm = QueryEngine::with_config(&sdb, op, cfg)
        .with_warm(&s_pool)
        .run_batch(&queries, 1);
    let sharded_bit_identical = s_cold
        .iter()
        .zip(s_warm.iter())
        .all(|(c, w)| fingerprint(c) == fingerprint(w));

    // Churn: every published epoch invalidates incrementally; the batch
    // must stay bit-identical to a cold run on the same snapshot.
    let churn_mutations = (scale.queries * 3).max(9);
    let published = PublishedIndex::new(ShardedDatabase::new(objects.clone(), shards));
    let mut alive: Vec<usize> = (0..objects.len()).collect();
    // Candidate ids of the last warm batch: objects the cache certainly
    // holds entries for, so deletes/updates exercise real eviction.
    let mut hot: Vec<usize> = Vec::new();
    let mut churn_warm_s = 0.0f64;
    let mut churn_cold_s = 0.0f64;
    let mut churn_bit_identical = true;
    for i in 0..churn_mutations {
        let pick = |fallback: usize, hot: &[usize], alive: &[usize]| {
            hot.iter()
                .find(|id| alive.contains(id))
                .copied()
                .unwrap_or(alive[fallback % alive.len()])
        };
        match i % 3 {
            0 => {
                let obj = objects[(i * 13) % objects.len()].clone();
                let id = published.insert(obj).unwrap_or_else(|e| {
                    unreachable!("insert must publish: {e}");
                });
                alive.push(id);
            }
            1 => {
                let victim = pick(i * 7, &hot, &alive);
                let pos = alive.iter().position(|&x| x == victim).unwrap();
                alive.swap_remove(pos);
                published.delete(victim).unwrap_or_else(|e| {
                    unreachable!("delete of live id {victim} must publish: {e}");
                });
            }
            _ => {
                let target = pick(i * 5, &hot, &alive);
                let obj = objects[(i + 1) % objects.len()].clone();
                published.update(target, obj).unwrap_or_else(|e| {
                    unreachable!("update of live id {target} must publish: {e}");
                });
            }
        }
        let snap = published.pin();
        let started = Instant::now();
        let w = QueryEngine::with_config(&*snap, op, cfg)
            .with_warm(published.warm_pool())
            .run_batch(&base, 1);
        churn_warm_s += started.elapsed().as_secs_f64();
        hot = w
            .iter()
            .flat_map(|r| r.candidates.iter().map(|c| c.id))
            .collect();
        let started = Instant::now();
        let c = QueryEngine::with_config(&*snap, op, cfg).run_batch(&base, 1);
        churn_cold_s += started.elapsed().as_secs_f64();
        churn_bit_identical &= w
            .iter()
            .zip(c.iter())
            .all(|(wr, cr)| fingerprint(wr) == fingerprint(cr));
    }
    let churn_evictions = published.warm_pool().stats().evictions;

    let cold_med = prune_refine_median(&cold);
    let warm_med = prune_refine_median(&warm);
    WarmReport {
        dataset: DatasetId::AN.label(),
        op: op.label(),
        objects: db.len(),
        base_queries: base.len(),
        repeats: repeats.max(1),
        shards,
        host_cpus: host_cpus(),
        cold_elapsed_s,
        warm_elapsed_s,
        cold_prune_refine_median_ns: cold_med,
        warm_prune_refine_median_ns: warm_med,
        prune_refine_reduction: if cold_med > 0 {
            1.0 - warm_med as f64 / cold_med as f64
        } else {
            0.0
        },
        warm_hits: stats.hits,
        warm_misses: stats.misses,
        warm_resident_bytes: stats.resident_bytes,
        bit_identical,
        sharded_bit_identical,
        churn_mutations,
        churn_warm_s,
        churn_cold_s,
        churn_evictions,
        churn_bit_identical,
    }
}

/// The workload shape of a warm point: enough objects that bound
/// distributions dominate, a small base query set repeated many times.
fn scale_for(n: usize, queries: usize) -> Scale {
    Scale {
        n,
        m_d: 10,
        m_q: 6,
        queries,
        dim: 2,
        seed: 0x0aa7,
        ..Scale::laptop()
    }
}

/// Runs the warm benchmark and prints the table; writes the JSON
/// artifact when `json_path` is given. `smoke` shrinks the run to an
/// assertion-heavy CI-sized point.
pub fn warm(shards: usize, smoke: bool, json_path: Option<&str>) {
    let op = Operator::PSd;
    let (n, queries, repeats) = if smoke { (250, 4, 3) } else { (1_500, 10, 12) };
    println!(
        "\n== Warm: {} on A-N ({} objects, {} base queries x{} repeats, {} shards) ==",
        op.label(),
        n,
        queries,
        repeats,
        shards
    );
    let r = measure_warm(&scale_for(n, queries), shards, repeats, op);
    assert!(
        r.bit_identical && r.sharded_bit_identical && r.churn_bit_identical,
        "warm path diverged from cold — the memoisation contract is broken"
    );
    if smoke {
        assert!(r.warm_hits > 0, "a repeated workload must hit the cache");
        assert!(r.warm_misses > 0, "first touches must be counted as misses");
        assert!(
            r.churn_evictions > 0,
            "churn must evict touched warm entries"
        );
    }
    println!(
        "batch:  cold {:.3}ms  warm {:.3}ms",
        r.cold_elapsed_s * 1e3,
        r.warm_elapsed_s * 1e3
    );
    println!(
        "prune+refine median: cold {}ns  warm {}ns  ({:.1}% reduction)",
        r.cold_prune_refine_median_ns,
        r.warm_prune_refine_median_ns,
        r.prune_refine_reduction * 100.0
    );
    println!(
        "cache:  {} hits, {} misses, {} resident bytes",
        r.warm_hits, r.warm_misses, r.warm_resident_bytes
    );
    println!(
        "churn:  {} epochs, warm {:.3}ms vs cold {:.3}ms, {} evictions",
        r.churn_mutations,
        r.churn_warm_s * 1e3,
        r.churn_cold_s * 1e3,
        r.churn_evictions
    );
    println!(
        "bit-identical: flat {}  sharded {}  churn {}",
        r.bit_identical, r.sharded_bit_identical, r.churn_bit_identical
    );
    if let Some(path) = json_path {
        match std::fs::write(path, r.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_batches_are_bit_identical_and_hit() {
        let r = measure_warm(&scale_for(150, 3), 3, 3, Operator::SSd);
        assert!(r.bit_identical);
        assert!(r.sharded_bit_identical);
        assert!(r.churn_bit_identical);
        assert!(r.warm_hits > 0);
        assert!(r.warm_misses > 0);
        assert!(r.churn_evictions > 0);
        assert_eq!(r.base_queries, 3);
        assert_eq!(r.repeats, 3);
    }

    #[test]
    fn json_is_balanced_and_carries_the_contract() {
        let r = measure_warm(&scale_for(100, 2), 2, 2, Operator::PSd);
        let json = r.to_json();
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"warm_cache\": {"));
        assert!(json.contains("\"churn\": {"));
        assert!(json.contains("\"prune_refine_median_ns\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
