//! # osd-bench
//!
//! The experiment harness reproducing every figure of the paper's
//! evaluation (§6 and Appendix C). The `repro` binary exposes one
//! subcommand per figure; `crates/bench/benches/` holds Criterion
//! microbenchmarks of the dominance-check kernels.
//!
//! ```text
//! cargo run --release -p osd-bench --bin repro -- fig10
//! cargo run --release -p osd-bench --bin repro -- fig11 --param hd
//! cargo run --release -p osd-bench --bin repro -- all --paper-scale
//! ```

#![warn(missing_docs)]
// The bench harness is a leaf crate that aborts on malformed experiment
// state; the workspace panic-family lints are relaxed here (and in the CLI)
// only — `cargo run -p xtask -- check` enforces that no library crate does
// the same.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod datasets;
pub mod figures;
pub mod kernels;
pub mod motivation;
pub mod mutate;
pub mod params;
pub mod profile;
pub mod runner;
pub mod scale;
pub mod storage;
pub mod throughput;
pub mod trace;
pub mod warm;

pub use datasets::{build, DatasetId, Workbench};
pub use figures::{fig10, fig10_with_threads, fig11_13, fig12, fig14, fig16, SweepParam};
pub use kernels::{kernels, measure_kernels, KernelsReport};
pub use motivation::motivation;
pub use mutate::{measure_mutate, mutate, MutateReport};
pub use params::{Scale, Sweeps};
pub use profile::{measure_profile, profile, ProfileReport};
pub use runner::{
    print_table, run_all_ops, run_all_ops_parallel, run_cell, run_cell_parallel, CellResult, Report,
};
pub use scale::{measure_point, scale, ScalePoint, ScaleReport};
pub use storage::{measure_storage, storage, StorageReport};
pub use throughput::{
    host_cpus, measure, phase_medians, throughput, ThroughputPoint, ThroughputReport,
};
pub use trace::{measure_trace, trace, TraceReport};
pub use warm::{measure_warm, warm, WarmReport};
