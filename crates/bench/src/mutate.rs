//! `repro mutate` — churn benchmark for the epoch-published store.
//!
//! Seeds a [`PublishedIndex`] over the USA surrogate, then drives a
//! writer applying an insert/delete/update churn script while reader
//! threads pin snapshots and query them. Three things are measured:
//!
//! 1. **publish latency** — clone-apply-swap time per mutation (mean,
//!    p95, max), i.e. the write-side cost of snapshot isolation;
//! 2. **reader throughput during churn** — queries per second over the
//!    pinned snapshots while the writer publishes concurrently; every
//!    reader asserts its candidates are live in the snapshot it pinned;
//! 3. **continuous-NNC repair vs full re-query** — after every publish a
//!    standing [`ContinuousNnc`] handle is refreshed from the epoch log
//!    and a full re-query runs on the same snapshot; the two must be
//!    bit-identical, and their accumulated times quantify what the
//!    incremental repair saves.
//!
//! The full run writes `BENCH_mutate.json`; `--smoke` runs a small
//! assertion-only point for CI and never touches the artifact.

use crate::datasets::{build_objects, build_queries, DatasetId};
use crate::params::Scale;
use crate::throughput::host_cpus;
use osd_core::{
    nn_candidates, ContinuousNnc, FilterConfig, Operator, PublishedIndex, Repair, ShardedDatabase,
    SpatialIndex,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A full `repro mutate` run.
#[derive(Debug, Clone)]
pub struct MutateReport {
    /// Dataset label.
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Seed objects before churn.
    pub n0: usize,
    /// Instances per object.
    pub m_d: usize,
    /// Mutations published (insert/delete/update round-robin).
    pub mutations: usize,
    /// STR tiles of the sharded index (1 = flat layout).
    pub shards: usize,
    /// Concurrent reader threads during churn.
    pub readers: usize,
    /// Logical CPUs the host reports.
    pub host_cpus: usize,
    /// Final snapshot epoch (== mutations that published).
    pub final_epoch: u64,
    /// Live objects in the final snapshot.
    pub final_live: usize,
    /// Tombstones in the final snapshot's id space.
    pub final_tombstones: usize,
    /// Mean publish (clone-apply-swap) latency, seconds.
    pub publish_mean_s: f64,
    /// 95th-percentile publish latency, seconds.
    pub publish_p95_s: f64,
    /// Worst publish latency, seconds.
    pub publish_max_s: f64,
    /// Reader queries per second while the writer churned.
    pub reader_qps: f64,
    /// Total queries the readers completed during churn.
    pub reader_queries: u64,
    /// Accumulated `ContinuousNnc::refresh` time across all epochs.
    pub repair_total_s: f64,
    /// Accumulated full re-query time across the same epochs.
    pub requery_total_s: f64,
    /// Epochs repaired incrementally from the change log.
    pub repairs_incremental: usize,
    /// Epochs that fell back to a full re-query.
    pub repairs_full: usize,
}

impl MutateReport {
    /// Renders the report as a JSON document (hand-formatted; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"n0\": {},\n", self.n0));
        out.push_str(&format!("  \"m_d\": {},\n", self.m_d));
        out.push_str(&format!("  \"mutations\": {},\n", self.mutations));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"readers\": {},\n", self.readers));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!(
            "  \"snapshot\": {{ \"epoch\": {}, \"live\": {}, \"tombstones\": {} }},\n",
            self.final_epoch, self.final_live, self.final_tombstones
        ));
        out.push_str(&format!(
            "  \"publish_s\": {{ \"mean\": {:.9}, \"p95\": {:.9}, \"max\": {:.9} }},\n",
            self.publish_mean_s, self.publish_p95_s, self.publish_max_s
        ));
        out.push_str(&format!(
            "  \"readers_during_churn\": {{ \"qps\": {:.3}, \"queries\": {} }},\n",
            self.reader_qps, self.reader_queries
        ));
        out.push_str(&format!(
            "  \"continuous\": {{ \"repair_total_s\": {:.9}, \"requery_total_s\": {:.9}, \
             \"incremental\": {}, \"full\": {} }}\n",
            self.repair_total_s, self.requery_total_s, self.repairs_incremental, self.repairs_full
        ));
        out.push_str("}\n");
        out
    }
}

/// Runs the churn script against a published index and measures the
/// three axes. Always cross-validates: every refreshed handle must be
/// bit-identical to a full re-query on the same snapshot.
///
/// # Panics
/// Panics if a mutation fails to publish, or if the repaired candidate
/// set ever diverges from the full re-query — either would be an epoch
/// machinery bug, not a measurement artefact.
pub fn measure_mutate(
    scale: &Scale,
    shards: usize,
    readers: usize,
    mutations: usize,
    op: Operator,
) -> MutateReport {
    let objects = build_objects(DatasetId::Usa, scale);
    let pool_scale = Scale {
        seed: scale.seed ^ 0x00c0_ffee,
        ..scale.clone()
    };
    let pool = build_objects(DatasetId::Usa, &pool_scale);
    let queries = build_queries(&objects, DatasetId::Usa, scale);
    let cfg = FilterConfig::all();
    let n0 = objects.len();

    let published = PublishedIndex::new(ShardedDatabase::new(objects, shards));
    let watch_query = queries[0].clone();
    let mut handle = ContinuousNnc::new(&*published.pin(), watch_query.clone(), op, cfg);

    let mut alive: Vec<usize> = (0..n0).collect();
    let mut latencies = Vec::with_capacity(mutations);
    let mut repair_total_s = 0.0f64;
    let mut requery_total_s = 0.0f64;
    let mut repairs_incremental = 0usize;
    let mut repairs_full = 0usize;

    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let churn_started = Instant::now();
    std::thread::scope(|s| {
        for r in 0..readers {
            let published = &published;
            let queries = &queries;
            let cfg = &cfg;
            let stop = &stop;
            let reads = &reads;
            s.spawn(move || {
                let mut q = r;
                while !stop.load(Ordering::Relaxed) {
                    let snap = published.pin();
                    let res = nn_candidates(&*snap, &queries[q % queries.len()], op, cfg);
                    // A pinned snapshot is immutable: every candidate it
                    // emits must be live in that snapshot, churn or not.
                    assert!(
                        res.candidates.iter().all(|c| snap.is_live(c.id)),
                        "reader saw a dead candidate through a pinned snapshot"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    q += 1;
                }
            });
        }

        for i in 0..mutations {
            let started = Instant::now();
            match i % 3 {
                0 => {
                    let obj = pool[i % pool.len()].clone();
                    let id = published.insert(obj).unwrap_or_else(|e| {
                        unreachable!("insert must publish: {e}");
                    });
                    alive.push(id);
                }
                1 => {
                    let victim = alive.remove((i * 7) % alive.len());
                    published.delete(victim).unwrap_or_else(|e| {
                        unreachable!("delete of live id {victim} must publish: {e}");
                    });
                }
                _ => {
                    let target = alive[(i * 5) % alive.len()];
                    let obj = pool[(i + 1) % pool.len()].clone();
                    published.update(target, obj).unwrap_or_else(|e| {
                        unreachable!("update of live id {target} must publish: {e}");
                    });
                }
            }
            latencies.push(started.elapsed().as_secs_f64());

            let snap = published.pin();
            let started = Instant::now();
            let repair = handle.refresh(&*snap);
            repair_total_s += started.elapsed().as_secs_f64();
            match repair {
                Repair::Incremental { .. } => repairs_incremental += 1,
                Repair::Full => repairs_full += 1,
                Repair::UpToDate => {}
            }
            let started = Instant::now();
            let full = nn_candidates(&*snap, &watch_query, op, &cfg);
            requery_total_s += started.elapsed().as_secs_f64();
            let repaired: Vec<(usize, u64)> = handle
                .candidates()
                .iter()
                .map(|c| (c.id, c.min_dist.to_bits()))
                .collect();
            let queried: Vec<(usize, u64)> = full
                .candidates
                .iter()
                .map(|c| (c.id, c.min_dist.to_bits()))
                .collect();
            assert_eq!(
                repaired,
                queried,
                "continuous repair diverged from full re-query at epoch {}",
                snap.epoch()
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
    let churn_s = churn_started.elapsed().as_secs_f64();

    let final_snap = published.pin();
    latencies.sort_by(f64::total_cmp);
    let publish_mean_s = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let publish_p95_s = latencies[(latencies.len().saturating_sub(1)) * 95 / 100];
    let publish_max_s = latencies.last().copied().unwrap_or(0.0);
    let reader_queries = reads.load(Ordering::Relaxed);

    MutateReport {
        dataset: DatasetId::Usa.label(),
        op: op.label(),
        n0,
        m_d: scale.m_d,
        mutations,
        shards,
        readers,
        host_cpus: host_cpus(),
        final_epoch: final_snap.epoch(),
        final_live: final_snap.live_len(),
        final_tombstones: final_snap.tombstone_count(),
        publish_mean_s,
        publish_p95_s,
        publish_max_s,
        reader_qps: if churn_s > 0.0 {
            reader_queries as f64 / churn_s
        } else {
            f64::INFINITY
        },
        reader_queries,
        repair_total_s,
        requery_total_s,
        repairs_incremental,
        repairs_full,
    }
}

/// The workload shape of a churn point: thin objects and a small query
/// set, so the measured axes are publishing and repair, not the kernels.
fn scale_for(n: usize) -> Scale {
    Scale {
        n,
        m_d: 4,
        m_q: 3,
        queries: 8,
        dim: 2,
        seed: 0x06e7,
        ..Scale::laptop()
    }
}

/// Runs the churn benchmark and prints the table; writes the JSON
/// artifact when `json_path` is given. `smoke` shrinks the run to an
/// assertion-heavy CI-sized point.
pub fn mutate(shards: usize, readers: usize, smoke: bool, json_path: Option<&str>) {
    let op = Operator::SSd;
    let (n, mutations) = if smoke { (600, 60) } else { (50_000, 600) };
    let readers = readers.max(1);
    println!(
        "\n== Mutate: {} on USA ({} shards, {} readers, host_cpus={}) ==",
        op.label(),
        shards,
        readers,
        host_cpus()
    );
    let r = measure_mutate(&scale_for(n), shards, readers, mutations, op);
    if smoke {
        assert_eq!(
            r.final_epoch, r.mutations as u64,
            "every mutation publishes"
        );
        assert_eq!(
            r.final_tombstones,
            r.mutations.div_ceil(3),
            "one tombstone per delete in the script"
        );
        assert!(
            r.reader_queries > 0,
            "readers made no progress during churn"
        );
        assert!(
            r.repairs_incremental + r.repairs_full == r.mutations,
            "every epoch repairs exactly once"
        );
    }
    println!(
        "publish: mean {:.1}us  p95 {:.1}us  max {:.1}us over {} mutations",
        r.publish_mean_s * 1e6,
        r.publish_p95_s * 1e6,
        r.publish_max_s * 1e6,
        r.mutations
    );
    println!(
        "readers: {:.1} qps during churn ({} queries, {} threads)",
        r.reader_qps, r.reader_queries, r.readers
    );
    println!(
        "continuous: repair {:.3}ms vs re-query {:.3}ms ({} incremental, {} full)",
        r.repair_total_s * 1e3,
        r.requery_total_s * 1e3,
        r.repairs_incremental,
        r.repairs_full
    );
    println!(
        "snapshot: epoch {}, {} live, {} tombstones",
        r.final_epoch, r.final_live, r.final_tombstones
    );
    if let Some(path) = json_path {
        match std::fs::write(path, r.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_publishes_and_repairs_bit_identically() {
        let r = measure_mutate(&scale_for(200), 3, 2, 30, Operator::SSd);
        assert_eq!(r.final_epoch, 30);
        assert_eq!(r.mutations, 30);
        // Script: 10 inserts, 10 deletes, 10 updates over 200 seeds.
        assert_eq!(r.final_live, 200);
        assert_eq!(r.final_tombstones, 10);
        assert_eq!(r.repairs_incremental + r.repairs_full, 30);
        assert!(r.reader_queries > 0);
        assert!(r.publish_max_s >= r.publish_p95_s);
        assert!(r.publish_p95_s >= 0.0 && r.publish_mean_s > 0.0);
    }

    #[test]
    fn json_is_balanced_and_carries_metadata() {
        let r = measure_mutate(&scale_for(120), 2, 1, 12, Operator::PSd);
        let json = r.to_json();
        assert!(json.contains("\"mutations\": 12"));
        assert!(json.contains("\"publish_s\": {"));
        assert!(json.contains("\"readers_during_churn\": {"));
        assert!(json.contains("\"continuous\": {"));
        assert!(json.contains("\"tombstones\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
