//! `repro kernels`: before/after measurement of the blocked-kernel and
//! memoization overhaul, written to `BENCH_kernels.json`.
//!
//! The same A-N batch runs twice through [`QueryEngine`]: once on the
//! scalar reference paths (`FilterConfig::all().scalar()`) and once with
//! the blocked kernels on (`FilterConfig::all()`). The mode then enforces
//! the **bit-identity contract** the kernels are written against: every
//! query must produce the same candidate ids in the same order, the same
//! `min_dist` down to the last bit, and the same frozen cost counters
//! (`instance_comparisons`, `dominance_checks`, `flow_runs`,
//! `mbr_checks`). Only then are the per-phase medians reported — the
//! kernels are a pure execution strategy, so any divergence is a bug, not
//! a measurement artefact.
//!
//! `rtree_nodes_visited` is reported separately and *not* frozen: the
//! multi-point pruned descent legitimately expands fewer local-tree nodes
//! than one nearest search per query instance.

use crate::datasets::{build, DatasetId, Workbench};
use crate::params::Scale;
use crate::throughput::phase_medians;
use osd_core::{FilterConfig, NncResult, Operator, QueryEngine};

/// The PR-4 hot-path medians from `BENCH_throughput.json` (A-N, 2000
/// objects, 10 queries, P-SD, sequential), the baseline the overhaul is
/// measured against.
pub const BASELINE_RTREE_DESCENT_NS: u64 = 267_509;
/// See [`BASELINE_RTREE_DESCENT_NS`].
pub const BASELINE_LEVEL_PRUNE_NS: u64 = 96_963;

/// A measured before/after pair with the bit-identity verdict.
#[derive(Debug, Clone)]
pub struct KernelsReport {
    /// Dataset label (the comparison runs on A-N).
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Objects in the database.
    pub objects: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Whether every query matched across the two strategies: candidate
    /// ids and order, `min_dist` bits, and the frozen counters. The
    /// measurement aborts before reporting when this would be `false`.
    pub bit_identical: bool,
    /// Median per-query phase nanoseconds of the scalar reference run.
    pub scalar_phase_median_ns: Vec<(&'static str, u64)>,
    /// Median per-query phase nanoseconds of the blocked-kernel run.
    pub kernels_phase_median_ns: Vec<(&'static str, u64)>,
    /// Total local+global R-tree nodes expanded by the scalar run.
    pub scalar_rtree_nodes_visited: u64,
    /// Total R-tree nodes expanded by the kernel run (the multi-point
    /// descent makes this smaller; it is reported, not frozen).
    pub kernels_rtree_nodes_visited: u64,
}

impl KernelsReport {
    /// Sum of the two hot-path phase medians (`rtree-descent` +
    /// `level-prune`) for the given run.
    fn hot_ns(medians: &[(&'static str, u64)]) -> u64 {
        medians
            .iter()
            .filter(|(name, _)| *name == "rtree-descent" || *name == "level-prune")
            .map(|(_, ns)| ns)
            .sum()
    }

    /// Fractional reduction of the hot-path median sum relative to the
    /// embedded PR-4 baseline (positive = faster than the baseline).
    pub fn reduction_vs_baseline(&self) -> f64 {
        let baseline = (BASELINE_RTREE_DESCENT_NS + BASELINE_LEVEL_PRUNE_NS) as f64;
        1.0 - Self::hot_ns(&self.kernels_phase_median_ns) as f64 / baseline
    }

    /// Fractional reduction of the hot-path median sum relative to the
    /// scalar run of the same invocation.
    pub fn reduction_vs_scalar(&self) -> f64 {
        let scalar = Self::hot_ns(&self.scalar_phase_median_ns) as f64;
        if scalar == 0.0 {
            return 0.0;
        }
        1.0 - Self::hot_ns(&self.kernels_phase_median_ns) as f64 / scalar
    }

    /// Renders the report as a JSON document (hand-formatted; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"objects\": {},\n", self.objects));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"bit_identical\": {},\n", self.bit_identical));
        for (key, medians) in [
            ("scalar_phase_median_ns", &self.scalar_phase_median_ns),
            ("kernels_phase_median_ns", &self.kernels_phase_median_ns),
        ] {
            out.push_str(&format!("  \"{key}\": {{"));
            for (i, (name, med)) in medians.iter().enumerate() {
                let sep = if i + 1 == medians.len() { "" } else { ", " };
                out.push_str(&format!("\"{name}\": {med}{sep}"));
            }
            out.push_str("},\n");
        }
        out.push_str(&format!(
            "  \"scalar_rtree_nodes_visited\": {},\n",
            self.scalar_rtree_nodes_visited
        ));
        out.push_str(&format!(
            "  \"kernels_rtree_nodes_visited\": {},\n",
            self.kernels_rtree_nodes_visited
        ));
        out.push_str(&format!(
            "  \"baseline_phase_median_ns\": {{\"rtree-descent\": {BASELINE_RTREE_DESCENT_NS}, \
             \"level-prune\": {BASELINE_LEVEL_PRUNE_NS}}},\n"
        ));
        out.push_str(&format!(
            "  \"hot_path_reduction_vs_baseline\": {:.4},\n",
            self.reduction_vs_baseline()
        ));
        out.push_str(&format!(
            "  \"hot_path_reduction_vs_scalar\": {:.4}\n",
            self.reduction_vs_scalar()
        ));
        out.push_str("}\n");
        out
    }
}

/// The first bit-identity violation between two per-query result lists,
/// or `None` when the runs agree on everything the contract freezes.
fn first_divergence(scalar: &[NncResult], kernels: &[NncResult]) -> Option<String> {
    if scalar.len() != kernels.len() {
        return Some(format!(
            "result counts differ: {} scalar vs {} kernels",
            scalar.len(),
            kernels.len()
        ));
    }
    for (qi, (s, k)) in scalar.iter().zip(kernels.iter()).enumerate() {
        if s.ids() != k.ids() {
            return Some(format!(
                "query {qi}: candidate ids diverge ({:?} scalar vs {:?} kernels)",
                s.ids(),
                k.ids()
            ));
        }
        for (ci, (sc, kc)) in s.candidates.iter().zip(k.candidates.iter()).enumerate() {
            if sc.min_dist.to_bits() != kc.min_dist.to_bits() {
                return Some(format!(
                    "query {qi} candidate {ci}: min_dist bits diverge \
                     ({} scalar vs {} kernels)",
                    sc.min_dist, kc.min_dist
                ));
            }
        }
        let frozen = |r: &NncResult| {
            (
                r.stats.instance_comparisons,
                r.stats.dominance_checks,
                r.stats.flow_runs,
                r.stats.mbr_checks,
            )
        };
        if frozen(s) != frozen(k) {
            return Some(format!(
                "query {qi}: frozen counters diverge ({:?} scalar vs {:?} kernels; \
                 order: instance_comparisons, dominance_checks, flow_runs, mbr_checks)",
                frozen(s),
                frozen(k)
            ));
        }
    }
    None
}

/// Runs the A-N batch under both strategies and checks the bit-identity
/// contract.
///
/// # Errors
///
/// Returns a description of the first divergence between the scalar and
/// the blocked-kernel run — any difference in candidate ids, `min_dist`
/// bits or frozen counters means the kernels are not the pure execution
/// strategy they claim to be.
pub fn measure_kernels(scale: &Scale, op: Operator) -> Result<KernelsReport, String> {
    let bench: Workbench = build(DatasetId::AN, scale);

    let scalar_engine = QueryEngine::with_config(&bench.db, op, FilterConfig::all().scalar());
    let scalar_results = scalar_engine.run_batch(&bench.queries, 1);

    let kernel_engine = QueryEngine::with_config(&bench.db, op, FilterConfig::all());
    let kernel_results = kernel_engine.run_batch(&bench.queries, 1);

    if let Some(divergence) = first_divergence(&scalar_results, &kernel_results) {
        return Err(divergence);
    }

    let visits = |results: &[NncResult]| {
        results
            .iter()
            .map(|r| r.stats.rtree_nodes_visited)
            .sum::<u64>()
    };
    Ok(KernelsReport {
        dataset: DatasetId::AN.label(),
        op: op.label(),
        objects: bench.db.len(),
        queries: bench.queries.len(),
        bit_identical: true,
        scalar_phase_median_ns: phase_medians(&scalar_results),
        kernels_phase_median_ns: phase_medians(&kernel_results),
        scalar_rtree_nodes_visited: visits(&scalar_results),
        kernels_rtree_nodes_visited: visits(&kernel_results),
    })
}

/// Prints the before/after table and (optionally) writes the JSON
/// document. `smoke` shrinks the workload to a seconds-scale run whose
/// only job is the bit-identity assertion (used by `scripts/check.sh`).
/// Exits non-zero on any divergence.
pub fn kernels(scale: &Scale, smoke: bool, json_path: Option<&str>) {
    let scale = if smoke {
        Scale {
            n: 90,
            m_d: 4,
            m_q: 3,
            queries: 5,
            ..scale.clone()
        }
    } else {
        scale.clone()
    };
    let report = match measure_kernels(&scale, Operator::PSd) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kernels: bit-identity violation: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\n== Kernels: {} on {} ({} objects, {} queries, bit_identical={}) ==",
        report.op, report.dataset, report.objects, report.queries, report.bit_identical
    );
    println!(
        "{:>15} {:>12} {:>12} {:>9}",
        "phase", "scalar_ns", "kernels_ns", "speedup"
    );
    for ((name, scalar_ns), (_, kernel_ns)) in report
        .scalar_phase_median_ns
        .iter()
        .zip(report.kernels_phase_median_ns.iter())
    {
        let speedup = if *kernel_ns > 0 {
            *scalar_ns as f64 / *kernel_ns as f64
        } else {
            0.0
        };
        println!("{name:>15} {scalar_ns:>12} {kernel_ns:>12} {speedup:>8.2}x");
    }
    println!(
        "rtree nodes visited: {} scalar vs {} kernels",
        report.scalar_rtree_nodes_visited, report.kernels_rtree_nodes_visited
    );
    if !smoke {
        println!(
            "hot-path (rtree-descent + level-prune) reduction: {:.1}% vs scalar, \
             {:.1}% vs the PR-4 baseline",
            100.0 * report.reduction_vs_scalar(),
            100.0 * report.reduction_vs_baseline()
        );
    }
    if let Some(path) = json_path {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n: 90,
            m_d: 4,
            m_q: 3,
            queries: 5,
            ..Scale::laptop()
        }
    }

    #[test]
    fn tiny_workload_is_bit_identical() {
        let report = measure_kernels(&tiny(), Operator::PSd).unwrap();
        assert!(report.bit_identical);
        assert_eq!(report.queries, 5);
        assert!(
            report.kernels_rtree_nodes_visited <= report.scalar_rtree_nodes_visited,
            "the multi-point descent must never expand more nodes"
        );
        let names: Vec<_> = report
            .kernels_phase_median_ns
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            vec![
                "prepare",
                "rtree-descent",
                "level-prune",
                "validate",
                "refine"
            ]
        );
    }

    #[test]
    fn every_operator_is_bit_identical_on_the_tiny_workload() {
        for op in Operator::ALL {
            let report = measure_kernels(&tiny(), op);
            assert!(report.is_ok(), "{op:?}: {report:?}");
        }
    }

    #[test]
    fn json_carries_the_verdict_and_both_median_sets() {
        let report = KernelsReport {
            dataset: "A-N",
            op: "PSD",
            objects: 10,
            queries: 2,
            bit_identical: true,
            scalar_phase_median_ns: vec![("rtree-descent", 200), ("level-prune", 100)],
            kernels_phase_median_ns: vec![("rtree-descent", 100), ("level-prune", 50)],
            scalar_rtree_nodes_visited: 40,
            kernels_rtree_nodes_visited: 30,
        };
        let json = report.to_json();
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"scalar_phase_median_ns\": {\"rtree-descent\": 200"));
        assert!(json.contains("\"kernels_phase_median_ns\": {\"rtree-descent\": 100"));
        assert!(json.contains("\"baseline_phase_median_ns\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // 150 / 364472 ≈ 0.9996 reduction for the synthetic numbers above.
        assert!(report.reduction_vs_baseline() > 0.99);
        let expected = 1.0 - 150.0 / 300.0;
        assert!((report.reduction_vs_scalar() - expected).abs() < 1e-12);
    }
}
