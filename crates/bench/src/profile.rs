//! `repro profile`: the per-phase observability profile of a batch
//! workload, written to `BENCH_obs.json`.
//!
//! Where `throughput` measures *how fast* the parallel engine answers a
//! batch, this mode measures *where the time goes*: the osd-obs phase
//! breakdown (prepare, rtree-descent, level-prune, validate, refine),
//! counters and gauges, folded over every query of the workload.
//!
//! The run doubles as an end-to-end check of the exact-merge contract:
//! the batch executes once sequentially and once on `threads` workers,
//! and the two folded registries must agree on every deterministic
//! quantity (counters, phase sample counts, heap high-water, per-operator
//! tallies) — wall-clock nanoseconds are the only thing allowed to differ.

use crate::datasets::{build, DatasetId, Workbench};
use crate::params::Scale;
use osd_core::{batch_metrics, batch_stats, FilterConfig, Operator, QueryEngine, Stats};
use osd_obs::{expo, Counter, Phase, QueryMetrics};

/// A measured profile: workload description plus the folded registry.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Dataset label (the profile runs on A-N).
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Objects in the database.
    pub objects: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Worker threads of the parallel run that was validated against the
    /// sequential baseline.
    pub threads: usize,
    /// The folded per-query registries of the parallel run.
    pub metrics: QueryMetrics,
    /// The folded legacy counters of the parallel run.
    pub stats: Stats,
}

/// The deterministic projection of a registry: everything except
/// wall-clock nanoseconds and the latency buckets derived from them.
type Projection = (Vec<u64>, u64, Vec<u64>, Vec<(&'static str, u64)>);

fn projection(m: &QueryMetrics) -> Projection {
    (
        Counter::ALL.iter().map(|c| m.counter(*c)).collect(),
        m.heap_high_water(),
        Phase::ALL.iter().map(|p| m.phase_count(*p)).collect(),
        m.candidates_by_op(),
    )
}

/// Runs the A-N batch sequentially and on `threads` workers, validates
/// ids and the deterministic metric projection across the two runs, and
/// returns the folded profile.
///
/// # Errors
///
/// Returns a description of the first divergence — differing candidate
/// ids, or folded totals that depend on the thread count. Either would be
/// a determinism bug in the engine or the metric merge.
pub fn measure_profile(
    scale: &Scale,
    op: Operator,
    threads: usize,
) -> Result<ProfileReport, String> {
    let bench: Workbench = build(DatasetId::AN, scale);
    let engine = QueryEngine::with_config(&bench.db, op, FilterConfig::all());

    let seq = engine.run_batch(&bench.queries, 1);
    let par = engine.run_batch(&bench.queries, threads.max(1));

    let seq_ids: Vec<Vec<usize>> = seq.iter().map(|r| r.ids()).collect();
    let par_ids: Vec<Vec<usize>> = par.iter().map(|r| r.ids()).collect();
    if seq_ids != par_ids {
        return Err(format!(
            "run_batch({threads} threads) diverged from the sequential baseline"
        ));
    }
    let folded = batch_metrics(&par);
    if projection(&batch_metrics(&seq)) != projection(&folded) {
        return Err(format!(
            "folded metric totals differ between 1 and {threads} threads — \
             the exact-merge contract is broken"
        ));
    }

    Ok(ProfileReport {
        dataset: DatasetId::AN.label(),
        op: op.label(),
        objects: bench.db.len(),
        queries: bench.queries.len(),
        threads: threads.max(1),
        metrics: folded,
        stats: batch_stats(&par),
    })
}

impl ProfileReport {
    /// Renders the report as a JSON document: a workload header plus the
    /// osd-obs exposition under `"profile"`, with the non-mirrored legacy
    /// counters folded in (see the CLI's `--profile` for the same rule).
    pub fn to_json(&self) -> String {
        let extra = [
            ("instance_comparisons", self.stats.instance_comparisons),
            ("dominance_checks", self.stats.dominance_checks),
            ("flow_runs", self.stats.flow_runs),
            ("mbr_checks", self.stats.mbr_checks),
        ];
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"objects\": {},\n", self.objects));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str("  \"profile\": ");
        out.push_str(expo::to_json(&self.metrics, &extra).trim_end());
        out.push_str("\n}\n");
        out
    }
}

/// Prints the per-phase table and writes the JSON document to
/// `json_path`. Exits non-zero if the determinism validation fails.
pub fn profile(scale: &Scale, threads: usize, json_path: &str) {
    let report = match measure_profile(scale, Operator::PSd, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("profile: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\n== Profile: {} on {} ({} objects, {} queries, {} threads, obs {}) ==",
        report.op,
        report.dataset,
        report.objects,
        report.queries,
        report.threads,
        if QueryMetrics::enabled() { "on" } else { "off" }
    );
    println!(
        "{:>16} {:>10} {:>14} {:>12}",
        "phase", "samples", "total_ns", "mean_ns"
    );
    for p in Phase::ALL {
        let count = report.metrics.phase_count(p);
        let nanos = report.metrics.phase_nanos(p);
        let mean = nanos.checked_div(count).unwrap_or(0);
        println!("{:>16} {count:>10} {nanos:>14} {mean:>12}", p.name());
    }
    for c in Counter::ALL {
        println!("{:>24} {}", c.name(), report.metrics.counter(c));
    }
    println!(
        "{:>24} {}",
        "heap_high_water",
        report.metrics.heap_high_water()
    );
    match std::fs::write(json_path, report.to_json()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n: 90,
            m_d: 4,
            m_q: 3,
            queries: 5,
            ..Scale::laptop()
        }
    }

    #[test]
    fn measure_validates_exact_merge_across_threads() {
        let report = measure_profile(&tiny(), Operator::PSd, 3).unwrap();
        assert_eq!(report.threads, 3);
        assert_eq!(report.queries, 5);
        if QueryMetrics::enabled() {
            // Five queries ran, so every query recorded one prepare phase.
            assert_eq!(report.metrics.phase_count(Phase::Prepare), 5);
            assert!(report.metrics.counter(Counter::RtreeNodeVisits) > 0);
        }
        // The legacy counters fold the same way in either build.
        assert!(report.stats.dominance_checks > 0);
    }

    #[test]
    fn report_json_carries_workload_and_all_phases() {
        let report = measure_profile(&tiny(), Operator::SSd, 2).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"operator\": \"SSD\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"enabled\""));
        for p in Phase::ALL {
            assert!(
                json.contains(&format!("\"{}\"", p.name())),
                "missing {}",
                p.name()
            );
        }
        assert!(json.contains("\"instance_comparisons\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
