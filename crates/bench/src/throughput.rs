//! Batch-query throughput: queries/second vs worker-thread count.
//!
//! The figure-repro paths measure *per-query latency* and stay
//! single-threaded so their timings remain comparable across runs; this
//! module measures the orthogonal axis the parallel [`QueryEngine`]
//! opens up — how many independent NNC queries per second one process
//! answers when the workload is spread over OS threads.
//!
//! Every thread count is validated against the single-thread baseline:
//! the candidate id-lists must be byte-identical, which [`QueryEngine`]
//! guarantees because workers share the read-only database and only the
//! per-worker dominance caches differ.

use crate::datasets::{build, DatasetId, Workbench};
use crate::params::Scale;
use osd_core::{FilterConfig, NncResult, Operator, QueryEngine, WarmPool};
use osd_obs::Phase;
use std::time::Instant;

/// One measured point of the throughput curve.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Worker-thread count handed to [`QueryEngine::run_batch`].
    pub threads: usize,
    /// Wall-clock seconds for the whole batch, warm cache off.
    pub elapsed_s: f64,
    /// Queries per second (`queries / elapsed_s`), warm cache off.
    pub qps: f64,
    /// Wall-clock seconds for the same batch through a shared
    /// (pre-populated) [`WarmPool`].
    pub warm_elapsed_s: f64,
    /// Queries per second with the warm cache on.
    pub warm_qps: f64,
}

/// A full throughput run: the workload description plus one point per
/// thread count, all validated against the sequential baseline.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Dataset label (the sweep runs on A-N).
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Objects in the database.
    pub objects: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Logical CPUs the host reports (`std::thread::available_parallelism`);
    /// speedup is bounded by this regardless of the thread counts swept.
    pub host_cpus: usize,
    /// One point per requested thread count.
    pub points: Vec<ThroughputPoint>,
    /// Median per-query wall-clock per osd-obs phase, in nanoseconds,
    /// taken over the sequential baseline run (all zeros when the `obs`
    /// feature is off). One `(phase_name, median_ns)` pair per phase.
    pub phase_median_ns: Vec<(&'static str, u64)>,
}

impl ThroughputReport {
    /// Renders the report as a JSON document (hand-formatted; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"objects\": {},\n", self.objects));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"elapsed_s\": {:.6}, \"qps\": {:.3}, \
                 \"warm_elapsed_s\": {:.6}, \"warm_qps\": {:.3} }}{sep}\n",
                p.threads, p.elapsed_s, p.qps, p.warm_elapsed_s, p.warm_qps
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"phase_median_ns\": {");
        for (i, (name, med)) in self.phase_median_ns.iter().enumerate() {
            let sep = if i + 1 == self.phase_median_ns.len() {
                ""
            } else {
                ", "
            };
            out.push_str(&format!("\"{name}\": {med}{sep}"));
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Median per-query nanoseconds spent in each osd-obs phase across a
/// batch's results (upper median for even counts; zeros when the batch is
/// empty or the `obs` feature is off).
pub fn phase_medians(results: &[NncResult]) -> Vec<(&'static str, u64)> {
    Phase::ALL
        .iter()
        .map(|p| {
            let mut per_query: Vec<u64> =
                results.iter().map(|r| r.metrics.phase_nanos(*p)).collect();
            per_query.sort_unstable();
            let median = per_query.get(per_query.len() / 2).copied().unwrap_or(0);
            (p.name(), median)
        })
        .collect()
}

/// Logical CPUs of the host, `1` when the runtime cannot tell.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the batch at every thread count in `threads_list` on an A-N
/// workload built under `scale`, checking each run's candidate ids
/// against the 1-thread baseline.
///
/// # Errors
///
/// Returns a description of the first divergence if any multi-thread run
/// produces candidate ids different from the sequential baseline — that
/// would be a determinism bug in the engine, not a measurement artefact.
pub fn measure(
    scale: &Scale,
    op: Operator,
    threads_list: &[usize],
) -> Result<ThroughputReport, String> {
    let bench: Workbench = build(DatasetId::AN, scale);
    let engine = QueryEngine::with_config(&bench.db, op, FilterConfig::all());

    // Sequential baseline: both the reference answer and the 1-thread
    // timing if the caller asked for it.
    let started = Instant::now();
    let baseline = engine.run_batch(&bench.queries, 1);
    let base_elapsed = started.elapsed().as_secs_f64();
    let reference: Vec<Vec<usize>> = baseline.iter().map(|r| r.ids()).collect();
    let phase_median_ns = phase_medians(&baseline);

    // Warm column: one shared snapshot-scoped pool, pre-populated by a
    // sequential pass so every thread count measures steady-state reuse
    // rather than first-touch builds. Bit-identical by contract.
    let pool = WarmPool::new();
    let warm_engine = engine.with_warm(&pool);
    let started = Instant::now();
    let warm_baseline = warm_engine.run_batch(&bench.queries, 1);
    let warm_base_elapsed = started.elapsed().as_secs_f64();
    if warm_baseline.iter().map(NncResult::ids).collect::<Vec<_>>() != reference {
        return Err("warm run_batch diverged from the cold sequential baseline".into());
    }

    let qps_of = |elapsed_s: f64| {
        if elapsed_s > 0.0 {
            bench.queries.len() as f64 / elapsed_s
        } else {
            f64::INFINITY
        }
    };
    let mut points = Vec::with_capacity(threads_list.len());
    for &threads in threads_list {
        let (elapsed_s, ids) = if threads <= 1 {
            (base_elapsed, reference.clone())
        } else {
            let started = Instant::now();
            let results = engine.run_batch(&bench.queries, threads);
            let elapsed = started.elapsed().as_secs_f64();
            (elapsed, results.iter().map(|r| r.ids()).collect())
        };
        if ids != reference {
            return Err(format!(
                "run_batch({threads} threads) diverged from the sequential baseline"
            ));
        }
        let (warm_elapsed_s, warm_ids) = if threads <= 1 {
            (
                warm_base_elapsed,
                warm_baseline.iter().map(NncResult::ids).collect(),
            )
        } else {
            let started = Instant::now();
            let results = warm_engine.run_batch(&bench.queries, threads);
            let elapsed = started.elapsed().as_secs_f64();
            (elapsed, results.iter().map(|r| r.ids()).collect::<Vec<_>>())
        };
        if warm_ids != reference {
            return Err(format!(
                "warm run_batch({threads} threads) diverged from the sequential baseline"
            ));
        }
        points.push(ThroughputPoint {
            threads,
            elapsed_s,
            qps: qps_of(elapsed_s),
            warm_elapsed_s,
            warm_qps: qps_of(warm_elapsed_s),
        });
    }

    Ok(ThroughputReport {
        dataset: DatasetId::AN.label(),
        op: op.label(),
        objects: bench.db.len(),
        queries: bench.queries.len(),
        host_cpus: host_cpus(),
        points,
        phase_median_ns,
    })
}

/// Prints the throughput table and (optionally) writes the JSON document
/// to `json_path`. Exits non-zero if determinism validation fails.
pub fn throughput(scale: &Scale, threads_list: &[usize], json_path: Option<&str>) {
    let report = match measure(scale, Operator::PSd, threads_list) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("throughput: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "\n== Throughput: {} on {} ({} objects, {} queries, host_cpus={}) ==",
        report.op, report.dataset, report.objects, report.queries, report.host_cpus
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>9}",
        "threads", "elapsed_s", "qps", "warm_qps", "speedup"
    );
    let base_qps = report.points.first().map(|p| p.qps).unwrap_or(0.0);
    for p in &report.points {
        let speedup = if base_qps > 0.0 {
            p.qps / base_qps
        } else {
            0.0
        };
        println!(
            "{:>8} {:>12.4} {:>10.2} {:>10.2} {:>8.2}x",
            p.threads, p.elapsed_s, p.qps, p.warm_qps, speedup
        );
    }
    if let Some(path) = json_path {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_validates_and_reports_every_point() {
        let scale = Scale {
            n: 120,
            m_d: 4,
            m_q: 3,
            queries: 6,
            ..Scale::laptop()
        };
        let report = measure(&scale, Operator::SSd, &[1, 2, 4]).unwrap();
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.queries, 6);
        assert!(report.host_cpus >= 1);
        for p in &report.points {
            assert!(p.qps > 0.0);
            assert!(p.warm_qps > 0.0);
        }
        // One median per phase, in taxonomy order.
        let names: Vec<_> = report.phase_median_ns.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "prepare",
                "rtree-descent",
                "level-prune",
                "validate",
                "refine"
            ]
        );
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_fields() {
        let report = ThroughputReport {
            dataset: "A-N",
            op: "PSD",
            objects: 10,
            queries: 2,
            host_cpus: 1,
            points: vec![ThroughputPoint {
                threads: 4,
                elapsed_s: 0.5,
                qps: 4.0,
                warm_elapsed_s: 0.25,
                warm_qps: 8.0,
            }],
            phase_median_ns: vec![("prepare", 10), ("refine", 0)],
        };
        let json = report.to_json();
        assert!(json.contains("\"host_cpus\": 1"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"warm_qps\": 8.000"));
        assert!(json.contains("\"phase_median_ns\": {\"prepare\": 10, \"refine\": 0}"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
