//! The §1 motivation, measured: how often does the NN-core of Yuen et al.
//! (the prior NN-candidate proposal) miss the winner of a popular NN
//! function, and how do the candidate-set sizes compare?
//!
//! Not a figure in the paper — the paper *argues* this with Figure 1 and
//! then excludes NN-core from the evaluation (Remark 1); this harness
//! quantifies the argument on generated data.

use crate::datasets::{build, DatasetId};
use crate::params::Scale;
use crate::runner::Report;
use osd_core::{nn_candidates, FilterConfig, Operator};
use osd_nncore::nn_core;
use osd_nnfuncs::{emd, hausdorff, N1Function};

/// Runs the NN-core comparison on one dataset and prints, per function, the
/// fraction of queries whose winner is *missed* by NN-core but kept by the
/// matching SD candidate set, plus the average set sizes.
pub fn motivation(scale: &Scale, report: &Report) {
    // NN-core is O(n²) pairwise win probabilities over all instances, so
    // the comparison runs on a reduced object count; a widened object edge
    // makes the objects overlap, which is where the methods disagree.
    let scale = Scale {
        n: scale.n.min(300),
        h_d: scale.h_d.max(2_000.0),
        ..scale.clone()
    };
    let bench = build(DatasetId::AN, &scale);
    // NN-core and the N1/N3 scorers want boxed objects; materialise them
    // once from the columnar store.
    let objects = &bench.db.store().to_objects();
    let cfg = FilterConfig::all();

    let mut core_sizes = 0usize;
    let mut ssd_sizes = 0usize;
    let mut psd_sizes = 0usize;
    let mut misses_core = [0usize; 6];
    let mut misses_sd = [0usize; 6];

    for q in &bench.queries {
        let core = nn_core(objects, q.object());
        let ssd = nn_candidates(&bench.db, q, Operator::SSd, &cfg).ids();
        let psd = nn_candidates(&bench.db, q, Operator::PSd, &cfg).ids();
        core_sizes += core.len();
        ssd_sizes += ssd.len();
        psd_sizes += psd.len();

        // Winners under six representative functions; the first four are N1
        // (compare vs S-SD), the last two N3 (compare vs P-SD).
        let winners: Vec<(usize, bool)> = vec![
            (
                argmin(objects.len(), |i| {
                    N1Function::Min.score(&objects[i], q.object())
                }),
                true,
            ),
            (
                argmin(objects.len(), |i| {
                    N1Function::Mean.score(&objects[i], q.object())
                }),
                true,
            ),
            (
                argmin(objects.len(), |i| {
                    N1Function::Max.score(&objects[i], q.object())
                }),
                true,
            ),
            (
                argmin(objects.len(), |i| {
                    N1Function::Quantile(0.5).score(&objects[i], q.object())
                }),
                true,
            ),
            (
                argmin(objects.len(), |i| hausdorff(&objects[i], q.object())),
                false,
            ),
            (
                argmin(objects.len(), |i| emd(&objects[i], q.object())),
                false,
            ),
        ];
        for (fi, &(w, is_n1)) in winners.iter().enumerate() {
            if !core.contains(&w) {
                misses_core[fi] += 1;
            }
            let sd_set = if is_n1 { &ssd } else { &psd };
            if !sd_set.contains(&w) {
                misses_sd[fi] += 1;
            }
        }
    }

    let nq = bench.queries.len().max(1) as f64;
    let names = ["min", "mean", "max", "quantile(0.5)", "hausdorff", "emd"];
    let cols: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    report.table(
        "Motivation: fraction of queries whose winner is missed",
        "method",
        &cols,
        &[
            (
                "NN-core".to_string(),
                misses_core.iter().map(|&m| m as f64 / nq).collect(),
            ),
            (
                "SD ops".to_string(),
                misses_sd.iter().map(|&m| m as f64 / nq).collect(),
            ),
        ],
    );
    report.table(
        "Motivation: average candidate-set size",
        "method",
        &["size".to_string()],
        &[
            ("NN-core".to_string(), vec![core_sizes as f64 / nq]),
            ("SSD".to_string(), vec![ssd_sizes as f64 / nq]),
            ("PSD".to_string(), vec![psd_sizes as f64 / nq]),
        ],
    );
}

fn argmin(n: usize, score: impl Fn(usize) -> f64) -> usize {
    (0..n)
        .min_by(|&a, &b| score(a).total_cmp(&score(b)))
        .expect("non-empty")
}
