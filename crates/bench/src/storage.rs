//! Columnar-layout microbenchmark: what the flat SoA [`InstanceStore`]
//! buys over the boxed array-of-structs object model.
//!
//! Three axes are measured on an A-N workload:
//!
//! * **build** — materialising the boxed object list, encoding it into the
//!   columnar store, and the full [`Database`] build (store + the §6
//!   n+1 R-tree layout) — the index-construction cost the paper reports
//!   alongside query latency;
//! * **scan** — a distance-accumulation sweep over every instance, once
//!   through the boxed `Instance`/`Point` representation (one heap box per
//!   point) and once through the contiguous coordinate column
//!   (`chunks_exact` + `dist2_slice`). Both run the identical float fold,
//!   so the sums must agree bit-for-bit — asserted, not assumed;
//! * **filter phase** — end-to-end NNC latency per query on the
//!   store-backed database, the number the §5.1 filter stack actually
//!   pays.

use crate::datasets::{build, DatasetId, Workbench};
use crate::params::Scale;
use osd_core::{nn_candidates, FilterConfig, Operator};
use osd_geom::dist2_slice;
use osd_geom::Point;
use osd_uncertain::{InstanceStore, UncertainObject};
use std::time::Instant;

/// Timings (seconds unless noted) from one storage-layout run.
#[derive(Debug, Clone)]
pub struct StorageReport {
    /// Dataset label (the run uses A-N).
    pub dataset: &'static str,
    /// Objects in the database.
    pub objects: usize,
    /// Total instance rows across all objects.
    pub instances: usize,
    /// Coordinate dimensionality.
    pub dim: usize,
    /// Scan repetitions behind the scan timings.
    pub scan_reps: usize,
    /// Encoding the boxed objects into the columnar store.
    pub build_store_s: f64,
    /// Full `Database` build: store encode + global/local R-tree loads.
    pub build_db_s: f64,
    /// Distance sweep through the boxed object representation.
    pub scan_boxed_s: f64,
    /// The same sweep through the flat coordinate column.
    pub scan_columnar_s: f64,
    /// `scan_boxed_s / scan_columnar_s`.
    pub scan_speedup: f64,
    /// Mean NNC latency per query (milliseconds), P-SD with all filters.
    pub filter_avg_ms: f64,
    /// Queries behind `filter_avg_ms`.
    pub queries: usize,
    /// Whether boxed and columnar sweeps produced bit-identical sums.
    pub scan_sums_bit_identical: bool,
}

impl StorageReport {
    /// Renders the report as a JSON document (hand-formatted; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"objects\": {},\n", self.objects));
        out.push_str(&format!("  \"instances\": {},\n", self.instances));
        out.push_str(&format!("  \"dim\": {},\n", self.dim));
        out.push_str(&format!("  \"scan_reps\": {},\n", self.scan_reps));
        out.push_str(&format!(
            "  \"build_store_s\": {:.6},\n",
            self.build_store_s
        ));
        out.push_str(&format!("  \"build_db_s\": {:.6},\n", self.build_db_s));
        out.push_str(&format!("  \"scan_boxed_s\": {:.6},\n", self.scan_boxed_s));
        out.push_str(&format!(
            "  \"scan_columnar_s\": {:.6},\n",
            self.scan_columnar_s
        ));
        out.push_str(&format!("  \"scan_speedup\": {:.3},\n", self.scan_speedup));
        out.push_str(&format!(
            "  \"filter_avg_ms\": {:.4},\n",
            self.filter_avg_ms
        ));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!(
            "  \"scan_sums_bit_identical\": {}\n",
            self.scan_sums_bit_identical
        ));
        out.push_str("}\n");
        out
    }
}

/// The boxed sweep: `Σ dist²(instance, q)` through `Instance.point`.
fn sweep_boxed(objects: &[UncertainObject], q: &Point) -> f64 {
    let mut acc = 0.0f64;
    for o in objects {
        for i in o.instances() {
            acc += i.point.dist2(q);
        }
    }
    acc
}

/// The columnar sweep: the identical fold over the flat coordinate column.
fn sweep_columnar(store: &InstanceStore, q: &Point) -> f64 {
    let mut acc = 0.0f64;
    for row in store.coords().chunks_exact(store.dim()) {
        acc += dist2_slice(row, q.coords());
    }
    acc
}

/// Runs the storage-layout comparison at `scale` with `scan_reps`
/// repetitions of each sweep.
pub fn measure_storage(scale: &Scale, scan_reps: usize) -> StorageReport {
    let bench: Workbench = build(DatasetId::AN, scale);
    let objects = bench.db.store().to_objects();
    let probe = Point::new(vec![5_000.0; bench.db.dim()]);

    let started = Instant::now();
    let store = InstanceStore::from_objects(&objects).expect("workload is non-empty");
    let build_store_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let db = osd_core::Database::new(objects.clone());
    let build_db_s = started.elapsed().as_secs_f64();

    let reps = scan_reps.max(1);
    let started = Instant::now();
    let mut boxed_sum = 0.0f64;
    for _ in 0..reps {
        boxed_sum = sweep_boxed(&objects, &probe);
    }
    let scan_boxed_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut columnar_sum = 0.0f64;
    for _ in 0..reps {
        columnar_sum = sweep_columnar(&store, &probe);
    }
    let scan_columnar_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    for q in &bench.queries {
        let _ = nn_candidates(&db, q, Operator::PSd, &FilterConfig::all());
    }
    let filter_total = started.elapsed().as_secs_f64();
    let filter_avg_ms = if bench.queries.is_empty() {
        0.0
    } else {
        filter_total * 1_000.0 / bench.queries.len() as f64
    };

    StorageReport {
        dataset: DatasetId::AN.label(),
        objects: db.len(),
        instances: store.instance_count(),
        dim: store.dim(),
        scan_reps: reps,
        build_store_s,
        build_db_s,
        scan_boxed_s,
        scan_columnar_s,
        scan_speedup: if scan_columnar_s > 0.0 {
            scan_boxed_s / scan_columnar_s
        } else {
            f64::INFINITY
        },
        filter_avg_ms,
        queries: bench.queries.len(),
        scan_sums_bit_identical: boxed_sum.to_bits() == columnar_sum.to_bits(),
    }
}

/// Prints the storage comparison and (optionally) writes the JSON document
/// to `json_path`. Exits non-zero if the two sweeps disagree — that would
/// mean the slice kernels are not bit-faithful to the boxed ones.
pub fn storage(scale: &Scale, scan_reps: usize, json_path: Option<&str>) {
    let report = measure_storage(scale, scan_reps);
    println!(
        "\n== Storage layout: {} ({} objects, {} instances, dim {}) ==",
        report.dataset, report.objects, report.instances, report.dim
    );
    println!("build store     {:>10.4} s", report.build_store_s);
    println!("build database  {:>10.4} s", report.build_db_s);
    println!(
        "scan boxed      {:>10.4} s   ({} reps)",
        report.scan_boxed_s, report.scan_reps
    );
    println!(
        "scan columnar   {:>10.4} s   ({:.2}x)",
        report.scan_columnar_s, report.scan_speedup
    );
    println!(
        "filter phase    {:>10.4} ms/query  ({} queries, P-SD, all filters)",
        report.filter_avg_ms, report.queries
    );
    if !report.scan_sums_bit_identical {
        eprintln!(
            "storage: boxed and columnar sweeps diverged — slice kernels are not bit-faithful"
        );
        std::process::exit(1);
    }
    if let Some(path) = json_path {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_agree_bitwise_and_report_serialises() {
        let scale = Scale {
            n: 80,
            m_d: 4,
            m_q: 2,
            queries: 4,
            ..Scale::laptop()
        };
        let report = measure_storage(&scale, 2);
        assert!(report.scan_sums_bit_identical);
        assert_eq!(report.objects, 80);
        assert_eq!(report.instances, 80 * 4);
        assert_eq!(report.queries, 4);
        let json = report.to_json();
        assert!(json.contains("\"scan_sums_bit_identical\": true"));
        assert!(json.contains("\"objects\": 80"));
        assert!(json.ends_with("}\n"));
    }
}
