//! `stress` — long-running randomized cross-validation.
//!
//! Each round draws a random dataset/query configuration and checks, for
//! every operator:
//!
//! 1. Algorithm 1 == the O(n²) brute-force oracle;
//! 2. every filter configuration decides identically;
//! 3. the Figure 5 candidate-inclusion chain;
//! 4. the winners of the implemented N1/N3 functions sit inside the
//!    matching candidate sets;
//! 5. k-NNC == its brute-force oracle for k ∈ {1, 2, 3}.
//!
//! ```text
//! cargo run --release -p osd-bench --bin stress -- [rounds] [seed]
//! ```

// Leaf binary/bench: panic-family lints relaxed (see workspace policy).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use osd_core::{
    k_nn_candidates, k_nn_candidates_bruteforce, nn_candidates, nn_candidates_bruteforce, Database,
    FilterConfig, Operator, PreparedQuery,
};
use osd_datagen::{object_around, DOMAIN};
use osd_nnfuncs::{emd, hausdorff, sum_min, N1Function};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50);
    let seed: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0xabcdef);
    let mut rng = StdRng::seed_from_u64(seed);

    for round in 0..rounds {
        let n = rng.gen_range(3..30);
        let dim = rng.gen_range(1..4);
        let m = rng.gen_range(1..6);
        let spread = rng.gen_range(50.0..2000.0);
        let objects: Vec<_> = (0..n)
            .map(|_| {
                let c: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..DOMAIN / 4.0)).collect();
                object_around(&mut rng, &c, dim, m, spread)
            })
            .collect();
        let qc: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..DOMAIN / 4.0)).collect();
        let mq = rng.gen_range(1..6);
        let query = object_around(&mut rng, &qc, dim, mq, spread / 2.0);

        let db = Database::with_fanouts(objects.clone(), rng.gen_range(2..6), 2);
        let pq = PreparedQuery::new(query.clone());

        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        for op in Operator::ALL {
            // (1) oracle agreement under the full config.
            let algo: BTreeSet<usize> = nn_candidates(&db, &pq, op, &FilterConfig::all())
                .ids()
                .into_iter()
                .collect();
            let (brute, _) = nn_candidates_bruteforce(&db, &pq, op, &FilterConfig::all());
            let brute: BTreeSet<usize> = brute.into_iter().collect();
            assert_eq!(algo, brute, "round {round}: oracle mismatch for {op:?}");

            // (2) filter-configuration invariance.
            for (name, cfg) in FilterConfig::ablation_ladder() {
                let got: BTreeSet<usize> = nn_candidates(&db, &pq, op, &cfg)
                    .ids()
                    .into_iter()
                    .collect();
                assert_eq!(got, algo, "round {round}: {op:?} under {name} diverged");
            }
            sets.push(algo);
        }

        // (3) inclusion chain SSD ⊆ SSSD ⊆ PSD ⊆ FSD ⊆ F⁺SD.
        for w in sets.windows(2) {
            assert!(
                w[0].is_subset(&w[1]),
                "round {round}: inclusion chain broken: {:?} ⊄ {:?}",
                w[0],
                w[1]
            );
        }

        // (4) winning scores achievable inside the candidate sets. (Exact
        // score ties occur — clamped instances can coincide — so the check
        // is on the winning *score*, not the tie-broken winner id.)
        let ssd = &sets[0];
        let psd = &sets[2];
        for f in [
            N1Function::Min,
            N1Function::Mean,
            N1Function::Max,
            N1Function::Quantile(0.5),
        ] {
            let best = (0..n)
                .map(|i| f.score(&objects[i], &query))
                .fold(f64::INFINITY, f64::min);
            let achieved = ssd
                .iter()
                .map(|&i| f.score(&objects[i], &query))
                .fold(f64::INFINITY, f64::min);
            assert!(
                achieved <= best + 1e-9,
                "round {round}: N1 winning score {best} unreachable in NNC(S-SD)"
            );
        }
        for (name, f) in [
            ("hausdorff", hausdorff as fn(&_, &_) -> f64),
            ("sum_min", sum_min),
            ("emd", emd),
        ] {
            let best = (0..n)
                .map(|i| f(&objects[i], &query))
                .fold(f64::INFINITY, f64::min);
            let achieved = psd
                .iter()
                .map(|&i| f(&objects[i], &query))
                .fold(f64::INFINITY, f64::min);
            assert!(
                achieved <= best + 1e-6,
                "round {round}: {name} winning score {best} unreachable in NNC(P-SD)"
            );
        }

        // (5) k-NNC oracle agreement.
        for k in [1usize, 2, 3] {
            for op in [Operator::SSd, Operator::PSd] {
                let mut a = k_nn_candidates(&db, &pq, op, k, &FilterConfig::all()).ids();
                a.sort_unstable();
                let b = k_nn_candidates_bruteforce(&db, &pq, op, k, &FilterConfig::all());
                assert_eq!(a, b, "round {round}: k-NNC mismatch (k={k}, {op:?})");
            }
        }

        if (round + 1) % 10 == 0 {
            println!("round {}/{} ok (n={n}, d={dim}, m={m})", round + 1, rounds);
        }
    }
    println!("stress: all {rounds} rounds passed");
}
