//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//! ```text
//! repro <fig10|fig11|fig12|fig13|fig14|fig16|motivation|throughput|profile|storage|kernels|scale|mutate|trace|warm|all> [options]
//!   --paper-scale      Table 2 defaults (n=100k, m_d=40, 100 queries)
//!   --n <N>            object count override
//!   --md <M>           instances per object override
//!   --mq <M>           query instances override
//!   --queries <Q>      workload size override
//!   --param <axis>     fig11/fig13 axis: md | hd | mq | hq | n | d
//! ```

// Leaf binary/bench: panic-family lints relaxed (see workspace policy).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use osd_bench::{
    fig10_with_threads, fig11_13, fig12, fig14, fig16, kernels, motivation, profile, storage,
    throughput, Report, Scale, SweepParam,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }
    let cmd = args[0].as_str();
    let paper = args.iter().any(|a| a == "--paper-scale");
    let mut scale = if paper {
        Scale::paper()
    } else {
        Scale::laptop()
    };
    let mut param: Option<SweepParam> = None;
    let mut report = Report::stdout();
    let mut threads = 1usize;
    let mut threads_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut json: Option<String> = None;
    let mut smoke = false;
    let mut shards = 8usize;
    let mut n_explicit = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-scale" => {}
            "--smoke" => {
                smoke = true;
            }
            "--shards" => {
                shards = next_val(&args, &mut i).max(1);
            }
            "--n" => {
                scale.n = next_val(&args, &mut i);
                n_explicit = true;
            }
            "--md" => {
                scale.m_d = next_val(&args, &mut i);
            }
            "--mq" => {
                scale.m_q = next_val(&args, &mut i);
            }
            "--queries" => {
                scale.queries = next_val(&args, &mut i);
            }
            "--threads" => {
                threads = next_val(&args, &mut i).max(1);
            }
            "--threads-list" => {
                i += 1;
                let parsed: Option<Vec<usize>> = args
                    .get(i)
                    .map(|v| v.split(',').map(|t| t.parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() => threads_list = list,
                    _ => {
                        eprintln!("expected a comma-separated list after --threads-list");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json = Some(path.clone()),
                    None => {
                        eprintln!("expected a path after --json");
                        std::process::exit(2);
                    }
                }
            }
            "--out-dir" => {
                i += 1;
                report = Report::with_csv(args[i].clone());
            }
            "--param" => {
                i += 1;
                param = SweepParam::parse(&args[i]);
                if param.is_none() {
                    eprintln!("unknown --param {}", args[i]);
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown option {other}");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    match cmd {
        "fig10" => fig10_with_threads(&scale, &report, threads),
        "fig12" => fig12(&scale, &report),
        "fig11" | "fig13" => match param {
            Some(p) => fig11_13(p, &scale, paper, &report),
            None => {
                for p in SweepParam::ALL {
                    fig11_13(p, &scale, paper, &report);
                }
            }
        },
        "fig14" => fig14(&scale, &report),
        "motivation" => motivation(&scale, &report),
        "throughput" => throughput(&scale, &threads_list, json.as_deref()),
        "profile" => profile(
            &scale,
            threads.max(2),
            json.as_deref().unwrap_or("BENCH_obs.json"),
        ),
        "storage" => storage(&scale, 20, json.as_deref()),
        "kernels" => {
            // Smoke runs are assertion-only: never clobber the measured
            // artifact unless a path was asked for explicitly.
            let json = match (&json, smoke) {
                (Some(path), _) => Some(path.as_str()),
                (None, false) => Some("BENCH_kernels.json"),
                (None, true) => None,
            };
            kernels(&scale, smoke, json);
        }
        "scale" => {
            // Like kernels: smoke runs are assertion-only and never
            // clobber the measured artifact unless a path was given.
            let json = match (&json, smoke) {
                (Some(path), _) => Some(path.as_str()),
                (None, false) => Some("BENCH_scale.json"),
                (None, true) => None,
            };
            let ns: Vec<usize> = if n_explicit { vec![scale.n] } else { vec![] };
            let threads = if threads > 1 { threads } else { shards };
            osd_bench::scale::scale(&ns, shards, threads, smoke, json);
        }
        "mutate" => {
            // Like kernels/scale: smoke runs are assertion-only and never
            // clobber the measured artifact unless a path was given.
            let json = match (&json, smoke) {
                (Some(path), _) => Some(path.as_str()),
                (None, false) => Some("BENCH_mutate.json"),
                (None, true) => None,
            };
            osd_bench::mutate::mutate(shards, threads.max(2), smoke, json);
        }
        "warm" => {
            // Like kernels/scale/mutate: smoke runs are assertion-only and
            // never clobber the measured artifact unless a path was given.
            let json = match (&json, smoke) {
                (Some(path), _) => Some(path.as_str()),
                (None, false) => Some("BENCH_warm.json"),
                (None, true) => None,
            };
            osd_bench::warm::warm(shards, smoke, json);
        }
        "trace" => {
            // Like kernels/scale/mutate: smoke runs are assertion-only and
            // never clobber the measured artifact unless a path was given.
            let json = match (&json, smoke) {
                (Some(path), _) => Some(path.as_str()),
                (None, false) => Some("BENCH_trace.json"),
                (None, true) => None,
            };
            osd_bench::trace::trace(&scale, smoke, json);
        }
        "fig16" => fig16(&scale, paper, &report),
        "all" => {
            fig10_with_threads(&scale, &report, threads);
            fig12(&scale, &report);
            for p in SweepParam::ALL {
                fig11_13(p, &scale, paper, &report);
            }
            fig14(&scale, &report);
            fig16(&scale, paper, &report);
        }
        other => {
            eprintln!("unknown figure {other}");
            usage();
            std::process::exit(2);
        }
    }
}

fn next_val(args: &[String], i: &mut usize) -> usize {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("expected a number after {}", args[*i - 1]);
            std::process::exit(2);
        })
}

fn usage() {
    eprintln!(
        "usage: repro <fig10|fig11|fig12|fig13|fig14|fig16|motivation|throughput|profile|storage|kernels|scale|mutate|trace|warm|all> \
         [--paper-scale] [--n N] [--md M] [--mq M] [--queries Q] \
         [--param md|hd|mq|hq|n|d] [--out-dir DIR] [--threads T] \
         [--threads-list 1,2,4,8] [--shards S] [--json PATH] [--smoke]"
    );
}
