//! Workload execution and aggregation.

use crate::datasets::Workbench;
use osd_core::{batch_stats, nn_candidates, FilterConfig, Operator, QueryEngine, Stats};
use std::time::Instant;

/// Aggregated measurements of one (dataset, operator, config) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Operator label ("SSD", …).
    pub op: &'static str,
    /// Average candidate-set size over the workload (Figures 10/11).
    pub avg_candidates: f64,
    /// Average query response time in milliseconds (Figures 12/13).
    pub avg_time_ms: f64,
    /// Average instance comparisons per query (Figure 16).
    pub avg_comparisons: f64,
    /// Average max-flow runs per query.
    pub avg_flow_runs: f64,
    /// Average MBR-level checks per query.
    pub avg_mbr_checks: f64,
}

/// Runs the NNC workload for one operator and aggregates the measurements.
pub fn run_cell(bench: &Workbench, op: Operator, cfg: &FilterConfig) -> CellResult {
    let mut candidates = 0usize;
    let mut total = Stats::default();
    let started = Instant::now();
    for q in &bench.queries {
        let res = nn_candidates(&bench.db, q, op, cfg);
        candidates += res.candidates.len();
        total.absorb(&res.stats);
    }
    let elapsed = started.elapsed();
    aggregate(op, candidates, total, elapsed, bench.queries.len())
}

/// As [`run_cell`] but spreading the queries over `threads` OS threads via
/// [`QueryEngine::run_batch`] — queries are independent and the database is
/// shared read-only. Counters stay exact (per-query [`Stats`] merge after
/// the join); per-query wall-clock is reported as aggregate-CPU divided by
/// the workload, so compare parallel/sequential timings with care.
pub fn run_cell_parallel(
    bench: &Workbench,
    op: Operator,
    cfg: &FilterConfig,
    threads: usize,
) -> CellResult {
    let threads = threads.max(1);
    if threads == 1 || bench.queries.len() <= 1 {
        return run_cell(bench, op, cfg);
    }
    let engine = QueryEngine::with_config(&bench.db, op, *cfg);
    let started = Instant::now();
    let results = engine.run_batch(&bench.queries, threads);
    let elapsed = started.elapsed();
    let candidates = results.iter().map(|r| r.candidates.len()).sum();
    let total = batch_stats(&results);
    aggregate(op, candidates, total, elapsed, bench.queries.len())
}

fn aggregate(
    op: Operator,
    candidates: usize,
    total: Stats,
    elapsed: std::time::Duration,
    queries: usize,
) -> CellResult {
    let nq = queries.max(1) as f64;
    CellResult {
        op: op.label(),
        avg_candidates: candidates as f64 / nq,
        avg_time_ms: elapsed.as_secs_f64() * 1e3 / nq,
        avg_comparisons: total.instance_comparisons as f64 / nq,
        avg_flow_runs: total.flow_runs as f64 / nq,
        avg_mbr_checks: total.mbr_checks as f64 / nq,
    }
}

/// Runs every operator over the workload.
pub fn run_all_ops(bench: &Workbench, cfg: &FilterConfig) -> Vec<CellResult> {
    Operator::ALL
        .iter()
        .map(|&op| run_cell(bench, op, cfg))
        .collect()
}

/// As [`run_all_ops`] with the queries of each cell spread over `threads`.
pub fn run_all_ops_parallel(
    bench: &Workbench,
    cfg: &FilterConfig,
    threads: usize,
) -> Vec<CellResult> {
    Operator::ALL
        .iter()
        .map(|&op| run_cell_parallel(bench, op, cfg, threads))
        .collect()
}

/// Output sink for experiment tables: always prints to stdout, optionally
/// mirrors each table into `<out_dir>/<slug>.csv` for plotting.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// When set, every table is also written as a CSV file here.
    pub out_dir: Option<std::path::PathBuf>,
}

impl Report {
    /// A stdout-only report.
    pub fn stdout() -> Self {
        Report { out_dir: None }
    }

    /// A report mirroring CSVs into `dir` (created on first use).
    pub fn with_csv(dir: impl Into<std::path::PathBuf>) -> Self {
        Report {
            out_dir: Some(dir.into()),
        }
    }

    /// Emits one table.
    pub fn table(
        &self,
        title: &str,
        col_header: &str,
        cols: &[String],
        rows: &[(String, Vec<f64>)],
    ) {
        print_table(title, col_header, cols, rows);
        if let Some(dir) = &self.out_dir {
            if let Err(e) = write_csv(dir, title, col_header, cols, rows) {
                eprintln!("warning: could not write CSV for {title:?}: {e}");
            }
        }
    }
}

fn write_csv(
    dir: &std::path::Path,
    title: &str,
    col_header: &str,
    cols: &[String],
    rows: &[(String, Vec<f64>)],
) -> std::io::Result<()> {
    use std::io::Write;
    std::fs::create_dir_all(dir)?;
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let path = dir.join(format!("{slug}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "{col_header}")?;
    for c in cols {
        write!(f, ",{c}")?;
    }
    writeln!(f)?;
    for (name, cells) in rows {
        write!(f, "{name}")?;
        for v in cells {
            write!(f, ",{v}")?;
        }
        writeln!(f)?;
    }
    f.flush()
}

/// Prints a row-per-series table: `rows` × `columns` of f64 cells.
pub fn print_table(title: &str, col_header: &str, cols: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    let width = cols.iter().map(|c| c.len() + 2).max().unwrap_or(12).max(12);
    print!("{:>10}", col_header);
    for c in cols {
        print!("{c:>width$}");
    }
    println!();
    for (name, cells) in rows {
        print!("{name:>10}");
        for v in cells {
            if *v >= 1000.0 {
                print!("{v:>width$.0}");
            } else if *v >= 10.0 {
                print!("{v:>width$.1}");
            } else {
                print!("{v:>width$.3}");
            }
        }
        println!();
    }
}
