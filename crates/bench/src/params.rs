//! Experiment parameters (Table 2) with laptop-scale defaults.
//!
//! The paper's defaults (`n = 100k`, `m_d = 40`, `m_q = 30`, 100 queries)
//! make a full sweep a cluster-afternoon job; the harness defaults scale
//! the object count and workload down so every figure reproduces in
//! minutes, and `--paper-scale` restores the original values.
//! EXPERIMENTS.md records which scale produced each reported number.

/// Tunable experiment scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Number of objects (`n`). Paper default: 100_000.
    pub n: usize,
    /// Instances per object (`m_d`). Paper default: 40.
    pub m_d: usize,
    /// Expected object edge length (`h_d`). Paper default: 400.
    pub h_d: f64,
    /// Query instances (`m_q`). Paper default: 30.
    pub m_q: usize,
    /// Expected query edge length (`h_q`). Paper default: 200.
    pub h_q: f64,
    /// Dimensionality (`d`). Paper default: 3.
    pub dim: usize,
    /// Queries per workload. Paper default: 100.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Laptop-scale defaults: every figure runs in minutes while keeping the
    /// paper's *ratios* (`h_q = h_d / 2`, `m_q = 3·m_d / 4`).
    pub fn laptop() -> Self {
        Scale {
            n: 2_000,
            m_d: 12,
            h_d: 400.0,
            m_q: 9,
            h_q: 200.0,
            dim: 3,
            queries: 10,
            seed: 0x0517,
        }
    }

    /// The paper's Table 2 defaults.
    pub fn paper() -> Self {
        Scale {
            n: 100_000,
            m_d: 40,
            h_d: 400.0,
            m_q: 30,
            h_q: 200.0,
            dim: 3,
            queries: 100,
            seed: 0x0517,
        }
    }
}

/// Sweep values per figure axis. Laptop-scale sweeps shrink `n` and `m`
/// proportionally; the remaining axes keep the paper's literal values.
pub struct Sweeps;

impl Sweeps {
    /// `m_d` axis (Figures 11(a)/13(a)/16). Paper: 20..100 step 20.
    pub fn m_d(paper: bool) -> Vec<usize> {
        if paper {
            vec![20, 40, 60, 80, 100]
        } else {
            vec![6, 12, 18, 24, 30]
        }
    }

    /// `h_d` axis (Figures 11(b)/13(b)). Paper: 100..500.
    pub fn h_d() -> Vec<f64> {
        vec![100.0, 200.0, 300.0, 400.0, 500.0]
    }

    /// `m_q` axis (Figures 11(c)/13(c)). Paper: 10..50.
    pub fn m_q(paper: bool) -> Vec<usize> {
        if paper {
            vec![10, 20, 30, 40, 50]
        } else {
            vec![3, 6, 9, 12, 15]
        }
    }

    /// `h_q` axis (Figures 11(d)/13(d)). Paper: 100..500.
    pub fn h_q() -> Vec<f64> {
        vec![100.0, 200.0, 300.0, 400.0, 500.0]
    }

    /// `n` axis (Figures 11(e)/13(e)). Paper: 200k..1M on USA.
    pub fn n(paper: bool) -> Vec<usize> {
        if paper {
            vec![200_000, 400_000, 600_000, 800_000, 1_000_000]
        } else {
            vec![1_000, 2_000, 4_000, 6_000, 8_000]
        }
    }

    /// `d` axis (Figures 11(f)/13(f)). Paper: 2..5.
    pub fn dim() -> Vec<usize> {
        vec![2, 3, 4, 5]
    }
}
