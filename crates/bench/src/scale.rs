//! `repro scale` — million-object sharded-index scalability.
//!
//! Builds the USA surrogate (2-d clustered, the paper's scalability
//! dataset) at large `n`, indexes it both flat and STR-tile sharded, and
//! measures three things per point:
//!
//! 1. **build time** — flat vs sharded bulk load;
//! 2. **memory per shard** — the [`osd_core::IndexStats`] breakdown
//!    (objects, instances, tree nodes, approximate bytes per STR tile);
//! 3. **query throughput and node visits** — the merged-forest traversal
//!    (all shard roots in one heap, one shared prune bound) against
//!    scatter-gather (one independent descent per shard, fanned over
//!    worker threads). Candidates are validated bit-identical across the
//!    flat, merged and scatter paths; the *cost* difference is the point:
//!    the shared bound prunes nodes that the independent per-shard
//!    descents must expand.
//!
//! The full run (`n = 100k` and `1M`) writes `BENCH_scale.json`; `--smoke`
//! runs a small assertion-only point for CI and never touches the artifact.

use crate::datasets::{build_objects, build_queries, DatasetId};
use crate::params::Scale;
use crate::throughput::host_cpus;
use osd_core::{
    nn_candidates, nn_candidates_scatter, FilterConfig, IndexStats, Operator, PreparedQuery,
    ShardedDatabase, SpatialIndex,
};
use std::time::Instant;

/// One measured point of the scalability curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Object count.
    pub n: usize,
    /// Seconds to bulk-load the flat index.
    pub build_flat_s: f64,
    /// Seconds to STR-partition and bulk-load the sharded index.
    pub build_sharded_s: f64,
    /// Per-shard size breakdown of the sharded index.
    pub stats: IndexStats,
    /// Queries per second: flat merged-traversal baseline.
    pub qps_flat: f64,
    /// Queries per second: sharded merged-forest traversal.
    pub qps_merged: f64,
    /// Queries per second: sharded scatter-gather.
    pub qps_scatter: f64,
    /// Total R-tree nodes visited across the workload, merged traversal.
    pub visits_merged: u64,
    /// Total R-tree nodes visited across the workload, scatter-gather.
    pub visits_scatter: u64,
}

/// A full `repro scale` run.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Dataset label.
    pub dataset: &'static str,
    /// Operator label.
    pub op: &'static str,
    /// Instances per object.
    pub m_d: usize,
    /// Queries per point.
    pub queries: usize,
    /// STR tiles per sharded index.
    pub shards: usize,
    /// Worker threads handed to the scatter path.
    pub threads: usize,
    /// Logical CPUs the host reports.
    pub host_cpus: usize,
    /// One point per object count.
    pub points: Vec<ScalePoint>,
}

impl ScaleReport {
    /// Renders the report as a JSON document (hand-formatted; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"dataset\": \"{}\",\n", self.dataset));
        out.push_str(&format!("  \"operator\": \"{}\",\n", self.op));
        out.push_str(&format!("  \"m_d\": {},\n", self.m_d));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!("    {{ \"n\": {},\n", p.n));
            out.push_str(&format!(
                "      \"build_flat_s\": {:.6}, \"build_sharded_s\": {:.6},\n",
                p.build_flat_s, p.build_sharded_s
            ));
            out.push_str(&format!(
                "      \"qps\": {{ \"flat\": {:.3}, \"merged\": {:.3}, \"scatter\": {:.3} }},\n",
                p.qps_flat, p.qps_merged, p.qps_scatter
            ));
            out.push_str(&format!(
                "      \"node_visits\": {{ \"merged\": {}, \"scatter\": {} }},\n",
                p.visits_merged, p.visits_scatter
            ));
            out.push_str("      \"per_shard\": [\n");
            for (j, s) in p.stats.shards.iter().enumerate() {
                let ssep = if j + 1 == p.stats.shards.len() {
                    ""
                } else {
                    ","
                };
                out.push_str(&format!(
                    "        {{ \"objects\": {}, \"instances\": {}, \"tree_nodes\": {}, \
                     \"tree_height\": {}, \"approx_bytes\": {} }}{ssep}\n",
                    s.objects,
                    s.instances,
                    s.tree_nodes,
                    s.tree_height.map_or(0, |h| h),
                    s.approx_bytes
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!("    }}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures one scalability point: builds the USA surrogate at `n`
/// objects, indexes it flat and sharded, runs the workload through the
/// three execution paths and cross-validates their candidate ids.
///
/// # Panics
/// Panics if any path's candidate ids diverge from the flat baseline —
/// that would be a sharding correctness bug, not a measurement artefact.
pub fn measure_point(scale: &Scale, shards: usize, threads: usize, op: Operator) -> ScalePoint {
    let objects = build_objects(DatasetId::Usa, scale);
    let queries = build_queries(&objects, DatasetId::Usa, scale);
    let cfg = FilterConfig::all();

    let started = Instant::now();
    let flat = osd_core::Database::new(objects.clone());
    let build_flat_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let sharded = ShardedDatabase::new(objects, shards);
    let build_sharded_s = started.elapsed().as_secs_f64();

    let (flat_ids, _, qps_flat) = run_workload(&queries, |q| {
        let r = nn_candidates(&flat, q, op, &cfg);
        (r.ids(), r.stats.rtree_nodes_visited)
    });
    let (merged_ids, visits_merged, qps_merged) = run_workload(&queries, |q| {
        let r = nn_candidates(&sharded, q, op, &cfg);
        (r.ids(), r.stats.rtree_nodes_visited)
    });
    let (scatter_ids, visits_scatter, qps_scatter) = run_workload(&queries, |q| {
        let r = nn_candidates_scatter(&sharded, q, op, &cfg, threads);
        (r.ids(), r.stats.rtree_nodes_visited)
    });
    assert_eq!(
        merged_ids, flat_ids,
        "merged traversal diverged from the flat baseline"
    );
    assert_eq!(
        scatter_ids, flat_ids,
        "scatter-gather diverged from the flat baseline"
    );

    ScalePoint {
        n: flat.len(),
        build_flat_s,
        build_sharded_s,
        stats: sharded.index_stats(),
        qps_flat,
        qps_merged,
        qps_scatter,
        visits_merged,
        visits_scatter,
    }
}

/// Runs every query through `exec`, returning the per-query candidate
/// ids, the summed node-visit counter and the measured qps.
fn run_workload(
    queries: &[PreparedQuery],
    exec: impl Fn(&PreparedQuery) -> (Vec<usize>, u64),
) -> (Vec<Vec<usize>>, u64, f64) {
    let started = Instant::now();
    let mut ids = Vec::with_capacity(queries.len());
    let mut visits = 0u64;
    for q in queries {
        let (i, v) = exec(q);
        ids.push(i);
        visits += v;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let qps = if elapsed > 0.0 {
        queries.len() as f64 / elapsed
    } else {
        f64::INFINITY
    };
    (ids, visits, qps)
}

/// The workload shape of a scalability point: thin objects (few instances)
/// and a short query list, so the measured axis is the index, not the
/// dominance kernels.
fn scale_for(n: usize, seed_salt: u64) -> Scale {
    Scale {
        n,
        m_d: 4,
        m_q: 3,
        queries: 5,
        dim: 2,
        seed: 0x0517 ^ seed_salt,
        ..Scale::laptop()
    }
}

/// Runs the scalability benchmark and prints the table; writes the JSON
/// artifact when `json_path` is given. `smoke` shrinks the run to one
/// assertion-heavy CI-sized point.
pub fn scale(ns: &[usize], shards: usize, threads: usize, smoke: bool, json_path: Option<&str>) {
    let op = Operator::SSd;
    let ns: Vec<usize> = if ns.is_empty() {
        if smoke {
            vec![2_000]
        } else {
            vec![100_000, 1_000_000]
        }
    } else {
        ns.to_vec()
    };
    let threads = threads.max(1);
    let mut points = Vec::with_capacity(ns.len());
    println!(
        "\n== Scale: {} on USA ({} shards, {} scatter threads, host_cpus={}) ==",
        op.label(),
        shards,
        threads,
        host_cpus()
    );
    println!(
        "{:>9} {:>11} {:>13} {:>9} {:>9} {:>10} {:>13} {:>14}",
        "n",
        "build_flat",
        "build_sharded",
        "qps_flat",
        "qps_mrgd",
        "qps_scat",
        "visits_mrgd",
        "visits_scat"
    );
    for &n in &ns {
        let sc = scale_for(n, shards as u64);
        let p = measure_point(&sc, shards, threads, op);
        if smoke {
            // The shared prune bound must never expand more nodes than the
            // independent per-shard descents it replaces.
            assert!(
                p.visits_merged <= p.visits_scatter,
                "merged traversal visited {} nodes, scatter only {}",
                p.visits_merged,
                p.visits_scatter
            );
            // STR tile packing may overshoot the requested count slightly;
            // it never undershoots (one tile per requested part minimum).
            assert!(p.stats.shards.len() >= shards.min(n));
        }
        println!(
            "{:>9} {:>10.3}s {:>12.3}s {:>9.1} {:>9.1} {:>10.1} {:>13} {:>14}",
            p.n,
            p.build_flat_s,
            p.build_sharded_s,
            p.qps_flat,
            p.qps_merged,
            p.qps_scatter,
            p.visits_merged,
            p.visits_scatter
        );
        points.push(p);
    }
    let report = ScaleReport {
        dataset: DatasetId::Usa.label(),
        op: op.label(),
        m_d: 4,
        queries: 5,
        shards,
        threads,
        host_cpus: host_cpus(),
        points,
    };
    if let Some(path) = json_path {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_validates_and_reports_shards() {
        let sc = scale_for(300, 4);
        let p = measure_point(&sc, 4, 2, Operator::SSd);
        assert_eq!(p.n, 300);
        assert!(p.stats.shards.len() >= 4);
        assert_eq!(p.stats.objects, 300);
        assert!(p.visits_merged <= p.visits_scatter);
        assert!(p.qps_flat > 0.0 && p.qps_merged > 0.0 && p.qps_scatter > 0.0);
        let total: usize = p.stats.shards.iter().map(|s| s.objects).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn json_is_balanced_and_carries_metadata() {
        let sc = scale_for(120, 2);
        let p = measure_point(&sc, 2, 1, Operator::SSd);
        let report = ScaleReport {
            dataset: "USA",
            op: "S-SD",
            m_d: 4,
            queries: 5,
            shards: 2,
            threads: 1,
            host_cpus: host_cpus(),
            points: vec![p],
        };
        let json = report.to_json();
        assert!(json.contains("\"host_cpus\":"));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"per_shard\": ["));
        assert!(json.contains("\"approx_bytes\":"));
        assert!(json.contains("\"node_visits\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
