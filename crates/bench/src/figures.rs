//! One function per figure of the paper's evaluation (§6 and Appendix C).
//!
//! Every function prints the same rows/series the paper plots. Absolute
//! numbers differ (scaled datasets, surrogate generators, different
//! hardware) but the *shapes* — who wins, by what factor, where crossovers
//! fall — are the reproduction target. See EXPERIMENTS.md.

use crate::datasets::{build, build_objects, build_queries, DatasetId, Workbench};
use crate::params::{Scale, Sweeps};
use crate::runner::{run_all_ops, run_all_ops_parallel, run_cell, Report};
use osd_core::{CheckCtx, FilterConfig, Operator, ProgressiveNnc};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 10: average NN-candidate count per dataset, all five operators.
pub fn fig10(scale: &Scale, report: &Report) {
    fig10_with_threads(scale, report, 1)
}

/// [`fig10`] with the workload spread over `threads` OS threads.
pub fn fig10_with_threads(scale: &Scale, report: &Report, threads: usize) {
    let cols: Vec<String> = DatasetId::ALL
        .iter()
        .map(|d| d.label().to_string())
        .collect();
    let mut rows: Vec<(String, Vec<f64>)> = Operator::ALL
        .iter()
        .map(|op| (op.label().to_string(), Vec::new()))
        .collect();
    for id in DatasetId::ALL {
        eprintln!("[fig10] running {}", id.label());
        let bench = build(id, scale);
        let cells = run_all_ops_parallel(&bench, &FilterConfig::all(), threads);
        for (row, cell) in rows.iter_mut().zip(cells) {
            row.1.push(cell.avg_candidates);
        }
    }
    report.table(
        "Figure 10: candidate size by dataset",
        "dataset",
        &cols,
        &rows,
    );
}

/// Figure 12: average query response time (ms) per dataset.
pub fn fig12(scale: &Scale, report: &Report) {
    let cols: Vec<String> = DatasetId::ALL
        .iter()
        .map(|d| d.label().to_string())
        .collect();
    let mut rows: Vec<(String, Vec<f64>)> = Operator::ALL
        .iter()
        .map(|op| (op.label().to_string(), Vec::new()))
        .collect();
    for id in DatasetId::ALL {
        eprintln!("[fig12] running {}", id.label());
        let bench = build(id, scale);
        for (row, cell) in rows
            .iter_mut()
            .zip(run_all_ops(&bench, &FilterConfig::all()))
        {
            row.1.push(cell.avg_time_ms);
        }
    }
    report.table(
        "Figure 12: response time (ms) by dataset",
        "dataset",
        &cols,
        &rows,
    );
}

/// Which parameter a Figure 11/13 sub-plot sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// (a) object instances `m_d` on A-N.
    Md,
    /// (b) object edge `h_d` on A-N.
    Hd,
    /// (c) query instances `m_q` on A-N.
    Mq,
    /// (d) query edge `h_q` on A-N.
    Hq,
    /// (e) object count `n` on USA.
    N,
    /// (f) dimensionality `d` on A-N.
    Dim,
}

impl SweepParam {
    /// All six sub-plots.
    pub const ALL: [SweepParam; 6] = [
        SweepParam::Md,
        SweepParam::Hd,
        SweepParam::Mq,
        SweepParam::Hq,
        SweepParam::N,
        SweepParam::Dim,
    ];

    /// Axis label.
    pub fn label(&self) -> &'static str {
        match self {
            SweepParam::Md => "m_d",
            SweepParam::Hd => "h_d",
            SweepParam::Mq => "m_q",
            SweepParam::Hq => "h_q",
            SweepParam::N => "n",
            SweepParam::Dim => "d",
        }
    }

    /// Parses a `--param` value.
    pub fn parse(s: &str) -> Option<SweepParam> {
        match s {
            "md" => Some(SweepParam::Md),
            "hd" => Some(SweepParam::Hd),
            "mq" => Some(SweepParam::Mq),
            "hq" => Some(SweepParam::Hq),
            "n" => Some(SweepParam::N),
            "d" | "dim" => Some(SweepParam::Dim),
            _ => None,
        }
    }
}

/// Builds the benches of one sweep: `(axis value label, workbench)`.
fn sweep_benches(param: SweepParam, scale: &Scale, paper: bool) -> Vec<(String, Workbench)> {
    let dataset = if param == SweepParam::N {
        DatasetId::Usa
    } else {
        DatasetId::AN
    };
    let points: Vec<Scale> = match param {
        SweepParam::Md => Sweeps::m_d(paper)
            .into_iter()
            .map(|v| Scale {
                m_d: v,
                ..scale.clone()
            })
            .collect(),
        SweepParam::Hd => Sweeps::h_d()
            .into_iter()
            .map(|v| Scale {
                h_d: v,
                ..scale.clone()
            })
            .collect(),
        SweepParam::Mq => Sweeps::m_q(paper)
            .into_iter()
            .map(|v| Scale {
                m_q: v,
                ..scale.clone()
            })
            .collect(),
        SweepParam::Hq => Sweeps::h_q()
            .into_iter()
            .map(|v| Scale {
                h_q: v,
                ..scale.clone()
            })
            .collect(),
        SweepParam::N => Sweeps::n(paper)
            .into_iter()
            .map(|v| Scale {
                n: v,
                ..scale.clone()
            })
            .collect(),
        SweepParam::Dim => Sweeps::dim()
            .into_iter()
            .map(|v| Scale {
                dim: v,
                ..scale.clone()
            })
            .collect(),
    };
    points
        .into_iter()
        .map(|s| {
            let label = match param {
                SweepParam::Md => s.m_d.to_string(),
                SweepParam::Hd => s.h_d.to_string(),
                SweepParam::Mq => s.m_q.to_string(),
                SweepParam::Hq => s.h_q.to_string(),
                SweepParam::N => s.n.to_string(),
                SweepParam::Dim => s.dim.to_string(),
            };
            eprintln!("[sweep {}] {} = {}", dataset.label(), param.label(), label);
            (label, build(dataset, &s))
        })
        .collect()
}

/// Figures 11 (candidate size) and 13 (response time): parameter sweeps.
pub fn fig11_13(param: SweepParam, scale: &Scale, paper: bool, report: &Report) {
    let benches = sweep_benches(param, scale, paper);
    let cols: Vec<String> = benches.iter().map(|(l, _)| l.clone()).collect();
    let mut size_rows: Vec<(String, Vec<f64>)> = Operator::ALL
        .iter()
        .map(|op| (op.label().to_string(), Vec::new()))
        .collect();
    let mut time_rows = size_rows.clone();
    for (_, bench) in &benches {
        for ((srow, trow), cell) in size_rows
            .iter_mut()
            .zip(time_rows.iter_mut())
            .zip(run_all_ops(bench, &FilterConfig::all()))
        {
            srow.1.push(cell.avg_candidates);
            trow.1.push(cell.avg_time_ms);
        }
    }
    report.table(
        &format!("Figure 11: candidate size vs {}", param.label()),
        param.label(),
        &cols,
        &size_rows,
    );
    report.table(
        &format!("Figure 13: response time (ms) vs {}", param.label()),
        param.label(),
        &cols,
        &time_rows,
    );
}

/// Figure 14: the progressive property on USA — response time and candidate
/// quality as functions of the candidate-return progress.
pub fn fig14(scale: &Scale, report: &Report) {
    let bench = build(DatasetId::Usa, scale);
    let deciles = 10usize;
    let mut time_at = vec![0.0f64; deciles + 1];
    let mut quality_at = vec![0.0f64; deciles + 1];
    let mut counted = vec![0usize; deciles + 1];
    // Quality = number of objects a returned candidate dominates; estimated
    // against a fixed random sample of objects to bound the cost.
    let sample_size = 300.min(bench.db.len());
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xf14);
    let sample: Vec<usize> = (0..sample_size)
        .map(|_| rng.gen_range(0..bench.db.len()))
        .collect();
    let cfg = FilterConfig::all();

    for q in &bench.queries {
        let mut prog = ProgressiveNnc::new(&bench.db, q, Operator::PSd, &cfg);
        let mut emitted = Vec::new();
        while let Some(c) = prog.next_candidate() {
            emitted.push(c);
        }
        if emitted.is_empty() {
            continue;
        }
        let total_time = emitted.last().unwrap().elapsed.as_secs_f64();
        let k = emitted.len();
        let mut ctx = CheckCtx::new(&bench.db, q, cfg);
        let dominated: Vec<f64> = emitted
            .iter()
            .map(|c| {
                let hits = sample
                    .iter()
                    .filter(|&&v| v != c.id && ctx.dominates(Operator::PSd, c.id, v))
                    .count();
                hits as f64 * bench.db.len() as f64 / sample_size as f64
            })
            .collect();
        for dec in 0..=deciles {
            let upto = ((dec * k).div_ceil(deciles)).clamp(1, k);
            time_at[dec] += emitted[upto - 1].elapsed.as_secs_f64() / total_time.max(1e-12);
            quality_at[dec] += dominated[..upto].iter().sum::<f64>() / upto as f64;
            counted[dec] += 1;
        }
    }
    let cols: Vec<String> = (0..=deciles).map(|d| format!("{}%", d * 10)).collect();
    let time_row: Vec<f64> = time_at
        .iter()
        .zip(&counted)
        .map(|(t, &c)| if c > 0 { 100.0 * t / c as f64 } else { 0.0 })
        .collect();
    let quality_row: Vec<f64> = quality_at
        .iter()
        .zip(&counted)
        .map(|(q, &c)| if c > 0 { q / c as f64 } else { 0.0 })
        .collect();
    report.table(
        "Figure 14(a): PSD time to return X% of candidates (% of total)",
        "progress",
        &cols,
        &[("time%".to_string(), time_row)],
    );
    report.table(
        "Figure 14(b): candidate quality (avg objects dominated, est.)",
        "progress",
        &cols,
        &[("quality".to_string(), quality_row)],
    );
}

/// Figure 16 (Appendix C): filtering-technique ablation — average instance
/// comparisons vs `m_d` on HOUSE for SSD, SSSD and PSD under
/// BF / L / LP / LG / LGP / All.
pub fn fig16(scale: &Scale, paper: bool, report: &Report) {
    let m_ds = Sweeps::m_d(paper);
    for op in [Operator::SSd, Operator::SsSd, Operator::PSd] {
        let mut rows: Vec<(String, Vec<f64>)> = FilterConfig::ablation_ladder()
            .iter()
            .map(|(name, _)| (name.to_string(), Vec::new()))
            .collect();
        let cols: Vec<String> = m_ds.iter().map(|m| m.to_string()).collect();
        for &m_d in &m_ds {
            eprintln!("[fig16 {}] m_d = {}", op.label(), m_d);
            let s = Scale {
                m_d,
                ..scale.clone()
            };
            let objects = build_objects(DatasetId::House, &s);
            let queries = build_queries(&objects, DatasetId::House, &s);
            let bench = Workbench {
                db: osd_core::Database::new(objects),
                queries,
            };
            for (row, (_, cfg)) in rows.iter_mut().zip(FilterConfig::ablation_ladder()) {
                let cell = run_cell(&bench, op, &cfg);
                row.1.push(cell.avg_comparisons);
            }
        }
        report.table(
            &format!(
                "Figure 16: avg instance comparisons vs m_d ({}, HOUSE)",
                op.label()
            ),
            "m_d",
            &cols,
            &rows,
        );
    }
}
