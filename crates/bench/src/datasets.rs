//! Named dataset construction for the §6 evaluation.

use crate::params::Scale;
use osd_core::{Database, PreparedQuery};
use osd_datagen::{
    clustered_centers_2d, generate_objects, gowalla_like, house_like_centers, nba_like,
    object_around, objects_from_centers, CenterDistribution, SynthParams,
};
use osd_uncertain::UncertainObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seven evaluation datasets of Figure 10/12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// 3-d synthetic, anti-correlated centres, normal instances.
    AN,
    /// 3-d synthetic, independent centres, normal instances.
    EN,
    /// HOUSE surrogate (3-d expenditure shares).
    House,
    /// CA surrogate (2-d clustered locations).
    Ca,
    /// NBA surrogate (3-d, few objects, heavy overlap).
    Nba,
    /// GoWalla surrogate (2-d, hotspot check-ins).
    Gw,
    /// USA surrogate (2-d clustered, scalability dataset).
    Usa,
}

impl DatasetId {
    /// All datasets in the paper's presentation order.
    pub const ALL: [DatasetId; 7] = [
        DatasetId::AN,
        DatasetId::EN,
        DatasetId::House,
        DatasetId::Ca,
        DatasetId::Nba,
        DatasetId::Gw,
        DatasetId::Usa,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetId::AN => "A-N",
            DatasetId::EN => "E-N",
            DatasetId::House => "HOUSE",
            DatasetId::Ca => "CA",
            DatasetId::Nba => "NBA",
            DatasetId::Gw => "GW",
            DatasetId::Usa => "USA",
        }
    }
}

/// A constructed dataset plus its query workload.
pub struct Workbench {
    /// Indexed objects.
    pub db: Database,
    /// Prepared query objects.
    pub queries: Vec<PreparedQuery>,
}

/// Builds a dataset and its workload under `scale`.
pub fn build(id: DatasetId, scale: &Scale) -> Workbench {
    let objects = build_objects(id, scale);
    let queries = build_queries(&objects, id, scale);
    Workbench {
        db: Database::new(objects),
        queries,
    }
}

/// Builds just the objects of a dataset.
pub fn build_objects(id: DatasetId, scale: &Scale) -> Vec<UncertainObject> {
    let seed = scale.seed;
    match id {
        DatasetId::AN | DatasetId::EN => {
            let centers = if id == DatasetId::AN {
                CenterDistribution::AntiCorrelated
            } else {
                CenterDistribution::Independent
            };
            generate_objects(&SynthParams {
                n: scale.n,
                dim: scale.dim,
                instances: scale.m_d,
                edge: scale.h_d,
                centers,
                seed,
            })
        }
        DatasetId::House => {
            let centers = house_like_centers(scale.n, seed);
            objects_from_centers(&centers, scale.m_d, scale.h_d, seed ^ 0x11)
        }
        DatasetId::Ca => {
            let centers = clustered_centers_2d(scale.n, 32, seed);
            objects_from_centers(&centers, scale.m_d, scale.h_d, seed ^ 0x22)
        }
        // NBA: roughly 1/8 as many objects as the synthetic default but
        // several times the instances (1,313 players × 227 games each in
        // the original), heavily overlapping.
        DatasetId::Nba => nba_like((scale.n / 8).max(8), scale.m_d * 4, seed),
        DatasetId::Gw => gowalla_like(scale.n, scale.m_d, seed),
        DatasetId::Usa => {
            let centers = clustered_centers_2d(scale.n, 64, seed);
            objects_from_centers(&centers, scale.m_d, scale.h_d, seed ^ 0x33)
        }
    }
}

/// Query workload: centres sampled from the dataset's objects (as in §6),
/// instance clouds regenerated with (`m_q`, `h_q`).
pub fn build_queries(
    objects: &[UncertainObject],
    id: DatasetId,
    scale: &Scale,
) -> Vec<PreparedQuery> {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x9e37);
    let _ = id;
    (0..scale.queries)
        .map(|_| {
            let base = &objects[rng.gen_range(0..objects.len())];
            let center = base.mbr().center();
            let q = object_around(
                &mut rng,
                center.coords(),
                center.dim(),
                scale.m_q,
                scale.h_q,
            );
            PreparedQuery::new(q)
        })
        .collect()
}
