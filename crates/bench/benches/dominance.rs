//! Criterion microbenchmarks of the dominance-check kernels (§5.1):
//! per-pair cost of S-SD, SS-SD, P-SD, F-SD and F⁺-SD at the paper's
//! default object/query sizes, with and without the filtering techniques.

// Leaf binary/bench: panic-family lints relaxed (see workspace policy).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osd_core::{CheckCtx, Database, FilterConfig, Operator, PreparedQuery};
use osd_datagen::{object_around, DOMAIN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Builds a pair of nearby objects plus a query, at instance count `m`.
fn pair(m: usize, seed: u64) -> (Database, PreparedQuery) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c1: Vec<f64> = (0..3).map(|_| rng.gen_range(0.3..0.4) * DOMAIN).collect();
    let c2: Vec<f64> = (0..3).map(|_| rng.gen_range(0.4..0.5) * DOMAIN).collect();
    let cq: Vec<f64> = (0..3).map(|_| rng.gen_range(0.25..0.35) * DOMAIN).collect();
    let u = object_around(&mut rng, &c1, 3, m, 400.0);
    let v = object_around(&mut rng, &c2, 3, m, 400.0);
    let q = object_around(&mut rng, &cq, 3, 30.min(m.max(2)), 200.0);
    (Database::new(vec![u, v]), PreparedQuery::new(q))
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance_check");
    for m in [10usize, 40, 100] {
        let (db, q) = pair(m, 42);
        for op in Operator::ALL {
            group.bench_with_input(BenchmarkId::new(op.label(), m), &m, |b, _| {
                b.iter(|| {
                    // Fresh context per iteration: measures the un-amortised
                    // pair cost, as a NNC query pays it on first contact.
                    let mut ctx = CheckCtx::new(&db, &q, FilterConfig::all());
                    black_box(ctx.dominates(op, 0, 1))
                })
            });
        }
    }
    group.finish();
}

fn bench_filter_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("psd_filter_ladder");
    let (db, q) = pair(40, 7);
    for (name, cfg) in FilterConfig::ablation_ladder() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ctx = CheckCtx::new(&db, &q, cfg);
                black_box(ctx.dominates(Operator::PSd, 0, 1))
            })
        });
    }
    group.finish();
}

fn bench_cached_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssd_cache_amortisation");
    let (db, q) = pair(40, 11);
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            let mut ctx = CheckCtx::new(&db, &q, FilterConfig::all());
            black_box(ctx.dominates(Operator::SSd, 0, 1))
        })
    });
    group.bench_function("warm_cache", |b| {
        let mut ctx = CheckCtx::new(&db, &q, FilterConfig::all());
        // Prime the distributions once.
        let _ = ctx.dominates(Operator::SSd, 0, 1);
        b.iter(|| black_box(ctx.dominates(Operator::SSd, 0, 1)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_filter_configs,
    bench_cached_vs_cold
);
criterion_main!(benches);
