//! Criterion benchmark of the end-to-end NNC computation (Algorithm 1) on
//! a laptop-scale A-N dataset, per operator, plus index construction.

// Leaf binary/bench: panic-family lints relaxed (see workspace policy).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osd_bench::{build, DatasetId, Scale};
use osd_core::{nn_candidates, Database, FilterConfig, Operator};
use std::hint::black_box;

fn bench_nnc(c: &mut Criterion) {
    let scale = Scale {
        n: 1_000,
        queries: 1,
        ..Scale::laptop()
    };
    let bench = build(DatasetId::AN, &scale);
    let query = &bench.queries[0];
    let mut group = c.benchmark_group("nnc_query");
    group.sample_size(20);
    for op in Operator::ALL {
        group.bench_with_input(BenchmarkId::new(op.label(), scale.n), &op, |b, &op| {
            b.iter(|| black_box(nn_candidates(&bench.db, query, op, &FilterConfig::all())))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("database_build");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let scale = Scale {
            n,
            queries: 1,
            ..Scale::laptop()
        };
        let objects = osd_bench::datasets::build_objects(DatasetId::AN, &scale);
        group.bench_with_input(BenchmarkId::new("a_n", n), &n, |b, _| {
            b.iter(|| black_box(Database::new(objects.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nnc, bench_index_build);
criterion_main!(benches);
