//! Criterion microbenchmarks of the substrates: R-tree construction and
//! queries, stochastic-order scans, max-flow / min-cost-flow solves, and
//! convex-hull extraction.

// Leaf binary/bench: panic-family lints relaxed (see workspace policy).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osd_flow::{MaxFlow, MinCostFlow};
use osd_geom::{hull_vertices, Mbr, Point};
use osd_rtree::{Entry, RTree};
use osd_uncertain::{stochastically_dominates, DistanceDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(vec![
                rng.gen_range(0.0..10_000.0),
                rng.gen_range(0.0..10_000.0),
            ])
        })
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree");
    for n in [1_000usize, 10_000, 100_000] {
        let pts = random_points(n, 3);
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, _| {
            b.iter(|| {
                let entries: Vec<Entry<usize>> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| Entry {
                        mbr: Mbr::from_point(p),
                        item: i,
                    })
                    .collect();
                black_box(RTree::bulk_load(32, entries))
            })
        });
        let entries: Vec<Entry<usize>> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| Entry {
                mbr: Mbr::from_point(p),
                item: i,
            })
            .collect();
        let tree = RTree::bulk_load(32, entries);
        let q = Point::new(vec![5_000.0, 5_000.0]);
        group.bench_with_input(BenchmarkId::new("nearest", n), &n, |b, _| {
            b.iter(|| black_box(tree.nearest(&q)))
        });
        group.bench_with_input(BenchmarkId::new("furthest", n), &n, |b, _| {
            b.iter(|| black_box(tree.furthest(&q)))
        });
    }
    group.finish();
}

fn bench_stochastic_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_order_scan");
    let mut rng = StdRng::seed_from_u64(5);
    for n in [100usize, 1_000, 10_000] {
        let mk = |rng: &mut StdRng, shift: f64| {
            let atoms: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.0..1_000.0) + shift, 1.0 / n as f64))
                .collect();
            DistanceDistribution::from_atoms(atoms)
        };
        let x = mk(&mut rng, 0.0);
        let y = mk(&mut rng, 100.0);
        group.bench_with_input(BenchmarkId::new("atoms", n), &n, |b, _| {
            b.iter(|| black_box(stochastically_dominates(&x, &y)))
        });
    }
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    for m in [10usize, 40, 100] {
        // Dense bipartite m × m network with unit-share capacities.
        group.bench_with_input(BenchmarkId::new("dinic_bipartite", m), &m, |b, _| {
            b.iter(|| {
                let (s, t) = (2 * m, 2 * m + 1);
                let mut g = MaxFlow::new(2 * m + 2);
                for i in 0..m {
                    g.add_edge(s, i, 1_000);
                    g.add_edge(m + i, t, 1_000);
                    for j in 0..m {
                        if (i + j) % 3 != 0 {
                            g.add_edge(i, m + j, u64::MAX / 4);
                        }
                    }
                }
                black_box(g.max_flow(s, t))
            })
        });
        group.bench_with_input(BenchmarkId::new("mcmf_transport", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(m as u64);
            let costs: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..100.0)).collect())
                .collect();
            b.iter(|| {
                let (s, t) = (2 * m, 2 * m + 1);
                let mut g = MinCostFlow::new(2 * m + 2);
                for (i, row) in costs.iter().enumerate() {
                    g.add_edge(s, i, 1_000, 0.0);
                    g.add_edge(m + i, t, 1_000, 0.0);
                    for (j, &cost) in row.iter().enumerate() {
                        g.add_edge(i, m + j, u64::MAX / 4, cost);
                    }
                }
                black_box(g.min_cost_flow(s, t, 1_000 * m as u64))
            })
        });
    }
    group.finish();
}

fn bench_hull(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_hull");
    for n in [10usize, 30, 100] {
        let pts = random_points(n, 9);
        group.bench_with_input(BenchmarkId::new("monotone_chain_2d", n), &n, |b, _| {
            b.iter(|| black_box(hull_vertices(&pts)))
        });
        let mut rng = StdRng::seed_from_u64(n as u64);
        let pts3: Vec<Point> = (0..n)
            .map(|_| {
                Point::new(vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ])
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("lp_hull_3d", n), &n, |b, _| {
            b.iter(|| black_box(hull_vertices(&pts3)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rtree,
    bench_stochastic_scan,
    bench_flow,
    bench_hull
);
criterion_main!(benches);
