//! # osd-nncore
//!
//! The **NN-core** competitor of Yuen et al. (TKDE 2010, \[36\] in the
//! paper): NN candidates derived from pairwise *superseding* competitions.
//!
//! `U` supersedes `V` w.r.t. the query when `U` is more likely than not to
//! be the closer of the two; the NN-core is the minimal set of objects such
//! that every member supersedes every non-member (the *top cycle* of the
//! superseding tournament).
//!
//! The paper's §1 shows NN-core is **too aggressive**: in Figure 1 the
//! NN-core is `{A}`, yet `C` is the NN under `max` and `B` under the
//! expected distance — so NN-core can miss the winner of common N1
//! functions (Remark 1 excludes it from the paper's evaluation for exactly
//! this reason). This crate exists so that claim can be demonstrated and
//! tested, not as a recommended operator.
//!
//! ```
//! use osd_geom::Point;
//! use osd_nncore::{nn_core, supersedes};
//! use osd_uncertain::UncertainObject;
//!
//! let q = UncertainObject::uniform(vec![Point::from([0.0])]);
//! let near = UncertainObject::uniform(vec![Point::from([1.0]), Point::from([2.0])]);
//! let far = UncertainObject::uniform(vec![Point::from([5.0]), Point::from([6.0])]);
//! assert!(supersedes(&near, &far, &q));
//! assert_eq!(nn_core(&[near, far], &q), vec![0]);
//! ```
#![warn(missing_docs)]

use osd_uncertain::UncertainObject;

/// `Pr(δ(U, Q) < δ(V, Q))` under independent instance draws (exact ties
/// contribute half their mass, keeping the competition symmetric:
/// `win(U,V) + win(V,U) = 1`).
pub fn win_probability(u: &UncertainObject, v: &UncertainObject, query: &UncertainObject) -> f64 {
    let mut win = 0.0;
    for q in query.instances() {
        for ui in u.instances() {
            let du = q.point.dist(&ui.point);
            for vj in v.instances() {
                let dv = q.point.dist(&vj.point);
                let mass = q.prob * ui.prob * vj.prob;
                match du.total_cmp(&dv) {
                    std::cmp::Ordering::Less => win += mass,
                    std::cmp::Ordering::Equal => win += 0.5 * mass,
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
    }
    win
}

/// Whether `U` supersedes `V`: `Pr(U closer) > 1/2`.
pub fn supersedes(u: &UncertainObject, v: &UncertainObject, query: &UncertainObject) -> bool {
    win_probability(u, v, query) > 0.5
}

/// Computes the NN-core: the minimal set `S` with every member superseding
/// every non-member. With strict majority wins the superseding relation is
/// a (possibly tied) tournament whose top cycle is found by ordering
/// objects by win count and taking the shortest prefix that beats all of
/// the rest. Returns indices into `objects`, ascending.
///
/// # Panics
/// Panics if `objects` is empty.
pub fn nn_core(objects: &[UncertainObject], query: &UncertainObject) -> Vec<usize> {
    assert!(!objects.is_empty(), "NN-core of an empty object set");
    let n = objects.len();
    if n == 1 {
        return vec![0];
    }
    // Pairwise win matrix.
    let mut beats = vec![vec![false; n]; n];
    let mut wins = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let p = win_probability(&objects[i], &objects[j], query);
            if p > 0.5 {
                beats[i][j] = true;
                wins[i] += 1;
            } else if p < 0.5 {
                beats[j][i] = true;
                wins[j] += 1;
            }
            // Exact ties leave both directions false: a tie blocks both
            // objects from excluding each other, growing the core.
        }
    }
    // Order by win count (descending) and find the shortest dominant prefix.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    for k in 1..n {
        let (core, rest) = order.split_at(k);
        let dominant = core.iter().all(|&u| rest.iter().all(|&v| beats[u][v]));
        if dominant {
            let mut out = core.to_vec();
            out.sort_unstable();
            return out;
        }
    }
    let mut out = order;
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn obj(points: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::new(
            points
                .iter()
                .map(|&(x, p)| (Point::new(vec![x]), p))
                .collect(),
        )
    }

    /// Figure 1 of the paper: three objects, two instances each at
    /// probability 0.6/0.4, query a single point. A supersedes B and C,
    /// B supersedes C, so NN-core = {A} — even though `max` prefers C and
    /// the expected distance prefers B.
    #[test]
    fn figure1_nn_core_is_a() {
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        // Distances mirror Figure 1's competition structure:
        // A = {1 (.6), 8 (.4)}, B = {2 (.6), 5 (.4)}, C = {4 (.6), 4.5 (.4)}.
        let a = obj(&[(1.0, 0.6), (8.0, 0.4)]);
        let b = obj(&[(2.0, 0.6), (5.0, 0.4)]);
        let c = obj(&[(4.0, 0.6), (4.5, 0.4)]);

        assert!((win_probability(&a, &b, &q) - 0.6).abs() < 1e-12);
        assert!(supersedes(&a, &b, &q));
        assert!(supersedes(&a, &c, &q));
        assert!(supersedes(&b, &c, &q));

        let objects = vec![a.clone(), b.clone(), c.clone()];
        assert_eq!(nn_core(&objects, &q), vec![0]);

        // …yet C is the NN under max, and B under the expected distance:
        // NN-core missed both (the paper's motivating observation).
        use osd_nnfuncs::{nn_under, N1Function};
        let nn_max = nn_under(&objects, |o| N1Function::Max.score(o, &q)).unwrap();
        let nn_mean = nn_under(&objects, |o| N1Function::Mean.score(o, &q)).unwrap();
        assert_eq!(nn_max, 2);
        assert_eq!(nn_mean, 1);
        assert!(!nn_core(&objects, &q).contains(&nn_max));
        assert!(!nn_core(&objects, &q).contains(&nn_mean));
    }

    #[test]
    fn win_probabilities_are_complementary() {
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let a = obj(&[(1.0, 0.5), (3.0, 0.5)]);
        let b = obj(&[(2.0, 0.5), (4.0, 0.5)]);
        let ab = win_probability(&a, &b, &q);
        let ba = win_probability(&b, &a, &q);
        assert!((ab + ba - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tie_keeps_both_in_core() {
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let a = obj(&[(1.0, 0.5), (4.0, 0.5)]);
        let twin = a.clone();
        let objects = vec![a, twin];
        assert_eq!(nn_core(&objects, &q), vec![0, 1]);
    }

    #[test]
    fn rock_paper_scissors_cycle_is_whole_core() {
        // A 3-cycle in the superseding tournament: the top cycle is all
        // three objects.
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        // Classic non-transitive construction (intransitive dice, smaller
        // distance wins): A = {1, 6, 8}, B = {2, 4, 9}, C = {3, 5, 7}:
        // Pr(A<B) = Pr(B<C) = Pr(C<A) = 5/9.
        let third = 1.0 / 3.0;
        let a = obj(&[(1.0, third), (6.0, third), (8.0, third)]);
        let b = obj(&[(2.0, third), (4.0, third), (9.0, third)]);
        let c = obj(&[(3.0, third), (5.0, third), (7.0, third)]);
        assert!(supersedes(&a, &b, &q));
        assert!(supersedes(&b, &c, &q));
        assert!(supersedes(&c, &a, &q));
        let objects = vec![a, b, c];
        assert_eq!(nn_core(&objects, &q), vec![0, 1, 2]);
    }

    #[test]
    fn multi_instance_query_supported() {
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0]), Point::new(vec![10.0])]);
        let near_both = obj(&[(4.0, 0.5), (6.0, 0.5)]);
        let far = obj(&[(20.0, 0.5), (25.0, 0.5)]);
        assert!(supersedes(&near_both, &far, &q));
        let objects = vec![near_both, far];
        assert_eq!(nn_core(&objects, &q), vec![0]);
    }

    #[test]
    fn single_object_core() {
        let q = UncertainObject::uniform(vec![Point::new(vec![0.0])]);
        let objects = vec![obj(&[(1.0, 1.0)])];
        assert_eq!(nn_core(&objects, &q), vec![0]);
    }
}
