//! Synthetic datasets per §6 / Table 2 of the paper.
//!
//! Object *centres* follow the anti-correlated or independent distributions
//! of Börzsönyi et al. \[8\]; each object's MBB edge lengths are drawn from
//! `U(0, 2·h_d)`; instances are drawn from a normal distribution with
//! standard deviation `h_d / 2` around the centre, truncated to the MBB.
//! All dimensions live in the domain `[0, 10000]`.

use crate::rng::{normal_clamped, std_normal};
use osd_geom::Point;
use osd_uncertain::UncertainObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain upper bound used throughout the experiments.
pub const DOMAIN: f64 = 10_000.0;

/// Centre placement distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CenterDistribution {
    /// `A`: anti-correlated — centres near the hyperplane `Σ x_i = const`
    /// with negatively correlated coordinates (Börzsönyi et al.).
    AntiCorrelated,
    /// `E`: independent — coordinates i.i.d. uniform.
    Independent,
}

/// Parameters of a synthetic dataset (Table 2 names in comments).
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Number of objects (`n`).
    pub n: usize,
    /// Dimensionality (`d`).
    pub dim: usize,
    /// Instances per object (`m_d`).
    pub instances: usize,
    /// Expected MBB edge length (`h_d`); actual edges ~ `U(0, 2·h_d)`.
    pub edge: f64,
    /// Centre distribution (anti / indep).
    pub centers: CenterDistribution,
    /// RNG seed — all generation is deterministic given the seed.
    pub seed: u64,
}

impl SynthParams {
    /// The paper's default configuration (scaled `n` is the caller's
    /// business): `d = 3`, `m_d = 40`, `h_d = 400`, anti-correlated.
    pub fn paper_default(n: usize) -> Self {
        SynthParams {
            n,
            dim: 3,
            instances: 40,
            edge: 400.0,
            centers: CenterDistribution::AntiCorrelated,
            seed: 0x5eed,
        }
    }
}

/// Generates the object set.
pub fn generate_objects(p: &SynthParams) -> Vec<UncertainObject> {
    assert!(
        p.n > 0 && p.dim > 0 && p.instances > 0,
        "degenerate parameters"
    );
    let mut rng = StdRng::seed_from_u64(p.seed);
    (0..p.n)
        .map(|_| {
            let center = sample_center(&mut rng, p.dim, p.centers);
            object_around(&mut rng, &center, p.dim, p.instances, p.edge)
        })
        .collect()
}

/// Generates `count` query objects with `m_q` instances and edge `h_q`,
/// centred at positions drawn like the data centres (the paper picks query
/// centres from the underlying dataset).
pub fn generate_queries(
    p: &SynthParams,
    count: usize,
    m_q: usize,
    h_q: f64,
    seed: u64,
) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let center = sample_center(&mut rng, p.dim, p.centers);
            object_around(&mut rng, &center, p.dim, m_q, h_q)
        })
        .collect()
}

/// Builds one multi-instance object around `center`: MBB edges
/// `~U(0, 2·edge)` per dimension, instances `N(center, edge/2)` truncated
/// to the MBB (and the domain), uniform instance probabilities.
pub fn object_around<R: Rng>(
    rng: &mut R,
    center: &[f64],
    dim: usize,
    instances: usize,
    edge: f64,
) -> UncertainObject {
    debug_assert_eq!(center.len(), dim);
    let half: Vec<f64> = (0..dim)
        .map(|_| rng.gen_range(0.0..=edge.max(1e-9)))
        .collect();
    let pts: Vec<Point> = (0..instances)
        .map(|_| {
            let coords: Vec<f64> = (0..dim)
                .map(|i| {
                    let lo = (center[i] - half[i]).max(0.0);
                    let hi = (center[i] + half[i]).min(DOMAIN);
                    normal_clamped(rng, center[i], edge / 2.0, lo.min(hi), hi.max(lo))
                })
                .collect();
            Point::new(coords)
        })
        .collect();
    UncertainObject::uniform(pts)
}

fn sample_center<R: Rng>(rng: &mut R, dim: usize, dist: CenterDistribution) -> Vec<f64> {
    match dist {
        CenterDistribution::Independent => (0..dim).map(|_| rng.gen_range(0.0..DOMAIN)).collect(),
        CenterDistribution::AntiCorrelated => anti_correlated(rng, dim),
    }
}

/// Börzsönyi-style anti-correlated sampling: pick a plane offset
/// `v ~ N(0.5, 0.0625)`, spread it across dimensions by repeatedly moving
/// mass between coordinate pairs, keeping `Σ x_i = d·v` while maximising
/// negative pairwise correlation.
fn anti_correlated<R: Rng>(rng: &mut R, dim: usize) -> Vec<f64> {
    // Plane position.
    let v = (0.5 + 0.0625 * std_normal(rng)).clamp(0.0, 1.0);
    let mut x = vec![v; dim];
    if dim > 1 {
        // Redistribute mass between random pairs: one coordinate gains what
        // the other loses, preserving the plane constraint.
        for _ in 0..dim * 4 {
            let i = rng.gen_range(0..dim);
            let j = rng.gen_range(0..dim);
            if i == j {
                continue;
            }
            let room = x[i].min(1.0 - x[j]);
            let delta = rng.gen_range(0.0..=room.max(1e-12)).min(room);
            x[i] -= delta;
            x[j] += delta;
        }
    }
    x.into_iter().map(|c| c * DOMAIN).collect()
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let p = SynthParams {
            n: 5,
            dim: 2,
            instances: 3,
            edge: 100.0,
            centers: CenterDistribution::Independent,
            seed: 42,
        };
        let a = generate_objects(&p);
        let b = generate_objects(&p);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.len(), y.len());
            for (px, py) in x.instances().iter().zip(y.instances().iter()) {
                assert_eq!(px.point.coords(), py.point.coords());
            }
        }
    }

    #[test]
    fn shapes_match_parameters() {
        let p = SynthParams {
            n: 20,
            dim: 3,
            instances: 7,
            edge: 200.0,
            centers: CenterDistribution::AntiCorrelated,
            seed: 1,
        };
        let objs = generate_objects(&p);
        assert_eq!(objs.len(), 20);
        for o in &objs {
            assert_eq!(o.len(), 7);
            assert_eq!(o.dim(), 3);
            // Instances stay in the domain.
            for pt in o.instances().iter().map(|i| &i.point) {
                for &c in pt.coords() {
                    assert!((0.0..=DOMAIN).contains(&c), "coordinate {c} out of domain");
                }
            }
            // The MBB respects (roughly) the 2·h_d upper bound per edge.
            for i in 0..3 {
                let w = o.mbr().hi()[i] - o.mbr().lo()[i];
                assert!(w <= 2.0 * 200.0 + 1e-9, "edge {w} too long");
            }
        }
    }

    #[test]
    fn anti_correlated_centers_sum_is_stable() {
        let mut rng = StdRng::seed_from_u64(9);
        // The coordinate sum concentrates around d·0.5·DOMAIN.
        let d = 3;
        let sums: Vec<f64> = (0..500)
            .map(|_| anti_correlated(&mut rng, d).iter().sum::<f64>())
            .collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        let expect = d as f64 * 0.5 * DOMAIN;
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn anti_correlated_negative_correlation() {
        let mut rng = StdRng::seed_from_u64(10);
        let pts: Vec<Vec<f64>> = (0..2000).map(|_| anti_correlated(&mut rng, 2)).collect();
        let mx = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        let my = pts.iter().map(|p| p[1]).sum::<f64>() / pts.len() as f64;
        let cov = pts.iter().map(|p| (p[0] - mx) * (p[1] - my)).sum::<f64>() / pts.len() as f64;
        assert!(cov < 0.0, "expected negative covariance, got {cov}");
    }

    #[test]
    fn queries_have_requested_shape() {
        let p = SynthParams::paper_default(10);
        let qs = generate_queries(&p, 4, 9, 150.0, 99);
        assert_eq!(qs.len(), 4);
        for q in &qs {
            assert_eq!(q.len(), 9);
            assert_eq!(q.dim(), 3);
        }
    }
}
