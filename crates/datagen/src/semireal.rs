//! Surrogate generators for the paper's real and semi-real datasets.
//!
//! The originals (NBA game logs, GoWalla check-ins, HOUSE expenditure
//! shares, the CA and USGS location sets) are not redistributable, so each
//! generator reproduces the *structural property* the experiments depend on
//! — see the substitution table in `DESIGN.md`:
//!
//! * `NBA` — few objects, 3-d, heavily **overlapping** instance clouds;
//! * `GW`  — many objects, 2-d, multi-hotspot per-object clouds;
//! * `HOUSE` — 3-d correlated centres (expenditure shares);
//! * `CA`  — 2-d clustered locations (road-network flavour);
//! * `USA` — 2-d clustered, scalable to millions of points.

use crate::rng::normal;
use crate::synthetic::{object_around, DOMAIN};
use osd_geom::Point;
use osd_uncertain::UncertainObject;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NBA surrogate: `n` players with `instances` 3-d game records each.
/// Per-player means differ mildly while the per-player spread is large, so
/// instance clouds overlap heavily — the property the paper highlights for
/// NBA/GW ("instances of objects are highly overlapped").
pub fn nba_like(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Player skill level shifts the mean of (points, assists,
            // rebounds); game-to-game variance is comparable to the skill
            // spread, so clouds overlap.
            let skill = rng.gen_range(0.2..1.0);
            let mean = [
                skill * 0.55 * DOMAIN,
                skill * 0.35 * DOMAIN,
                skill * 0.45 * DOMAIN,
            ];
            let pts: Vec<Point> = (0..instances)
                .map(|_| {
                    Point::new(vec![
                        normal(&mut rng, mean[0], 0.18 * DOMAIN).clamp(0.0, DOMAIN),
                        normal(&mut rng, mean[1], 0.15 * DOMAIN).clamp(0.0, DOMAIN),
                        normal(&mut rng, mean[2], 0.16 * DOMAIN).clamp(0.0, DOMAIN),
                    ])
                })
                .collect();
            UncertainObject::uniform(pts)
        })
        .collect()
}

/// GoWalla surrogate: `n` users, each with 2–4 "home" hotspots and
/// `instances` 2-d check-ins scattered tightly around them. Hotspots are
/// drawn from a shared set of city centres so different users overlap.
pub fn gowalla_like(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    // A shared map of "cities".
    let cities: Vec<[f64; 2]> = (0..64)
        .map(|_| [rng.gen_range(0.0..DOMAIN), rng.gen_range(0.0..DOMAIN)])
        .collect();
    (0..n)
        .map(|_| {
            let hotspot_count = rng.gen_range(2..=4);
            let hotspots: Vec<[f64; 2]> = (0..hotspot_count)
                .map(|_| {
                    let c = cities[rng.gen_range(0..cities.len())];
                    [
                        normal(&mut rng, c[0], 0.01 * DOMAIN).clamp(0.0, DOMAIN),
                        normal(&mut rng, c[1], 0.01 * DOMAIN).clamp(0.0, DOMAIN),
                    ]
                })
                .collect();
            let pts: Vec<Point> = (0..instances)
                .map(|_| {
                    let h = &hotspots[rng.gen_range(0..hotspots.len())];
                    Point::new(vec![
                        normal(&mut rng, h[0], 0.005 * DOMAIN).clamp(0.0, DOMAIN),
                        normal(&mut rng, h[1], 0.005 * DOMAIN).clamp(0.0, DOMAIN),
                    ])
                })
                .collect();
            UncertainObject::uniform(pts)
        })
        .collect()
}

/// HOUSE surrogate centres: 3-d expenditure shares — three positively
/// bounded, negatively coupled fractions of a family budget, scaled to the
/// domain.
pub fn house_like_centers(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Dirichlet-flavoured shares via normalised exponentials.
            let a: f64 = -rng.gen_range(f64::EPSILON..1.0f64).ln();
            let b: f64 = -rng.gen_range(f64::EPSILON..1.0f64).ln();
            let c: f64 = -rng.gen_range(f64::EPSILON..1.0f64).ln();
            let s = a + b + c;
            vec![a / s * DOMAIN, b / s * DOMAIN, c / s * DOMAIN]
        })
        .collect()
}

/// CA/USA surrogate centres: 2-d clustered locations. Cluster centres are
/// uniform; cluster populations follow a Zipf-ish skew; points scatter with
/// cluster-specific spread (tight towns, loose countryside).
pub fn clustered_centers_2d(n: usize, clusters: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs: Vec<([f64; 2], f64)> = (0..clusters.max(1))
        .map(|_| {
            let hub = [rng.gen_range(0.0..DOMAIN), rng.gen_range(0.0..DOMAIN)];
            let spread = rng.gen_range(0.003..0.03) * DOMAIN;
            (hub, spread)
        })
        .collect();
    (0..n)
        .map(|_| {
            // Zipf-ish hub choice: prefer low-index hubs.
            let r: f64 = rng.gen_range(0.0f64..1.0);
            let idx = ((hubs.len() as f64).powf(r) - 1.0) as usize;
            let (hub, spread) = &hubs[idx.min(hubs.len() - 1)];
            vec![
                normal(&mut rng, hub[0], *spread).clamp(0.0, DOMAIN),
                normal(&mut rng, hub[1], *spread).clamp(0.0, DOMAIN),
            ]
        })
        .collect()
}

/// Builds multi-instance objects from semi-real centres the way §6 does:
/// the centre distribution comes from the (surrogate) real data, the
/// instance clouds use the synthetic mechanism (`h_d`, normal instances).
pub fn objects_from_centers(
    centers: &[Vec<f64>],
    instances: usize,
    edge: f64,
    seed: u64,
) -> Vec<UncertainObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    centers
        .iter()
        .map(|c| object_around(&mut rng, c, c.len(), instances, edge))
        .collect()
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn nba_objects_overlap_heavily() {
        let objs = nba_like(30, 20, 3);
        assert_eq!(objs.len(), 30);
        // Overlap proxy: the average pairwise MBR intersection rate is high.
        let mut inter = 0usize;
        let mut total = 0usize;
        for i in 0..objs.len() {
            for j in (i + 1)..objs.len() {
                total += 1;
                if objs[i].mbr().intersects(objs[j].mbr()) {
                    inter += 1;
                }
            }
        }
        assert!(
            inter as f64 / total as f64 > 0.5,
            "NBA surrogate should overlap: {inter}/{total}"
        );
    }

    #[test]
    fn gowalla_objects_are_2d_and_multimodal() {
        let objs = gowalla_like(20, 30, 4);
        for o in &objs {
            assert_eq!(o.dim(), 2);
            assert_eq!(o.len(), 30);
        }
    }

    #[test]
    fn house_centers_live_on_simplex() {
        let cs = house_like_centers(200, 5);
        for c in &cs {
            let sum: f64 = c.iter().sum();
            assert!((sum - DOMAIN).abs() < 1e-6, "shares must sum to the domain");
            assert!(c.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn clustered_centers_cluster() {
        let cs = clustered_centers_2d(2000, 16, 6);
        assert_eq!(cs.len(), 2000);
        // Clustering proxy: mean nearest-neighbour distance is far below the
        // uniform expectation (~0.5 · DOMAIN / sqrt(n)).
        let mut nn_sum = 0.0;
        for (i, a) in cs.iter().enumerate().take(200) {
            let mut best = f64::INFINITY;
            for (j, b) in cs.iter().enumerate() {
                if i != j {
                    let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
                    best = best.min(d);
                }
            }
            nn_sum += best;
        }
        let mean_nn = nn_sum / 200.0;
        let uniform_expect = 0.5 * DOMAIN / (cs.len() as f64).sqrt();
        assert!(
            mean_nn < uniform_expect,
            "not clustered: {mean_nn} vs {uniform_expect}"
        );
    }

    #[test]
    fn objects_from_centers_respect_dim() {
        let cs = house_like_centers(10, 7);
        let objs = objects_from_centers(&cs, 5, 100.0, 8);
        assert_eq!(objs.len(), 10);
        for o in &objs {
            assert_eq!(o.dim(), 3);
            assert_eq!(o.len(), 5);
        }
    }
}
