//! # osd-datagen
//!
//! Dataset and workload generators for the `osd` experiments (§6, Table 2):
//!
//! * [`synthetic`] — anti-correlated / independent object centres
//!   (Börzsönyi et al.), normal instance clouds parameterised by
//!   `n, d, m_d, h_d`, plus matching query workloads (`m_q, h_q`);
//! * [`semireal`] — structural surrogates for the paper's real datasets
//!   (NBA, GoWalla, HOUSE, CA, USA); the substitution rationale is in
//!   `DESIGN.md`;
//! * [`rng`] — seeded Box–Muller sampling (generation is fully
//!   deterministic given the seed).

#![warn(missing_docs)]

pub mod io;
pub mod rng;
pub mod semireal;
pub mod synthetic;

pub use io::{read_objects_csv, write_objects_csv, DataError};
pub use semireal::{
    clustered_centers_2d, gowalla_like, house_like_centers, nba_like, objects_from_centers,
};
pub use synthetic::{
    generate_objects, generate_queries, object_around, CenterDistribution, SynthParams, DOMAIN,
};
