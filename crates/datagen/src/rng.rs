//! Small sampling helpers on top of `rand` (Box–Muller normal sampling,
//! so no extra distribution crate is needed).

use rand::Rng;

/// Samples a standard normal via Box–Muller.
pub fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sd)`.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal(rng)
}

/// Samples `N(mean, sd)` clamped into `[lo, hi]`.
pub fn normal_clamped<R: Rng>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, sd).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn clamping_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let x = normal_clamped(&mut rng, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }
}
