//! Plain-CSV import/export of multi-instance datasets.
//!
//! The paper's real datasets (NBA game logs, check-ins, …) arrive as flat
//! instance tables; this module reads and writes that shape so users can
//! swap the surrogate generators for their own data:
//!
//! ```text
//! object_id,weight,c0,c1[,c2,...]
//! 0,1.0,12.5,7.25
//! 0,1.0,13.0,8.00
//! 1,2.0,55.1,40.9
//! ```
//!
//! Weights are normalised per object (§2.1's multi-valued-object
//! transformation), so uniform datasets can simply use weight `1.0`.

use osd_geom::Point;
use osd_uncertain::{ObjectError, UncertainObject};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised while loading a dataset.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line (1-based line number and message).
    Parse(usize, String),
    /// A structurally invalid object (object id and cause).
    Object(u64, ObjectError),
    /// The file contained no instances.
    Empty,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            DataError::Object(id, e) => write!(f, "object {id}: {e}"),
            DataError::Empty => write!(f, "dataset contains no instances"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Writes objects as instance rows. Probabilities are emitted as weights.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_objects_csv(path: &Path, objects: &[UncertainObject]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "object_id,weight,coords...")?;
    for (id, o) in objects.iter().enumerate() {
        for inst in o.instances() {
            write!(w, "{id},{}", inst.prob)?;
            for c in inst.point.coords() {
                write!(w, ",{c}")?;
            }
            writeln!(w)?;
        }
    }
    w.flush()
}

/// Reads objects from instance rows (see the module docs for the format).
/// Lines starting with `#` and a leading header line are skipped. Object
/// ids need not be contiguous; output order follows ascending id.
///
/// # Errors
/// Returns a [`DataError`] on I/O failure, malformed rows, or invalid
/// objects.
pub fn read_objects_csv(path: &Path) -> Result<Vec<UncertainObject>, DataError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut groups: BTreeMap<u64, Vec<(Point, f64)>> = BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 3 {
            if lineno == 0 {
                continue; // header
            }
            return Err(DataError::Parse(
                lineno + 1,
                format!("expected at least 3 fields, got {}", fields.len()),
            ));
        }
        let id: u64 = match fields[0].trim().parse() {
            Ok(v) => v,
            Err(_) => {
                if lineno == 0 {
                    continue; // header line
                }
                return Err(DataError::Parse(
                    lineno + 1,
                    format!("bad object id {:?}", fields[0]),
                ));
            }
        };
        let weight: f64 = fields[1]
            .trim()
            .parse()
            .map_err(|_| DataError::Parse(lineno + 1, format!("bad weight {:?}", fields[1])))?;
        let coords: Result<Vec<f64>, DataError> = fields[2..]
            .iter()
            .map(|f| {
                f.trim()
                    .parse::<f64>()
                    .map_err(|_| DataError::Parse(lineno + 1, format!("bad coordinate {f:?}")))
            })
            .collect();
        groups
            .entry(id)
            .or_default()
            .push((Point::new(coords?), weight));
    }
    if groups.is_empty() {
        return Err(DataError::Empty);
    }
    groups
        .into_iter()
        .map(|(id, insts)| {
            UncertainObject::try_from_weighted(insts).map_err(|e| DataError::Object(id, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::synthetic::{generate_objects, CenterDistribution, SynthParams};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("osd-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_objects() {
        let params = SynthParams {
            n: 12,
            dim: 3,
            instances: 4,
            edge: 250.0,
            centers: CenterDistribution::Independent,
            seed: 55,
        };
        let objects = generate_objects(&params);
        let path = tmp("roundtrip.csv");
        write_objects_csv(&path, &objects).unwrap();
        let loaded = read_objects_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), objects.len());
        for (a, b) in loaded.iter().zip(objects.iter()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.instances().iter().zip(b.instances().iter()) {
                assert_eq!(x.point.coords(), y.point.coords());
                assert!((x.prob - y.prob).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn reads_weighted_rows_and_normalises() {
        let path = tmp("weighted.csv");
        std::fs::write(
            &path,
            "object_id,weight,coords...\n# comment\n0,2.0,1.0,2.0\n0,6.0,3.0,4.0\n5,1.0,9.0,9.0\n",
        )
        .unwrap();
        let objects = read_objects_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(objects.len(), 2);
        assert!((objects[0].instances()[0].prob - 0.25).abs() < 1e-12);
        assert!((objects[0].instances()[1].prob - 0.75).abs() < 1e-12);
        assert_eq!(objects[1].len(), 1);
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let path = tmp("bad.csv");
        std::fs::write(
            &path,
            "object_id,weight,coords...\n0,1.0,1.0\nnot-an-id,1.0,2.0\n",
        )
        .unwrap();
        let err = read_objects_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            DataError::Parse(line, msg) => {
                assert_eq!(line, 3);
                assert!(msg.contains("bad object id"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_file_is_an_error() {
        let path = tmp("empty.csv");
        std::fs::write(&path, "object_id,weight,coords...\n").unwrap();
        let err = read_objects_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, DataError::Empty));
    }

    #[test]
    fn bad_weight_is_attributed_to_object() {
        let path = tmp("badweight.csv");
        std::fs::write(&path, "h\n7,-1.0,1.0,2.0\n").unwrap();
        let err = read_objects_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, DataError::Object(7, _)));
    }
}
