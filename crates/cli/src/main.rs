//! `osd` — command-line NN-candidate search.

// Leaf binary/bench: panic-family lints relaxed (see workspace policy).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use osd_cli::args::Flags;
use osd_cli::commands::{run, usage};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprint!("{}", usage());
        return;
    }
    let sub = args.remove(0);
    if let Err(e) = run(&sub, &Flags::new(args)) {
        eprintln!("error: {e}");
        eprint!("{}", usage());
        std::process::exit(2);
    }
}
