//! Subcommand implementations for the `osd` CLI.

use crate::args::{parse_operator, parse_query_spec, CliError, Flags, ProfileFormat, TraceFormat};
use osd_core::{
    batch_metrics, batch_stats, dominance_matrix, dominators_of_with, k_nn_candidates,
    k_nn_candidates_scatter, nn_candidates, nn_candidates_scatter, ContinuousNnc, Database,
    DbError, FilterConfig, FlightRecorder, PreparedQuery, ProgressiveNnc, PublishedIndex,
    QueryEngine, QueryMetrics, Repair, ShardedDatabase, SpatialIndex, Stats, TraceData, WarmPool,
};
use osd_datagen::{
    generate_objects, gowalla_like, nba_like, read_objects_csv, write_objects_csv,
    CenterDistribution, SynthParams,
};
use osd_nnfuncs::{emd, hausdorff, sum_min, N1Function, StableAggregate};
use std::path::Path;

/// Default flight-recorder file of `osd query --trace` / `osd trace`.
const DEFAULT_RECORDER_FILE: &str = "osd-flight.log";

/// Loads the flight recorder behind `--recorder PATH` (default
/// `osd-flight.log`): parses an existing file, otherwise starts a fresh
/// recorder whose slow-query threshold comes from `--slow-ms N` (0, the
/// default, disables the slow log). An existing file keeps the parameters
/// in its header.
fn load_recorder(flags: &Flags) -> Result<(FlightRecorder, std::path::PathBuf), CliError> {
    let path = std::path::PathBuf::from(flags.value("--recorder").unwrap_or(DEFAULT_RECORDER_FILE));
    let slow_ms: u64 = flags.parsed_or("--slow-ms", 0)?;
    let recorder = if path.exists() {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?;
        FlightRecorder::from_log(&text)
            .map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?
    } else {
        FlightRecorder::new(
            osd_obs::trace::DEFAULT_RING_CAPACITY,
            slow_ms.saturating_mul(1_000_000),
            osd_obs::trace::DEFAULT_SLOW_CAPACITY,
        )
    };
    Ok((recorder, path))
}

/// Renders the traces a `--trace` query produced and appends them to the
/// flight-recorder file, re-stamping `seq` so invocations compose into
/// one stream. With the `obs` feature off a traced run yields no traces;
/// that is reported rather than silently printing nothing.
fn emit_traces(format: TraceFormat, traces: &[&TraceData], flags: &Flags) -> Result<(), CliError> {
    if traces.is_empty() {
        println!("no traces recorded (binary built without the `obs` feature)");
        return Ok(());
    }
    match format {
        TraceFormat::Chrome => println!("{}", osd_obs::chrome_trace(traces)),
        TraceFormat::Text => {
            for t in traces {
                print!("{}", osd_obs::render_text(t));
            }
        }
    }
    let (mut recorder, path) = load_recorder(flags)?;
    let base = recorder.recorded();
    for (i, t) in traces.iter().enumerate() {
        let mut t = (*t).clone();
        t.seq = base + i as u64;
        recorder.record(t);
    }
    std::fs::write(&path, recorder.to_log())
        .map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?;
    println!(
        "recorded {} trace(s) into {} ({} total)",
        traces.len(),
        path.display(),
        recorder.recorded()
    );
    Ok(())
}

/// Builds the index behind the CLI: a flat [`Database`] for `--shards 1`
/// (the default), an STR-tiled [`ShardedDatabase`] otherwise. Returned
/// boxed so every downstream path runs against `&dyn SpatialIndex`.
fn build_index(
    objects: Vec<osd_uncertain::UncertainObject>,
    shards: usize,
) -> Result<Box<dyn SpatialIndex>, CliError> {
    if shards <= 1 {
        Database::try_new(objects)
            .map(|db| Box::new(db) as Box<dyn SpatialIndex>)
            .map_err(|e| CliError::Data(e.to_string()))
    } else {
        ShardedDatabase::try_new(objects, shards)
            .map(|db| Box::new(db) as Box<dyn SpatialIndex>)
            .map_err(|e| CliError::Data(e.to_string()))
    }
}

/// An epoch-published index behind the mutation subcommands: the two
/// concrete layouts wrapped so the rest of the code dispatches once.
/// (A `Box<dyn …>` will not do here — [`PublishedIndex`] needs `Clone`
/// snapshots, which is not object-safe.)
enum Published {
    Flat(PublishedIndex<Database>),
    Sharded(PublishedIndex<ShardedDatabase>),
}

impl Published {
    fn build(
        objects: Vec<osd_uncertain::UncertainObject>,
        shards: usize,
    ) -> Result<Self, CliError> {
        if shards <= 1 {
            Database::try_new(objects)
                .map(|db| Published::Flat(PublishedIndex::new(db)))
                .map_err(|e| CliError::Data(e.to_string()))
        } else {
            ShardedDatabase::try_new(objects, shards)
                .map(|db| Published::Sharded(PublishedIndex::new(db)))
                .map_err(|e| CliError::Data(e.to_string()))
        }
    }

    fn pin(&self) -> std::sync::Arc<dyn SpatialIndex> {
        match self {
            Published::Flat(p) => p.pin(),
            Published::Sharded(p) => p.pin(),
        }
    }

    fn insert(&self, object: osd_uncertain::UncertainObject) -> Result<usize, DbError> {
        match self {
            Published::Flat(p) => p.insert(object),
            Published::Sharded(p) => p.insert(object),
        }
    }

    fn delete(&self, id: usize) -> Result<(), DbError> {
        match self {
            Published::Flat(p) => p.delete(id),
            Published::Sharded(p) => p.delete(id),
        }
    }

    fn update(&self, id: usize, object: osd_uncertain::UncertainObject) -> Result<(), DbError> {
        match self {
            Published::Flat(p) => p.update(id, object),
            Published::Sharded(p) => p.update(id, object),
        }
    }
}

/// One line of an `--ops` script.
enum MutOp {
    Insert(osd_uncertain::UncertainObject),
    Delete(usize),
    Update(usize, osd_uncertain::UncertainObject),
}

impl MutOp {
    fn label(&self) -> &'static str {
        match self {
            MutOp::Insert(_) => "insert",
            MutOp::Delete(_) => "delete",
            MutOp::Update(..) => "update",
        }
    }
}

/// Reads a mutation script: one op per line — `insert x,y;x,y;…`,
/// `delete ID` or `update ID x,y;…` — with blank lines and `#` comments
/// skipped. Object specs must match the dataset's dimensionality `dim`.
fn read_ops_file(path: &Path, dim: usize) -> Result<Vec<MutOp>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Data(e.to_string()))?;
    let located = |lineno: usize, msg: String| {
        CliError::BadArgument(format!("{}:{}: {msg}", path.display(), lineno + 1))
    };
    let parse_spec = |lineno: usize, spec: &str| {
        let obj = parse_query_spec(spec).map_err(|e| located(lineno, e.to_string()))?;
        if obj.dim() != dim {
            return Err(located(
                lineno,
                format!(
                    "object dimensionality {} does not match the dataset's {dim}",
                    obj.dim()
                ),
            ));
        }
        Ok(obj)
    };
    let parse_id = |lineno: usize, token: &str| {
        token
            .parse::<usize>()
            .map_err(|_| located(lineno, format!("expected an object id, got {token:?}")))
    };
    let mut ops = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let verb = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match verb {
            "insert" => ops.push(MutOp::Insert(parse_spec(lineno, rest)?)),
            "delete" => ops.push(MutOp::Delete(parse_id(lineno, rest)?)),
            "update" => {
                let mut parts = rest.splitn(2, char::is_whitespace);
                let id = parse_id(lineno, parts.next().unwrap_or(""))?;
                let spec = parts.next().unwrap_or("").trim();
                if spec.is_empty() {
                    return Err(located(lineno, "update needs an object spec".into()));
                }
                ops.push(MutOp::Update(id, parse_spec(lineno, spec)?));
            }
            other => {
                return Err(located(
                    lineno,
                    format!("unknown op {other:?} (use insert | delete | update)"),
                ))
            }
        }
    }
    if ops.is_empty() {
        return Err(CliError::Data(format!(
            "{}: no ops (all lines blank or comments)",
            path.display()
        )));
    }
    Ok(ops)
}

/// `osd mutate`: load a CSV dataset, apply an `--ops` mutation script
/// through the epoch-publishing store (insert / delete / update, one
/// snapshot per op), and report the published epochs. `--out FILE` writes
/// the surviving objects back as CSV.
///
/// # Errors
/// Returns a [`CliError`] on bad flags, unreadable data or a malformed
/// ops script. Individual ops that fail (dead id, dimension mismatch)
/// are reported and skipped — they publish nothing.
pub fn cmd_mutate(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let ops_file = flags.required("--ops")?;
    let shards: usize = flags.parsed_or("--shards", 1)?;
    let out = flags.value("--out");

    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let dim = objects
        .first()
        .map(osd_uncertain::UncertainObject::dim)
        .ok_or_else(|| CliError::Data(format!("{data}: dataset is empty")))?;
    let ops = read_ops_file(Path::new(ops_file), dim)?;
    // Shadow copy of the logical id space, for `--out`: the store compacts
    // deleted rows away, so surviving objects are re-emitted from here.
    let mut shadow: Vec<Option<osd_uncertain::UncertainObject>> =
        objects.iter().cloned().map(Some).collect();
    let published = Published::build(objects, shards)?;

    for (i, op) in ops.into_iter().enumerate() {
        let label = op.label();
        let outcome = match op {
            MutOp::Insert(obj) => published.insert(obj.clone()).map(|id| {
                shadow.push(Some(obj));
                format!("object {id}")
            }),
            MutOp::Delete(id) => published.delete(id).map(|()| {
                shadow[id] = None;
                format!("object {id}")
            }),
            MutOp::Update(id, obj) => published.update(id, obj.clone()).map(|()| {
                shadow[id] = Some(obj);
                format!("object {id}")
            }),
        };
        match outcome {
            Ok(what) => println!(
                "op {:>4} {label:<6} {what}: published epoch {}",
                i + 1,
                published.pin().epoch()
            ),
            Err(e) => println!("op {:>4} {label:<6} failed ({e}); nothing published", i + 1),
        }
    }

    let snap = published.pin();
    println!(
        "final snapshot: epoch {}, {} live object(s), {} tombstone(s), {} id(s)",
        snap.epoch(),
        snap.live_len(),
        snap.tombstone_count(),
        snap.len()
    );
    if let Some(out) = out {
        let live: Vec<osd_uncertain::UncertainObject> = shadow.into_iter().flatten().collect();
        write_objects_csv(Path::new(out), &live).map_err(|e| CliError::Data(e.to_string()))?;
        println!("wrote {} live objects to {out}", live.len());
    }
    Ok(())
}

/// `osd watch`: a standing NN-candidate query over a mutating dataset.
/// Loads the data, computes the initial candidate set, then applies each
/// `--ops` mutation through the epoch-publishing store and incrementally
/// repairs the candidates after every published snapshot, printing how
/// each epoch was absorbed (up-to-date / incremental repair / full
/// re-query).
///
/// # Errors
/// Returns a [`CliError`] on bad flags, unreadable data or a malformed
/// ops script.
pub fn cmd_watch(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let ops_file = flags.required("--ops")?;
    let query = parse_query_spec(flags.required("--query")?)?;
    let op = parse_operator(flags.value("--op").unwrap_or("psd"))?;
    let shards: usize = flags.parsed_or("--shards", 1)?;

    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let dim = objects
        .first()
        .map(osd_uncertain::UncertainObject::dim)
        .ok_or_else(|| CliError::Data(format!("{data}: dataset is empty")))?;
    if dim != query.dim() {
        return Err(CliError::Data(format!(
            "query dimensionality {} does not match the dataset's {}",
            query.dim(),
            dim
        )));
    }
    let ops = read_ops_file(Path::new(ops_file), dim)?;
    let published = Published::build(objects, shards)?;

    let snap = published.pin();
    let mut handle = ContinuousNnc::new(&*snap, PreparedQuery::new(query), op, FilterConfig::all());
    drop(snap);
    println!(
        "epoch {:>4}: {} candidate(s) under {}: {:?}",
        handle.epoch(),
        handle.candidates().len(),
        op.label(),
        handle.ids()
    );

    for (i, mop) in ops.into_iter().enumerate() {
        let label = mop.label();
        let outcome = match mop {
            MutOp::Insert(obj) => published.insert(obj).map(|id| format!("object {id}")),
            MutOp::Delete(id) => published.delete(id).map(|()| format!("object {id}")),
            MutOp::Update(id, obj) => published.update(id, obj).map(|()| format!("object {id}")),
        };
        let what = match outcome {
            Ok(what) => what,
            Err(e) => {
                println!("op {:>4} {label:<6} failed ({e}); nothing published", i + 1);
                continue;
            }
        };
        let snap = published.pin();
        let repair = handle.refresh(&*snap);
        let how = match repair {
            Repair::UpToDate => "up to date".to_string(),
            Repair::Full => "full re-query".to_string(),
            Repair::Incremental {
                rechecked,
                mbr_pruned,
                admitted,
                evicted,
            } => format!(
                "repaired (rechecked {rechecked}, mbr-pruned {mbr_pruned}, \
                 admitted {admitted}, evicted {evicted})"
            ),
        };
        println!(
            "epoch {:>4}: {label} {what} → {how} → {} candidate(s): {:?}",
            handle.epoch(),
            handle.candidates().len(),
            handle.ids()
        );
    }
    Ok(())
}

/// `osd query`: load a CSV dataset and print the NN candidates of one
/// query (`--query "x,y;…"`) or of a whole batch (`--queries FILE`, one
/// spec per line, spread over `--threads N` worker threads). `--shards N`
/// space-partitions the store into N STR tiles (results are bit-identical
/// to the flat index); `--scatter` switches the single-query path from the
/// merged-forest traversal to per-shard scatter-gather over `--threads`.
///
/// Batch mode runs warm by default — one snapshot-scoped cache shared by
/// all queries — and dispatches in Morton order for locality; results are
/// **always printed in input order** regardless. `--warm=off` and
/// `--no-reorder` are the escape hatches back to fully cold, in-order
/// execution (both are bit-identical to the default output).
///
/// # Errors
/// Returns a [`CliError`] on bad flags or unreadable data.
pub fn cmd_query(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let op = parse_operator(flags.value("--op").unwrap_or("psd"))?;
    let k: usize = flags.parsed_or("--k", 1)?;
    let threads: usize = flags.parsed_or("--threads", 1)?;
    let shards: usize = flags.parsed_or("--shards", 1)?;
    let progressive = flags.has("--progressive");
    let scatter = flags.has("--scatter");
    let warm = flags.warm()?;
    let reorder = !flags.has("--no-reorder");
    let profile = flags.profile()?;
    let trace_fmt = flags.trace()?;
    if progressive && scatter {
        return Err(CliError::BadArgument(
            "--progressive and --scatter are mutually exclusive".into(),
        ));
    }
    // Tracing is pure observability: candidates and counters are
    // bit-identical with or without it.
    let cfg = if trace_fmt.is_some() {
        FilterConfig::all().traced()
    } else {
        FilterConfig::all()
    };

    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let dim = objects
        .first()
        .map(osd_uncertain::UncertainObject::dim)
        .ok_or_else(|| CliError::Data(format!("{data}: dataset is empty")))?;

    if let Some(file) = flags.value("--queries") {
        if flags.value("--query").is_some() {
            return Err(CliError::BadArgument(
                "--query and --queries are mutually exclusive".into(),
            ));
        }
        if progressive || k > 1 {
            return Err(CliError::BadArgument(
                "--queries batch mode supports neither --progressive nor --k".into(),
            ));
        }
        let queries = read_query_file(Path::new(file), dim)?;
        let db = build_index(objects, shards)?;
        let pool = WarmPool::new();
        let mut engine = QueryEngine::with_config(&*db, op, cfg).with_reorder(reorder);
        if warm {
            engine = engine.with_warm(&pool);
        }
        let results = engine.run_batch(&queries, threads.max(1));
        for (i, res) in results.iter().enumerate() {
            println!(
                "query {:>4}: {} candidates under {}:",
                i + 1,
                res.candidates.len(),
                op.label()
            );
            for c in &res.candidates {
                println!("  object {:>6}  min-dist {:>10.3}", c.id, c.min_dist);
            }
        }
        if let Some(fmt) = profile {
            // Per-worker registries fold exactly, so the batch profile is
            // identical regardless of --threads.
            print!(
                "{}",
                render_profile(fmt, &batch_metrics(&results), &batch_stats(&results))
            );
        }
        if let Some(fmt) = trace_fmt {
            let traces: Vec<&TraceData> = results.iter().filter_map(|r| r.trace.as_ref()).collect();
            emit_traces(fmt, &traces, flags)?;
        }
        return Ok(());
    }

    let query = parse_query_spec(flags.required("--query")?)?;
    if dim != query.dim() {
        return Err(CliError::Data(format!(
            "query dimensionality {} does not match the dataset's {}",
            query.dim(),
            dim
        )));
    }
    let db = build_index(objects, shards)?;
    let pq = PreparedQuery::new(query);

    if progressive {
        println!("{:>8} {:>12} {:>12}", "object", "min-dist", "elapsed");
        let mut stream = ProgressiveNnc::new(&*db, &pq, op, &cfg);
        while let Some(c) = stream.next_candidate() {
            println!("{:>8} {:>12.3} {:>10.2?}", c.id, c.min_dist, c.elapsed);
        }
        let res = stream.into_result();
        if let Some(fmt) = profile {
            print!("{}", render_profile(fmt, &res.metrics, &res.stats));
        }
        if let Some(fmt) = trace_fmt {
            let traces: Vec<&TraceData> = res.trace.as_ref().into_iter().collect();
            emit_traces(fmt, &traces, flags)?;
        }
        return Ok(());
    }
    if k > 1 {
        let res = if scatter {
            k_nn_candidates_scatter(&*db, &pq, op, k, &cfg, threads)
        } else {
            k_nn_candidates(&*db, &pq, op, k, &cfg)
        };
        println!(
            "{} {}-robust candidates under {}:",
            res.candidates.len(),
            k,
            op.label()
        );
        for (c, dominators) in &res.candidates {
            println!(
                "  object {:>6}  min-dist {:>10.3}  dominators {}",
                c.id, c.min_dist, dominators
            );
        }
        if let Some(fmt) = profile {
            print!("{}", render_profile(fmt, &res.metrics, &res.stats));
        }
        if let Some(fmt) = trace_fmt {
            let traces: Vec<&TraceData> = res.trace.as_ref().into_iter().collect();
            emit_traces(fmt, &traces, flags)?;
        }
    } else {
        let res = if scatter {
            nn_candidates_scatter(&*db, &pq, op, &cfg, threads)
        } else {
            nn_candidates(&*db, &pq, op, &cfg)
        };
        println!("{} candidates under {}:", res.candidates.len(), op.label());
        for c in &res.candidates {
            println!("  object {:>6}  min-dist {:>10.3}", c.id, c.min_dist);
        }
        if let Some(fmt) = profile {
            print!("{}", render_profile(fmt, &res.metrics, &res.stats));
        }
        if let Some(fmt) = trace_fmt {
            let traces: Vec<&TraceData> = res.trace.as_ref().into_iter().collect();
            emit_traces(fmt, &traces, flags)?;
        }
    }
    Ok(())
}

/// `osd trace`: inspect a flight-recorder file written by
/// `osd query --trace`. `osd trace last [N]` prints the N most recent
/// traces, `osd trace slowest [N]` the N slowest known ones (slow log ∪
/// ring). `--trace=chrome` switches the rendering to Chrome trace-event
/// JSON.
///
/// # Errors
/// Returns a [`CliError`] on an unknown mode, a malformed count or an
/// unreadable/corrupt recorder file.
pub fn cmd_trace(flags: &Flags) -> Result<(), CliError> {
    let words: Vec<&str> = flags
        .raw()
        .iter()
        .map(String::as_str)
        .take_while(|w| !w.starts_with("--"))
        .collect();
    let mode = words.first().copied().unwrap_or("last");
    let n: usize = match words.get(1) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::BadArgument(format!("trace count {v:?}")))?,
        None => 8,
    };
    if words.len() > 2 {
        return Err(CliError::BadArgument(format!(
            "unexpected argument {:?} (usage: osd trace last|slowest [N])",
            words[2]
        )));
    }
    let path = std::path::PathBuf::from(flags.value("--recorder").unwrap_or(DEFAULT_RECORDER_FILE));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?;
    let recorder = FlightRecorder::from_log(&text)
        .map_err(|e| CliError::Data(format!("{}: {e}", path.display())))?;
    let traces = match mode {
        "last" => recorder.last(n),
        "slowest" => recorder.slowest(n),
        other => {
            return Err(CliError::BadArgument(format!(
                "unknown trace mode {other:?} (use last | slowest)"
            )))
        }
    };
    println!(
        "flight recorder {}: {} recorded, {} in ring, {} evicted, {} promoted slow",
        path.display(),
        recorder.recorded(),
        recorder.len(),
        recorder.evicted(),
        recorder.promoted()
    );
    match flags.trace()?.unwrap_or(TraceFormat::Text) {
        TraceFormat::Chrome => println!("{}", osd_obs::chrome_trace(&traces)),
        TraceFormat::Text => {
            for t in traces {
                print!("{}", osd_obs::render_text(t));
            }
        }
    }
    Ok(())
}

/// Renders the profile document for `--profile`: the osd-obs registry plus
/// the legacy [`Stats`] counters folded in as extra pairs. Only the legacy
/// counters *without* an osd-obs mirror are passed through — R-tree visits
/// and cache hits/misses already appear as obs counters (the two recordings
/// are asserted identical by `osd-core`'s tests), so folding them in again
/// would emit duplicate keys.
fn render_profile(format: ProfileFormat, metrics: &QueryMetrics, stats: &Stats) -> String {
    let extra = [
        ("instance_comparisons", stats.instance_comparisons),
        ("dominance_checks", stats.dominance_checks),
        ("flow_runs", stats.flow_runs),
        ("mbr_checks", stats.mbr_checks),
    ];
    match format {
        ProfileFormat::Json => osd_obs::expo::to_json(metrics, &extra),
        ProfileFormat::Prom => osd_obs::expo::to_prometheus(metrics, &extra),
    }
}

/// Reads a batch-query file: one `"x,y;x,y;…"` spec per line; blank lines
/// and `#` comments are skipped. Every query must match the dataset's
/// dimensionality `dim`.
fn read_query_file(path: &Path, dim: usize) -> Result<Vec<PreparedQuery>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Data(e.to_string()))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let obj = parse_query_spec(line).map_err(|e| {
            CliError::BadArgument(format!("{}:{}: {e}", path.display(), lineno + 1))
        })?;
        if obj.dim() != dim {
            return Err(CliError::Data(format!(
                "{}:{}: query dimensionality {} does not match the dataset's {}",
                path.display(),
                lineno + 1,
                obj.dim(),
                dim
            )));
        }
        queries.push(PreparedQuery::new(obj));
    }
    if queries.is_empty() {
        return Err(CliError::Data(format!(
            "{}: no queries (all lines blank or comments)",
            path.display()
        )));
    }
    Ok(queries)
}

/// `--matrix` is quadratic in both checks and output; refuse beyond this.
const MATRIX_CAP: usize = 64;

/// `osd explain`: *why* is an object (not) a candidate? Prints the
/// dominators of `--object V` (empty iff `V` is a candidate), or with
/// `--matrix` the full pairwise dominance relation of a small dataset.
///
/// # Errors
/// Returns a [`CliError`] on bad flags or unreadable data.
pub fn cmd_explain(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let query = parse_query_spec(flags.required("--query")?)?;
    let op = parse_operator(flags.value("--op").unwrap_or("psd"))?;
    let shards: usize = flags.parsed_or("--shards", 1)?;
    let matrix = flags.has("--matrix");
    let object = flags.value("--object");
    if object.is_none() && !matrix {
        return Err(CliError::Missing("--object (or --matrix)".into()));
    }

    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let dim = objects
        .first()
        .map(osd_uncertain::UncertainObject::dim)
        .ok_or_else(|| CliError::Data(format!("{data}: dataset is empty")))?;
    if dim != query.dim() {
        return Err(CliError::Data(format!(
            "query dimensionality {} does not match the dataset's {}",
            query.dim(),
            dim
        )));
    }
    let db = build_index(objects, shards)?;
    let pq = PreparedQuery::new(query);
    let cfg = FilterConfig::all();
    let pool = WarmPool::new();
    println!(
        "snapshot: epoch {}, {} live object(s), {} tombstone(s)",
        db.epoch(),
        db.live_len(),
        db.tombstone_count()
    );

    if let Some(spec) = object {
        let v: usize = spec
            .parse()
            .map_err(|_| CliError::BadArgument("--object must be an id".into()))?;
        if v >= db.len() {
            return Err(CliError::Data(format!(
                "object {v} out of range (n = {})",
                db.len()
            )));
        }
        let doms = dominators_of_with(&*db, &pq, op, v, &cfg, Some(&pool));
        let ws = pool.stats();
        println!(
            "warm: {} hit(s), {} miss(es), {} eviction(s), {} resident byte(s)",
            ws.hits, ws.misses, ws.evictions, ws.resident_bytes
        );
        if doms.is_empty() {
            println!(
                "object {v} is a candidate under {}: no dominators",
                op.label()
            );
        } else {
            println!(
                "object {v} is not a candidate under {}: dominated by {} object(s):",
                op.label(),
                doms.len()
            );
            for u in &doms {
                println!("  object {u:>6}");
            }
        }
    }

    if matrix {
        if db.len() > MATRIX_CAP {
            return Err(CliError::BadArgument(format!(
                "--matrix is quadratic; dataset has {} objects (cap {MATRIX_CAP})",
                db.len()
            )));
        }
        let m = dominance_matrix(&*db, &pq, op, &cfg);
        println!(
            "dominance matrix under {} (row dominates column; '#' = dominates):",
            op.label()
        );
        for (u, row) in m.iter().enumerate() {
            let cells: String = row.iter().map(|&d| if d { '#' } else { '.' }).collect();
            println!("{u:>6} {cells}");
        }
    }
    Ok(())
}

/// `osd score`: score one object of the dataset under the implemented NN
/// functions (useful once the user picks a function for the shortlist).
///
/// # Errors
/// Returns a [`CliError`] on bad flags or unreadable data.
pub fn cmd_score(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let query = parse_query_spec(flags.required("--query")?)?;
    let id: usize = flags
        .required("--object")?
        .parse()
        .map_err(|_| CliError::BadArgument("--object must be an id".into()))?;
    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let obj = objects.get(id).ok_or_else(|| {
        CliError::Data(format!("object {id} out of range (n = {})", objects.len()))
    })?;

    println!("object {id} vs query:");
    for f in [
        N1Function::Min,
        N1Function::Mean,
        N1Function::Max,
        N1Function::Quantile(0.25),
        N1Function::Quantile(0.5),
        N1Function::Quantile(0.75),
    ] {
        println!("  {:<16} {:>12.4}", f.name(), f.score(obj, &query));
    }
    println!("  {:<16} {:>12.4}", "hausdorff", hausdorff(obj, &query));
    println!("  {:<16} {:>12.4}", "sum-min", sum_min(obj, &query));
    println!("  {:<16} {:>12.4}", "emd", emd(obj, &query));
    Ok(())
}

/// `osd gen`: generate a synthetic/surrogate dataset into a CSV file.
///
/// # Errors
/// Returns a [`CliError`] on bad flags or write failures.
pub fn cmd_gen(flags: &Flags) -> Result<(), CliError> {
    let out = flags.required("--out")?;
    let kind = flags.value("--dataset").unwrap_or("anti");
    let n: usize = flags.parsed_or("--n", 1000)?;
    let m: usize = flags.parsed_or("--m", 10)?;
    let dim: usize = flags.parsed_or("--dim", 3)?;
    let edge: f64 = flags.parsed_or("--edge", 400.0)?;
    let seed: u64 = flags.parsed_or("--seed", 42)?;

    let objects = match kind {
        "anti" | "indep" => {
            let centers = if kind == "anti" {
                CenterDistribution::AntiCorrelated
            } else {
                CenterDistribution::Independent
            };
            generate_objects(&SynthParams {
                n,
                dim,
                instances: m,
                edge,
                centers,
                seed,
            })
        }
        "gw" | "gowalla" => gowalla_like(n, m, seed),
        "nba" => nba_like(n, m, seed),
        other => {
            return Err(CliError::BadArgument(format!(
                "unknown dataset {other:?} (use anti | indep | gw | nba)"
            )))
        }
    };
    write_objects_csv(Path::new(out), &objects).map_err(|e| CliError::Data(e.to_string()))?;
    println!(
        "wrote {} objects × {} instances to {out}",
        objects.len(),
        objects[0].len()
    );
    Ok(())
}

/// Dispatches a subcommand. Returns `Err` with a printable message on any
/// failure; the caller maps it to the exit code.
///
/// # Errors
/// Propagates the subcommand's [`CliError`].
pub fn run(subcommand: &str, flags: &Flags) -> Result<(), CliError> {
    match subcommand {
        "query" => cmd_query(flags),
        "explain" => cmd_explain(flags),
        "score" => cmd_score(flags),
        "gen" => cmd_gen(flags),
        "mutate" => cmd_mutate(flags),
        "watch" => cmd_watch(flags),
        "trace" => cmd_trace(flags),
        other => Err(CliError::BadArgument(format!(
            "unknown subcommand {other:?} (use query | explain | score | gen | mutate | watch | trace)"
        ))),
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "osd — optimal spatial dominance NN-candidate search

USAGE:
  osd gen   --out data.csv [--dataset anti|indep|gw|nba] [--n N] [--m M]
            [--dim D] [--edge H] [--seed S]
  osd query --data data.csv --query \"x,y;x,y;…\" [--op ssd|sssd|psd|fsd|f+sd]
            [--k K] [--progressive] [--shards N] [--scatter] [--threads N]
            [--profile[=json|prom]] [--trace[=text|chrome]]
            [--recorder FILE] [--slow-ms MS]
  osd query --data data.csv --queries queries.txt [--op …] [--threads N]
            [--shards N] [--warm=on|off] [--no-reorder]
            [--profile[=json|prom]] [--trace[=text|chrome]]
            (one \"x,y;x,y;…\" spec per line; blank lines and # comments skipped)
  osd trace [last|slowest] [N] [--recorder FILE] [--trace=text|chrome]
            (inspect the flight-recorder file written by osd query --trace)
  osd explain --data data.csv --query \"x,y;…\" (--object ID | --matrix)
            [--op …] [--shards N]
  osd score --data data.csv --query \"x,y;…\" --object ID
  osd mutate --data data.csv --ops ops.txt [--shards N] [--out new.csv]
            (ops.txt: one op per line — insert x,y;… | delete ID |
             update ID x,y;… — each publishing one snapshot epoch)
  osd watch --data data.csv --query \"x,y;…\" --ops ops.txt
            [--op ssd|sssd|psd|fsd|f+sd] [--shards N]
            (standing query: the candidate set is incrementally repaired
             after every published epoch)

`--shards N` space-partitions the store into N STR tiles, each with its own
global R-tree; candidates are bit-identical to the flat index. `--scatter`
runs one independent descent per shard (fanned over --threads) instead of
the merged shared-bound traversal.

Batch mode (`--queries`) runs warm by default: one snapshot-scoped cache is
shared by every query, and queries are dispatched in Morton (locality)
order. Output order always matches input order regardless. `--warm=off`
falls back to fully cold per-query caches; `--no-reorder` dispatches in
input order. Both escape hatches are bit-identical to the default output.

`--profile` appends a per-phase timing/counter breakdown (prepare,
rtree-descent, level-prune, validate, refine) after the results, as JSON
(default) or Prometheus text.

`--trace` records a per-query structured trace tree and appends it to a
flight-recorder file (default osd-flight.log, override with --recorder;
--slow-ms sets the slow-query promotion threshold for new recorder
files). `--trace=chrome` prints Chrome trace-event JSON for
chrome://tracing / Perfetto instead of the indented text tree; `osd
trace` reads the file back.
"
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn flags(kv: &[&str]) -> Flags {
        Flags::new(kv.iter().map(|s| s.to_string()).collect())
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("osd-cli-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_query_roundtrip() {
        let out = tmp("gen.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "50",
            "--m",
            "4",
            "--dim",
            "2",
        ]))
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000;5100,5100",
            "--op",
            "sssd",
        ]))
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--k",
            "3",
        ]))
        .unwrap();
        cmd_score(&flags(&["--data", &out, "--query", "0,0", "--object", "0"])).unwrap();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn batch_query_file_runs_multithreaded() {
        let out = tmp("batch.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "40",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let qfile = tmp("batch-queries.txt");
        std::fs::write(
            &qfile,
            "# workload\n5000,5000;5100,5100\n\n2000,8000\n7500,2500;7600,2400\n",
        )
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--op",
            "psd",
            "--threads",
            "4",
        ]))
        .unwrap();
        // --query and --queries together is an error.
        let err = cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--query",
            "1,2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn batch_escape_hatches_run_and_bad_warm_is_rejected() {
        let out = tmp("batch-cold.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "30",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let qfile = tmp("batch-cold-queries.txt");
        std::fs::write(&qfile, "5000,5000\n2000,8000\n7500,2500\n").unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--warm=off",
            "--no-reorder",
            "--threads",
            "2",
        ]))
        .unwrap();
        let err = cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--warm=tepid",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--warm"));
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn batch_query_file_errors_are_located() {
        let out = tmp("batchdim.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "10",
            "--dim",
            "2",
        ]))
        .unwrap();
        let qfile = tmp("batchdim-queries.txt");
        std::fs::write(&qfile, "1,2\n3,4,5\n").unwrap();
        let err = cmd_query(&flags(&["--data", &out, "--queries", &qfile])).unwrap_err();
        assert!(err.to_string().contains(":2:"));
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn dimension_mismatch_reported() {
        let out = tmp("dim.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "10",
            "--dim",
            "2",
        ]))
        .unwrap();
        let err = cmd_query(&flags(&["--data", &out, "--query", "1,2,3"])).unwrap_err();
        std::fs::remove_file(&out).ok();
        assert!(err.to_string().contains("dimensionality"));
    }

    #[test]
    fn empty_dataset_reported_not_panicked() {
        let out = tmp("empty.csv");
        std::fs::write(&out, "").unwrap();
        let err = cmd_query(&flags(&["--data", &out, "--query", "1,2"])).unwrap_err();
        std::fs::remove_file(&out).ok();
        assert!(matches!(err, CliError::Data(_)), "got {err:?}");
    }

    #[test]
    fn profile_renders_all_phases_and_legacy_counters() {
        use osd_core::Operator;
        let out = tmp("profile.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "30",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let objects = read_objects_csv(Path::new(&out)).unwrap();
        std::fs::remove_file(&out).ok();
        let db = Database::try_new(objects).unwrap();
        let pq = PreparedQuery::new(parse_query_spec("5000,5000;5100,5100").unwrap());
        let res = nn_candidates(&db, &pq, Operator::PSd, &FilterConfig::all());
        let json = render_profile(ProfileFormat::Json, &res.metrics, &res.stats);
        for phase in [
            "prepare",
            "rtree-descent",
            "level-prune",
            "validate",
            "refine",
        ] {
            assert!(json.contains(&format!("\"{phase}\"")), "missing {phase}");
        }
        for legacy in [
            "instance_comparisons",
            "dominance_checks",
            "flow_runs",
            "mbr_checks",
        ] {
            assert!(json.contains(legacy), "missing {legacy}");
        }
        // The legacy counters that *are* mirrored as obs counters must not
        // be folded in twice (duplicate JSON keys).
        assert_eq!(json.matches("cache_hits").count(), 1);
        assert_eq!(json.matches("rtree_node").count(), 1);
        let prom = render_profile(ProfileFormat::Prom, &res.metrics, &res.stats);
        assert!(prom.contains("osd_counter{name=\"dominance_checks\"}"));
        assert!(prom.contains("osd_phase_latency_bucket{phase=\"validate\""));
    }

    #[test]
    fn query_accepts_profile_in_all_modes() {
        let out = tmp("profmode.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "20",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let base = ["--data", &out, "--query", "5000,5000"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            flags(&v)
        };
        cmd_query(&with(&["--profile"])).unwrap();
        cmd_query(&with(&["--profile=prom", "--k", "2"])).unwrap();
        cmd_query(&with(&["--profile=json", "--progressive"])).unwrap();
        assert!(cmd_query(&with(&["--profile=csv"])).is_err());
        let qfile = tmp("profmode-queries.txt");
        std::fs::write(&qfile, "5000,5000\n2000,8000\n").unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--threads",
            "2",
            "--profile",
        ]))
        .unwrap();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn sharded_query_paths_run() {
        let out = tmp("shards.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "60",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let base = ["--data", &out, "--query", "5000,5000", "--shards", "4"];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            flags(&v)
        };
        // Merged traversal, scatter-gather, k-robust scatter, progressive.
        cmd_query(&with(&[])).unwrap();
        cmd_query(&with(&["--scatter", "--threads", "3"])).unwrap();
        cmd_query(&with(&["--scatter", "--k", "2"])).unwrap();
        cmd_query(&with(&["--progressive"])).unwrap();
        // --progressive and --scatter together is an error.
        let err = cmd_query(&with(&["--progressive", "--scatter"])).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        // Batch mode and explain accept --shards too.
        let qfile = tmp("shards-queries.txt");
        std::fs::write(&qfile, "5000,5000\n2000,8000\n").unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--shards",
            "4",
            "--threads",
            "2",
        ]))
        .unwrap();
        cmd_explain(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--object",
            "3",
            "--shards",
            "4",
        ]))
        .unwrap();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn explain_object_and_matrix() {
        let out = tmp("explain.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "15",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        cmd_explain(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--object",
            "3",
            "--op",
            "ssd",
        ]))
        .unwrap();
        cmd_explain(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--matrix",
        ]))
        .unwrap();
        // Either --object or --matrix is required.
        let err = cmd_explain(&flags(&["--data", &out, "--query", "5000,5000"])).unwrap_err();
        assert!(matches!(err, CliError::Missing(_)));
        // Out-of-range ids are a data error, not a panic.
        let err = cmd_explain(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--object",
            "999",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn explain_matrix_refuses_large_datasets() {
        let out = tmp("explaincap.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "80",
            "--m",
            "2",
            "--dim",
            "2",
        ]))
        .unwrap();
        let err = cmd_explain(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--matrix",
        ]))
        .unwrap_err();
        std::fs::remove_file(&out).ok();
        assert!(err.to_string().contains("quadratic"));
    }

    #[test]
    fn mutate_applies_script_and_writes_survivors() {
        let out = tmp("mutate.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "20",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let ops = tmp("mutate-ops.txt");
        std::fs::write(
            &ops,
            "# churn\ninsert 100,100;110,110\ndelete 3\nupdate 5 200,200;210,205\ndelete 3\n",
        )
        .unwrap();
        let rewritten = tmp("mutate-out.csv");
        // The second `delete 3` fails (dead id) but must not abort the run.
        cmd_mutate(&flags(&[
            "--data", &out, "--ops", &ops, "--out", &rewritten,
        ]))
        .unwrap();
        // 20 seeds + 1 insert - 1 delete survive.
        let survivors = read_objects_csv(Path::new(&rewritten)).unwrap();
        assert_eq!(survivors.len(), 20);
        // Sharded layout takes the same script.
        cmd_mutate(&flags(&["--data", &out, "--ops", &ops, "--shards", "3"])).unwrap();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&ops).ok();
        std::fs::remove_file(&rewritten).ok();
    }

    #[test]
    fn mutate_rejects_malformed_scripts() {
        let out = tmp("badops.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "5",
            "--dim",
            "2",
        ]))
        .unwrap();
        let check = |script: &str, needle: &str| {
            let ops = tmp("badops-ops.txt");
            std::fs::write(&ops, script).unwrap();
            let err = cmd_mutate(&flags(&["--data", &out, "--ops", &ops])).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "script {script:?}: {err} should mention {needle:?}"
            );
            std::fs::remove_file(&ops).ok();
        };
        check("frobnicate 3\n", "unknown op");
        check("delete x\n", "expected an object id");
        check("insert 1,2,3\n", "dimensionality");
        check("update 2\n", "update needs an object spec");
        check("# nothing\n\n", "no ops");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn watch_repairs_across_epochs() {
        let out = tmp("watch.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "25",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let ops = tmp("watch-ops.txt");
        std::fs::write(
            &ops,
            "insert 5000,5000;5010,5010\ninsert 9900,9900\ndelete 2\nupdate 4 4900,4900;4910,4905\n",
        )
        .unwrap();
        for shards in ["1", "3"] {
            cmd_watch(&flags(&[
                "--data",
                &out,
                "--query",
                "5000,5000",
                "--ops",
                &ops,
                "--shards",
                shards,
            ]))
            .unwrap();
        }
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&ops).ok();
    }

    #[test]
    fn traced_query_writes_recorder_and_trace_reads_it_back() {
        let out = tmp("trace.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "30",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let rec = tmp("trace-flight.log");
        std::fs::remove_file(&rec).ok();
        // Text trace on the single-query path, chrome on k>1, text again
        // progressively: all append to the same recorder file.
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--trace",
            "--recorder",
            &rec,
        ]))
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--k",
            "2",
            "--trace=chrome",
            "--recorder",
            &rec,
        ]))
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "2000,8000",
            "--progressive",
            "--trace",
            "--recorder",
            &rec,
        ]))
        .unwrap();
        if osd_core::QueryTrace::enabled() {
            let text = std::fs::read_to_string(&rec).unwrap();
            let recorder = FlightRecorder::from_log(&text).unwrap();
            assert_eq!(recorder.recorded(), 3);
            // Appended runs re-stamp seq so the stream stays coherent.
            let seqs: Vec<u64> = recorder.last(10).iter().map(|t| t.seq).collect();
            assert_eq!(seqs, vec![2, 1, 0]);
            cmd_trace(&flags(&["last", "2", "--recorder", &rec])).unwrap();
            cmd_trace(&flags(&["slowest", "--recorder", &rec, "--trace=chrome"])).unwrap();
            std::fs::remove_file(&rec).ok();
        } else {
            // obs off: a traced run records nothing and writes no file.
            assert!(!Path::new(&rec).exists());
            assert!(cmd_trace(&flags(&["last", "--recorder", &rec])).is_err());
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn trace_rejects_bad_modes_and_counts() {
        let rec = tmp("trace-bad.log");
        std::fs::write(&rec, FlightRecorder::default().to_log()).unwrap();
        assert!(cmd_trace(&flags(&["sideways", "--recorder", &rec])).is_err());
        assert!(cmd_trace(&flags(&["last", "many", "--recorder", &rec])).is_err());
        assert!(cmd_trace(&flags(&["last", "1", "extra", "--recorder", &rec])).is_err());
        cmd_trace(&flags(&["--recorder", &rec])).unwrap(); // defaults: last 8
        std::fs::remove_file(&rec).ok();
        assert!(cmd_trace(&flags(&["last", "--recorder", &rec])).is_err());
    }

    #[test]
    fn unknown_subcommand() {
        assert!(run("frobnicate", &flags(&[])).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let err = cmd_query(&flags(&["--query", "1,2"])).unwrap_err();
        assert!(matches!(err, CliError::Missing(_)));
    }
}
