//! Subcommand implementations for the `osd` CLI.

use crate::args::{parse_operator, parse_query_spec, CliError, Flags};
use osd_core::{
    k_nn_candidates, nn_candidates, Database, FilterConfig, PreparedQuery, ProgressiveNnc,
    QueryEngine,
};
use osd_datagen::{
    generate_objects, gowalla_like, nba_like, read_objects_csv, write_objects_csv,
    CenterDistribution, SynthParams,
};
use osd_nnfuncs::{emd, hausdorff, sum_min, N1Function, StableAggregate};
use std::path::Path;

/// `osd query`: load a CSV dataset and print the NN candidates of one
/// query (`--query "x,y;…"`) or of a whole batch (`--queries FILE`, one
/// spec per line, spread over `--threads N` worker threads).
///
/// # Errors
/// Returns a [`CliError`] on bad flags or unreadable data.
pub fn cmd_query(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let op = parse_operator(flags.value("--op").unwrap_or("psd"))?;
    let k: usize = flags.parsed_or("--k", 1)?;
    let threads: usize = flags.parsed_or("--threads", 1)?;
    let progressive = flags.has("--progressive");

    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let dim = objects
        .first()
        .map(osd_uncertain::UncertainObject::dim)
        .ok_or_else(|| CliError::Data(format!("{data}: dataset is empty")))?;

    if let Some(file) = flags.value("--queries") {
        if flags.value("--query").is_some() {
            return Err(CliError::BadArgument(
                "--query and --queries are mutually exclusive".into(),
            ));
        }
        if progressive || k > 1 {
            return Err(CliError::BadArgument(
                "--queries batch mode supports neither --progressive nor --k".into(),
            ));
        }
        let queries = read_query_file(Path::new(file), dim)?;
        let db = Database::try_new(objects).map_err(|e| CliError::Data(e.to_string()))?;
        let engine = QueryEngine::new(&db, op);
        let results = engine.run_batch(&queries, threads.max(1));
        for (i, res) in results.iter().enumerate() {
            println!(
                "query {:>4}: {} candidates under {}:",
                i + 1,
                res.candidates.len(),
                op.label()
            );
            for c in &res.candidates {
                println!("  object {:>6}  min-dist {:>10.3}", c.id, c.min_dist);
            }
        }
        return Ok(());
    }

    let query = parse_query_spec(flags.required("--query")?)?;
    if dim != query.dim() {
        return Err(CliError::Data(format!(
            "query dimensionality {} does not match the dataset's {}",
            query.dim(),
            dim
        )));
    }
    let db = Database::try_new(objects).map_err(|e| CliError::Data(e.to_string()))?;
    let pq = PreparedQuery::new(query);
    let cfg = FilterConfig::all();

    if progressive {
        println!("{:>8} {:>12} {:>12}", "object", "min-dist", "elapsed");
        let mut stream = ProgressiveNnc::new(&db, &pq, op, &cfg);
        while let Some(c) = stream.next_candidate() {
            println!("{:>8} {:>12.3} {:>10.2?}", c.id, c.min_dist, c.elapsed);
        }
        return Ok(());
    }
    if k > 1 {
        let res = k_nn_candidates(&db, &pq, op, k, &cfg);
        println!(
            "{} {}-robust candidates under {}:",
            res.candidates.len(),
            k,
            op.label()
        );
        for (c, dominators) in &res.candidates {
            println!(
                "  object {:>6}  min-dist {:>10.3}  dominators {}",
                c.id, c.min_dist, dominators
            );
        }
    } else {
        let res = nn_candidates(&db, &pq, op, &cfg);
        println!("{} candidates under {}:", res.candidates.len(), op.label());
        for c in &res.candidates {
            println!("  object {:>6}  min-dist {:>10.3}", c.id, c.min_dist);
        }
    }
    Ok(())
}

/// Reads a batch-query file: one `"x,y;x,y;…"` spec per line; blank lines
/// and `#` comments are skipped. Every query must match the dataset's
/// dimensionality `dim`.
fn read_query_file(path: &Path, dim: usize) -> Result<Vec<PreparedQuery>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Data(e.to_string()))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let obj = parse_query_spec(line).map_err(|e| {
            CliError::BadArgument(format!("{}:{}: {e}", path.display(), lineno + 1))
        })?;
        if obj.dim() != dim {
            return Err(CliError::Data(format!(
                "{}:{}: query dimensionality {} does not match the dataset's {}",
                path.display(),
                lineno + 1,
                obj.dim(),
                dim
            )));
        }
        queries.push(PreparedQuery::new(obj));
    }
    if queries.is_empty() {
        return Err(CliError::Data(format!(
            "{}: no queries (all lines blank or comments)",
            path.display()
        )));
    }
    Ok(queries)
}

/// `osd score`: score one object of the dataset under the implemented NN
/// functions (useful once the user picks a function for the shortlist).
///
/// # Errors
/// Returns a [`CliError`] on bad flags or unreadable data.
pub fn cmd_score(flags: &Flags) -> Result<(), CliError> {
    let data = flags.required("--data")?;
    let query = parse_query_spec(flags.required("--query")?)?;
    let id: usize = flags
        .required("--object")?
        .parse()
        .map_err(|_| CliError::BadArgument("--object must be an id".into()))?;
    let objects = read_objects_csv(Path::new(data)).map_err(|e| CliError::Data(e.to_string()))?;
    let obj = objects.get(id).ok_or_else(|| {
        CliError::Data(format!("object {id} out of range (n = {})", objects.len()))
    })?;

    println!("object {id} vs query:");
    for f in [
        N1Function::Min,
        N1Function::Mean,
        N1Function::Max,
        N1Function::Quantile(0.25),
        N1Function::Quantile(0.5),
        N1Function::Quantile(0.75),
    ] {
        println!("  {:<16} {:>12.4}", f.name(), f.score(obj, &query));
    }
    println!("  {:<16} {:>12.4}", "hausdorff", hausdorff(obj, &query));
    println!("  {:<16} {:>12.4}", "sum-min", sum_min(obj, &query));
    println!("  {:<16} {:>12.4}", "emd", emd(obj, &query));
    Ok(())
}

/// `osd gen`: generate a synthetic/surrogate dataset into a CSV file.
///
/// # Errors
/// Returns a [`CliError`] on bad flags or write failures.
pub fn cmd_gen(flags: &Flags) -> Result<(), CliError> {
    let out = flags.required("--out")?;
    let kind = flags.value("--dataset").unwrap_or("anti");
    let n: usize = flags.parsed_or("--n", 1000)?;
    let m: usize = flags.parsed_or("--m", 10)?;
    let dim: usize = flags.parsed_or("--dim", 3)?;
    let edge: f64 = flags.parsed_or("--edge", 400.0)?;
    let seed: u64 = flags.parsed_or("--seed", 42)?;

    let objects = match kind {
        "anti" | "indep" => {
            let centers = if kind == "anti" {
                CenterDistribution::AntiCorrelated
            } else {
                CenterDistribution::Independent
            };
            generate_objects(&SynthParams {
                n,
                dim,
                instances: m,
                edge,
                centers,
                seed,
            })
        }
        "gw" | "gowalla" => gowalla_like(n, m, seed),
        "nba" => nba_like(n, m, seed),
        other => {
            return Err(CliError::BadArgument(format!(
                "unknown dataset {other:?} (use anti | indep | gw | nba)"
            )))
        }
    };
    write_objects_csv(Path::new(out), &objects).map_err(|e| CliError::Data(e.to_string()))?;
    println!(
        "wrote {} objects × {} instances to {out}",
        objects.len(),
        objects[0].len()
    );
    Ok(())
}

/// Dispatches a subcommand. Returns `Err` with a printable message on any
/// failure; the caller maps it to the exit code.
///
/// # Errors
/// Propagates the subcommand's [`CliError`].
pub fn run(subcommand: &str, flags: &Flags) -> Result<(), CliError> {
    match subcommand {
        "query" => cmd_query(flags),
        "score" => cmd_score(flags),
        "gen" => cmd_gen(flags),
        other => Err(CliError::BadArgument(format!(
            "unknown subcommand {other:?} (use query | score | gen)"
        ))),
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "osd — optimal spatial dominance NN-candidate search

USAGE:
  osd gen   --out data.csv [--dataset anti|indep|gw|nba] [--n N] [--m M]
            [--dim D] [--edge H] [--seed S]
  osd query --data data.csv --query \"x,y;x,y;…\" [--op ssd|sssd|psd|fsd|f+sd]
            [--k K] [--progressive]
  osd query --data data.csv --queries queries.txt [--op …] [--threads N]
            (one \"x,y;x,y;…\" spec per line; blank lines and # comments skipped)
  osd score --data data.csv --query \"x,y;…\" --object ID
"
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn flags(kv: &[&str]) -> Flags {
        Flags::new(kv.iter().map(|s| s.to_string()).collect())
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("osd-cli-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_query_roundtrip() {
        let out = tmp("gen.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "50",
            "--m",
            "4",
            "--dim",
            "2",
        ]))
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000;5100,5100",
            "--op",
            "sssd",
        ]))
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--query",
            "5000,5000",
            "--k",
            "3",
        ]))
        .unwrap();
        cmd_score(&flags(&["--data", &out, "--query", "0,0", "--object", "0"])).unwrap();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn batch_query_file_runs_multithreaded() {
        let out = tmp("batch.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "40",
            "--m",
            "3",
            "--dim",
            "2",
        ]))
        .unwrap();
        let qfile = tmp("batch-queries.txt");
        std::fs::write(
            &qfile,
            "# workload\n5000,5000;5100,5100\n\n2000,8000\n7500,2500;7600,2400\n",
        )
        .unwrap();
        cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--op",
            "psd",
            "--threads",
            "4",
        ]))
        .unwrap();
        // --query and --queries together is an error.
        let err = cmd_query(&flags(&[
            "--data",
            &out,
            "--queries",
            &qfile,
            "--query",
            "1,2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn batch_query_file_errors_are_located() {
        let out = tmp("batchdim.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "10",
            "--dim",
            "2",
        ]))
        .unwrap();
        let qfile = tmp("batchdim-queries.txt");
        std::fs::write(&qfile, "1,2\n3,4,5\n").unwrap();
        let err = cmd_query(&flags(&["--data", &out, "--queries", &qfile])).unwrap_err();
        assert!(err.to_string().contains(":2:"));
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&qfile).ok();
    }

    #[test]
    fn dimension_mismatch_reported() {
        let out = tmp("dim.csv");
        cmd_gen(&flags(&[
            "--out",
            &out,
            "--dataset",
            "indep",
            "--n",
            "10",
            "--dim",
            "2",
        ]))
        .unwrap();
        let err = cmd_query(&flags(&["--data", &out, "--query", "1,2,3"])).unwrap_err();
        std::fs::remove_file(&out).ok();
        assert!(err.to_string().contains("dimensionality"));
    }

    #[test]
    fn empty_dataset_reported_not_panicked() {
        let out = tmp("empty.csv");
        std::fs::write(&out, "").unwrap();
        let err = cmd_query(&flags(&["--data", &out, "--query", "1,2"])).unwrap_err();
        std::fs::remove_file(&out).ok();
        assert!(matches!(err, CliError::Data(_)), "got {err:?}");
    }

    #[test]
    fn unknown_subcommand() {
        assert!(run("frobnicate", &flags(&[])).is_err());
    }

    #[test]
    fn missing_required_flag() {
        let err = cmd_query(&flags(&["--query", "1,2"])).unwrap_err();
        assert!(matches!(err, CliError::Missing(_)));
    }
}
