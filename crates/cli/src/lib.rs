//! # osd-cli
//!
//! Library half of the `osd` command-line tool: argument parsing and the
//! subcommand implementations, kept out of `main.rs` so they are testable.
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_query_spec, CliError};
