//! Argument handling for the `osd` CLI.

use osd_core::Operator;
use osd_geom::Point;
use osd_uncertain::UncertainObject;
use std::fmt;

/// CLI-level errors, printable to the user.
#[derive(Debug)]
pub enum CliError {
    /// A malformed flag or value.
    BadArgument(String),
    /// A missing required flag.
    Missing(String),
    /// Anything bubbling up from the library layers.
    Data(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::BadArgument(m) => write!(f, "bad argument: {m}"),
            CliError::Missing(m) => write!(f, "missing argument: {m}"),
            CliError::Data(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses a query specification of the form `"x,y;x,y;…"` (one instance
/// per semicolon-separated group, uniform probabilities) into an object.
///
/// # Errors
/// Returns [`CliError::BadArgument`] on malformed input.
pub fn parse_query_spec(spec: &str) -> Result<UncertainObject, CliError> {
    let mut points = Vec::new();
    for (i, group) in spec.split(';').enumerate() {
        let group = group.trim();
        if group.is_empty() {
            continue;
        }
        let coords: Result<Vec<f64>, _> =
            group.split(',').map(|c| c.trim().parse::<f64>()).collect();
        let coords = coords
            .map_err(|_| CliError::BadArgument(format!("instance {}: {:?}", i + 1, group)))?;
        if coords.is_empty() {
            return Err(CliError::BadArgument(format!(
                "instance {} is empty",
                i + 1
            )));
        }
        points.push(Point::new(coords));
    }
    if points.is_empty() {
        return Err(CliError::BadArgument("query has no instances".into()));
    }
    let dim = points[0].dim();
    if points.iter().any(|p| p.dim() != dim) {
        return Err(CliError::BadArgument(
            "query instances disagree on dimensionality".into(),
        ));
    }
    Ok(UncertainObject::uniform(points))
}

/// Parses an operator name.
///
/// # Errors
/// Returns [`CliError::BadArgument`] for unknown names.
pub fn parse_operator(name: &str) -> Result<Operator, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "ssd" | "s-sd" => Ok(Operator::SSd),
        "sssd" | "ss-sd" => Ok(Operator::SsSd),
        "psd" | "p-sd" => Ok(Operator::PSd),
        "fsd" | "f-sd" => Ok(Operator::FSd),
        "f+sd" | "fplussd" | "fplus" => Ok(Operator::FPlusSd),
        other => Err(CliError::BadArgument(format!(
            "unknown operator {other:?} (use ssd | sssd | psd | fsd | f+sd)"
        ))),
    }
}

/// Output format selected by `--profile[=json|prom]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileFormat {
    /// Hand-formatted JSON document (the default).
    Json,
    /// Prometheus text exposition format.
    Prom,
}

/// Output format selected by `--trace[=text|chrome]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Human-readable indented span tree (the default).
    Text,
    /// Chrome trace-event JSON, loadable in `chrome://tracing` / Perfetto.
    Chrome,
}

/// A tiny flag scanner: `--name value` pairs plus boolean `--name` flags.
pub struct Flags {
    args: Vec<String>,
}

impl Flags {
    /// Wraps an argument list (without the subcommand).
    pub fn new(args: Vec<String>) -> Self {
        Flags { args }
    }

    /// The value following `--name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// A required `--name value`.
    ///
    /// # Errors
    /// Returns [`CliError::Missing`] when absent.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.value(name)
            .ok_or_else(|| CliError::Missing(name.into()))
    }

    /// Whether the boolean flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The `--profile` selection: `None` when the flag is absent, `Json`
    /// for a bare `--profile` or `--profile=json`, `Prom` for
    /// `--profile=prom`.
    ///
    /// # Errors
    /// Returns [`CliError::BadArgument`] for an unknown format.
    pub fn profile(&self) -> Result<Option<ProfileFormat>, CliError> {
        for a in &self.args {
            match a.as_str() {
                "--profile" | "--profile=json" => return Ok(Some(ProfileFormat::Json)),
                "--profile=prom" | "--profile=prometheus" => return Ok(Some(ProfileFormat::Prom)),
                other => {
                    if let Some(v) = other.strip_prefix("--profile=") {
                        return Err(CliError::BadArgument(format!(
                            "--profile={v:?} (use json | prom)"
                        )));
                    }
                }
            }
        }
        Ok(None)
    }

    /// The `--trace` selection: `None` when the flag is absent, `Text`
    /// for a bare `--trace` or `--trace=text`, `Chrome` for
    /// `--trace=chrome`.
    ///
    /// # Errors
    /// Returns [`CliError::BadArgument`] for an unknown format.
    pub fn trace(&self) -> Result<Option<TraceFormat>, CliError> {
        for a in &self.args {
            match a.as_str() {
                "--trace" | "--trace=text" => return Ok(Some(TraceFormat::Text)),
                "--trace=chrome" => return Ok(Some(TraceFormat::Chrome)),
                other => {
                    if let Some(v) = other.strip_prefix("--trace=") {
                        return Err(CliError::BadArgument(format!(
                            "--trace={v:?} (use text | chrome)"
                        )));
                    }
                }
            }
        }
        Ok(None)
    }

    /// The `--warm` selection: `true` (warm execution on) when the flag is
    /// absent or spelled `--warm`/`--warm=on`, `false` for `--warm=off` —
    /// the escape hatch back to fully cold per-query caches.
    ///
    /// # Errors
    /// Returns [`CliError::BadArgument`] for an unknown value.
    pub fn warm(&self) -> Result<bool, CliError> {
        for a in &self.args {
            match a.as_str() {
                "--warm" | "--warm=on" => return Ok(true),
                "--warm=off" => return Ok(false),
                other => {
                    if let Some(v) = other.strip_prefix("--warm=") {
                        return Err(CliError::BadArgument(format!(
                            "--warm={v:?} (use on | off)"
                        )));
                    }
                }
            }
        }
        Ok(true)
    }

    /// The raw argument list — for subcommands taking positional words
    /// (`osd trace last 5`).
    pub fn raw(&self) -> &[String] {
        &self.args
    }

    /// A parsed optional value with a default.
    ///
    /// # Errors
    /// Returns [`CliError::BadArgument`] when the value does not parse.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::BadArgument(format!("{name} = {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn parses_multi_instance_query() {
        let q = parse_query_spec("1,2; 3,4 ;5,6").unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.dim(), 2);
        let total: f64 = q.instances().iter().map(|i| i.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query_spec("").is_err());
        assert!(parse_query_spec("1,2;x,4").is_err());
        assert!(parse_query_spec("1,2;3").is_err()); // mixed dims
    }

    #[test]
    fn operator_names() {
        assert_eq!(parse_operator("PSD").unwrap(), Operator::PSd);
        assert_eq!(parse_operator("f+sd").unwrap(), Operator::FPlusSd);
        assert!(parse_operator("xyz").is_err());
    }

    #[test]
    fn flag_scanner() {
        let f = Flags::new(vec![
            "--data".into(),
            "x.csv".into(),
            "--progressive".into(),
            "--k".into(),
            "3".into(),
        ]);
        assert_eq!(f.value("--data"), Some("x.csv"));
        assert!(f.has("--progressive"));
        assert!(!f.has("--nope"));
        assert_eq!(f.parsed_or("--k", 1usize).unwrap(), 3);
        assert_eq!(f.parsed_or("--missing", 7usize).unwrap(), 7);
        assert!(f.required("--data").is_ok());
        assert!(f.required("--query").is_err());
    }

    #[test]
    fn trace_flag_forms() {
        let none = Flags::new(vec!["--data".into(), "x.csv".into()]);
        assert_eq!(none.trace().unwrap(), None);
        let bare = Flags::new(vec!["--trace".into()]);
        assert_eq!(bare.trace().unwrap(), Some(TraceFormat::Text));
        let text = Flags::new(vec!["--trace=text".into()]);
        assert_eq!(text.trace().unwrap(), Some(TraceFormat::Text));
        let chrome = Flags::new(vec!["--trace=chrome".into()]);
        assert_eq!(chrome.trace().unwrap(), Some(TraceFormat::Chrome));
        let bad = Flags::new(vec!["--trace=xml".into()]);
        assert!(bad.trace().is_err());
    }

    #[test]
    fn warm_flag_forms() {
        let none = Flags::new(vec!["--data".into(), "x.csv".into()]);
        assert!(none.warm().unwrap(), "warm execution is the default");
        let on = Flags::new(vec!["--warm=on".into()]);
        assert!(on.warm().unwrap());
        let off = Flags::new(vec!["--warm=off".into()]);
        assert!(!off.warm().unwrap());
        let bad = Flags::new(vec!["--warm=tepid".into()]);
        assert!(bad.warm().is_err());
    }

    #[test]
    fn profile_flag_forms() {
        let none = Flags::new(vec!["--data".into(), "x.csv".into()]);
        assert_eq!(none.profile().unwrap(), None);
        let bare = Flags::new(vec!["--profile".into()]);
        assert_eq!(bare.profile().unwrap(), Some(ProfileFormat::Json));
        let json = Flags::new(vec!["--profile=json".into()]);
        assert_eq!(json.profile().unwrap(), Some(ProfileFormat::Json));
        let prom = Flags::new(vec!["--profile=prom".into()]);
        assert_eq!(prom.profile().unwrap(), Some(ProfileFormat::Prom));
        let bad = Flags::new(vec!["--profile=xml".into()]);
        assert!(bad.profile().is_err());
    }
}
