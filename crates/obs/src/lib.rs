//! # osd-obs
//!
//! Query-pipeline observability: spans, phase timers, counters, gauges and
//! fixed-bucket latency histograms for the NN-candidate search, plus JSON
//! and Prometheus-text exposition.
//!
//! The paper's efficiency claims (Figures 14–17) are stated in terms of
//! pruning-cost counters and per-phase wall-clock; this crate makes that
//! breakdown observable on every query without perturbing the measured
//! algorithm:
//!
//! * [`Phase`] — the five-phase taxonomy of one NNC query (*prepare*,
//!   *rtree-descent*, *level-prune*, *validate*, *refine*);
//! * [`PhaseTimer`] / [`Span`] — monotonic-clock timers recorded into a
//!   [`QueryMetrics`];
//! * [`QueryMetrics`] — the per-query registry: counters ([`Counter`]),
//!   the heap high-water gauge, per-phase totals and [`Histogram`]s, and
//!   labelled per-operator/per-span tallies. Merging is exact and
//!   order-independent (field-wise `u64` addition, `max` for gauges), so
//!   per-worker registries fold to the same totals regardless of thread
//!   count — mirroring `Stats::merge` in `osd-core`;
//! * [`trace`] — per-query structured trace trees ([`QueryTrace`]), the
//!   flight-recorder ring buffer and slow-query log
//!   ([`FlightRecorder`]), and the Chrome-trace/text exporters — the
//!   forensic layer over the same pipeline the registry aggregates;
//! * [`expo`] — JSON and Prometheus text renderers over the registry.
//!
//! ## Zero overhead when disabled
//!
//! Everything is gated on the `enabled` cargo feature. Without it,
//! [`QueryMetrics`], [`PhaseTimer`], [`Span`] and [`QueryTrace`] are
//! zero-sized types whose methods are empty `#[inline]` bodies: no clock
//! reads, no counter arithmetic, no allocation — the instrumented pipeline
//! compiles to the uninstrumented one, keeping tier-1 results and counters
//! bit-identical.
//!
//! The exception is [`Stopwatch`], which is always live: it backs the
//! progressive traversal's `Candidate::elapsed` timestamps, a result field
//! that predates this crate (Figure 14) and must keep working in every
//! build. It is also the single sanctioned clock shim of the workspace:
//! `cargo run -p xtask -- check` bans raw `std::time::Instant` /
//! `SystemTime` in `osd-core` / `osd-geom` / `osd-rtree` *and* in every
//! module of this crate except this file (`no-ad-hoc-timing`), so the
//! timers and the tracer all read time through `Stopwatch`.

pub mod expo;
pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{
    Counter, Histogram, QueryMetrics, BUCKET_BOUNDS_NS, MAX_TRACKED_SHARDS, NUM_BUCKETS,
};
pub use span::{PhaseTimer, Span};
pub use trace::{
    chrome_trace, render_text, AttrValue, FlightRecorder, QueryTrace, SpanId, SpanKind, SpanRecord,
    TraceData,
};

use std::time::{Duration, Instant};

/// The phases of one NNC query, in pipeline order.
///
/// The taxonomy follows Algorithm 1 and the §5.1 filter stack: *prepare*
/// (per-query context/heap construction), *rtree-descent* (global best-first
/// traversal plus local-tree distance primitives), *level-prune*
/// (level-by-level bounds over local R-tree nodes, §5.1.1–5.1.2),
/// *validate* (cover-based MBR validation and the strictness guard,
/// Theorem 4) and *refine* (the exact P-SD max-flow machinery, Theorem 12).
///
/// Phases are recorded where the work happens, so a phase nested inside
/// another (a flow solve fired from inside level pruning, a strictness
/// guard fired from a validated level bound) is attributed to **both**
/// enclosing timers: the breakdown is a profile of where time goes, not a
/// disjoint partition of wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Per-query setup: context allocation, cache vectors, heap seeding.
    Prepare,
    /// Best-first descent of the global R-tree and the local-tree
    /// nearest/furthest primitives keying the traversal.
    RtreeDescent,
    /// Level-by-level pruning/validation over local R-tree node bounds.
    LevelPrune,
    /// Cover-based MBR validation and the `U_Q ≠ V_Q` strictness guard.
    Validate,
    /// Exact P-SD refinement: bipartite network construction + max-flow.
    Refine,
}

impl Phase {
    /// Number of phases (array dimension for per-phase storage).
    pub const COUNT: usize = 5;

    /// All phases in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Prepare,
        Phase::RtreeDescent,
        Phase::LevelPrune,
        Phase::Validate,
        Phase::Refine,
    ];

    /// Stable exposition label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::RtreeDescent => "rtree-descent",
            Phase::LevelPrune => "level-prune",
            Phase::Validate => "validate",
            Phase::Refine => "refine",
        }
    }

    /// Dense index into per-phase arrays.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))] // only the real registry indexes
    pub(crate) fn idx(self) -> usize {
        match self {
            Phase::Prepare => 0,
            Phase::RtreeDescent => 1,
            Phase::LevelPrune => 2,
            Phase::Validate => 3,
            Phase::Refine => 4,
        }
    }
}

/// A monotonic wall-clock stopwatch — the one timing primitive that stays
/// live with the `enabled` feature off.
///
/// Backs the progressive traversal's `Candidate::elapsed` field (the
/// Figure 14 emission timestamps), which is part of the query result in
/// every build. Library crates under the `no-ad-hoc-timing` rule use this
/// instead of `std::time::Instant`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (~584 years).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.idx(), i);
        }
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "prepare",
                "rtree-descent",
                "level-prune",
                "validate",
                "refine"
            ]
        );
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }
}
