//! Per-query structured trace trees, the flight-recorder ring buffer and
//! the slow-query log.
//!
//! Where [`QueryMetrics`](crate::QueryMetrics) *aggregates* (counters,
//! phase totals, histograms), this module *narrates*: one [`TraceData`] is
//! the tree of timed spans a single query walked — prepare, every
//! rtree-descent node pop, each level-prune decision, validation, flow
//! refinement — with per-span monotonic timestamps and a bounded set of
//! key/value attributes (candidate id, shard id, prune reason, counter
//! deltas). Traces answer "why was *this* query slow?", which no
//! aggregate can.
//!
//! The moving parts:
//!
//! * [`QueryTrace`] — the recording side, threaded through `CheckCtx` in
//!   `osd-core`. Feature-gated like the registry: with `enabled` off it is
//!   a zero-sized type whose methods are empty `#[inline]` bodies — no
//!   clock reads, no writes, no allocation;
//! * [`TraceData`] / [`SpanRecord`] / [`AttrValue`] — the recorded tree,
//!   always-compiled plain data (the [`Histogram`](crate::Histogram)
//!   precedent), so renderers and the recorder work in every build;
//! * [`FlightRecorder`] — a fixed-capacity ring of recent traces plus the
//!   slow-query log. Retention is a pure function of the trace *set*
//!   (overwrite-oldest by sequence number), so per-worker recorders merge
//!   exactly and order-independently — the `Stats::merge` contract;
//! * [`chrome_trace`] / [`render_text`] — exporters: Chrome trace-event
//!   JSON (loadable in `chrome://tracing` / `ui.perfetto.dev`) and a
//!   human-readable tree;
//! * [`FlightRecorder::to_log`] / [`FlightRecorder::from_log`] — a
//!   versioned plain-text round-trip so the CLI can persist the recorder
//!   between invocations without a serialization dependency.
//!
//! ## Cost model
//!
//! A trace allocates exactly twice, both at [`QueryTrace::start`] (the
//! span arena and the open-span stack, each `with_capacity`); after that
//! warm-up the hot path only writes into reserved capacity. When the arena
//! is full further events are *counted* ([`TraceData::dropped`]) but not
//! stored, so a pathological query cannot make the tracer allocate.
//! Recording is observation-only — it never influences a single branch of
//! the search — so traced results are bit-identical to untraced ones
//! (`repro trace` asserts this, and bounds the median overhead).

#[cfg(feature = "enabled")]
use crate::Stopwatch;
use std::borrow::Cow;

/// Attribute slots per span. Fixed so a span record never allocates;
/// attributes past the capacity are silently ignored (every call site
/// attaches a bounded, known set).
pub const MAX_SPAN_ATTRS: usize = 4;

/// Default span-arena capacity of one trace (events beyond this are
/// counted as dropped, not stored).
pub const DEFAULT_TRACE_EVENTS: usize = 1024;

/// Default ring capacity of a [`FlightRecorder`].
pub const DEFAULT_RING_CAPACITY: usize = 32;

/// Default retained-slow-trace capacity of a [`FlightRecorder`].
pub const DEFAULT_SLOW_CAPACITY: usize = 8;

/// Sentinel parent index meaning "no parent" (the root span).
const NO_PARENT: u32 = u32::MAX;

/// A span attribute value.
///
/// `Str` holds `Cow` so the recording path stores `&'static str` labels
/// without allocating, while the log-file parser can rebuild owned values.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter-like value (ids, counts, deltas).
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value (distances, keys). Round-trips bit-exactly
    /// through the log format via `to_bits`.
    F64(f64),
    /// Short label (prune reason, operator, cache kind). Must contain no
    /// whitespace — the log format is whitespace-delimited.
    Str(Cow<'static, str>),
}

impl AttrValue {
    /// Renders the value for the whitespace-delimited log format
    /// (`u:`/`i:`/`f:`/`s:` prefix; floats as hex bit patterns for exact
    /// round-trips).
    fn to_log(&self) -> String {
        match self {
            AttrValue::U64(v) => format!("u:{v}"),
            AttrValue::I64(v) => format!("i:{v}"),
            AttrValue::F64(v) => format!("f:{:016x}", v.to_bits()),
            AttrValue::Str(s) => format!("s:{s}"),
        }
    }

    /// Parses a [`AttrValue::to_log`] rendering.
    fn from_log(s: &str) -> Result<AttrValue, String> {
        let (tag, body) = s.split_once(':').ok_or_else(|| bad_attr(s))?;
        match tag {
            "u" => body.parse().map(AttrValue::U64).map_err(|_| bad_attr(s)),
            "i" => body.parse().map(AttrValue::I64).map_err(|_| bad_attr(s)),
            "f" => u64::from_str_radix(body, 16)
                .map(|bits| AttrValue::F64(f64::from_bits(bits)))
                .map_err(|_| bad_attr(s)),
            "s" => Ok(AttrValue::Str(Cow::Owned(body.to_string()))),
            _ => Err(bad_attr(s)),
        }
    }

    /// Renders the value for human/JSON output.
    fn display(&self) -> String {
        match self {
            AttrValue::U64(v) => format!("{v}"),
            AttrValue::I64(v) => format!("{v}"),
            AttrValue::F64(v) => format!("{v}"),
            AttrValue::Str(s) => s.to_string(),
        }
    }

    /// Renders the value as a JSON literal (numbers bare, strings quoted).
    fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => format!("{v}"),
            AttrValue::I64(v) => format!("{v}"),
            AttrValue::F64(v) if v.is_finite() => format!("{v}"),
            AttrValue::F64(v) => format!("\"{v}\""),
            AttrValue::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }
}

fn bad_attr(s: &str) -> String {
    format!("malformed attribute value {s:?}")
}

/// Whether a span is a timed region or a zero-duration point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A timed region with distinct open and close timestamps.
    Span,
    /// A point event (node visit, candidate emission, prune decision).
    Instant,
}

/// One recorded span: a named, timestamped node of the trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name — `Borrowed` when recorded live, `Owned` when parsed
    /// back from a log file.
    pub name: Cow<'static, str>,
    /// Arena index of the parent span; `u32::MAX` on the root.
    pub parent: u32,
    /// Nesting depth (root = 0), denormalised for cheap tree rendering.
    pub depth: u16,
    /// Region or point event.
    pub kind: SpanKind,
    /// Monotonic nanoseconds from the trace epoch to the span opening.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instants and unclosed spans).
    pub dur_ns: u64,
    /// Key/value attributes, filled front to back.
    pub attrs: [Option<(Cow<'static, str>, AttrValue)>; MAX_SPAN_ATTRS],
}

impl SpanRecord {
    /// Whether this span is the trace root.
    pub fn is_root(&self) -> bool {
        self.parent == NO_PARENT
    }

    /// The attributes present, in attachment order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().flatten().map(|(k, v)| (k.as_ref(), v))
    }
}

/// One query's recorded trace tree — plain data, always compiled.
///
/// `spans[0]` is the root span (the whole query); children follow in
/// opening order. Equality and retention decisions use only integer
/// fields, so recorder behaviour is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceData {
    /// Batch-assigned sequence number — the recorder's retention key.
    /// Within one recorder stream sequence numbers must be unique (the
    /// batch executor uses the query's input index; the mutation path a
    /// publish counter), which is what makes per-worker recorder merges
    /// exact and order-independent.
    pub seq: u64,
    /// What the trace narrates: the operator label of a query trace, or
    /// `"mutate"` / `"repair"` on the mutation paths.
    pub label: Cow<'static, str>,
    /// Root-span duration: total wall-clock nanoseconds of the query.
    pub total_ns: u64,
    /// The span tree in opening order; `spans[0]` is the root.
    pub spans: Vec<SpanRecord>,
    /// Events not recorded because the span arena was full.
    pub dropped: u32,
}

impl TraceData {
    /// Child spans of the span at arena index `parent`.
    pub fn children(&self, parent: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == parent)
    }

    /// Number of spans recorded under `name`.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }
}

/// Handle to an open (or dropped) span, returned by [`QueryTrace::open`].
///
/// Copyable and inert: a handle from an inactive tracer (or a span dropped
/// at capacity) is the `NONE` sentinel, and every operation on it is a
/// no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The inert handle: attributes and closes against it do nothing.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// The recording side of one query's trace.
///
/// With the `enabled` feature this wraps the span arena, a monotonic
/// epoch and the open-span stack; without it the struct is zero-sized and
/// every method is an empty `#[inline]` body — the traced pipeline
/// compiles to the untraced one. Even in the enabled build a tracer
/// created with [`QueryTrace::off`] holds no arena and records nothing,
/// so tracing stays a per-query runtime decision (`FilterConfig::trace`).
#[derive(Debug, Default)]
#[cfg(feature = "enabled")]
pub struct QueryTrace {
    /// `None` when tracing is off for this query — the only per-call cost
    /// is this discriminant check.
    inner: Option<Box<ActiveTrace>>,
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct ActiveTrace {
    data: TraceData,
    clock: Stopwatch,
    /// Arena indices of the currently open spans, root at the bottom.
    stack: Vec<u32>,
    capacity: usize,
}

/// The recording side of one query's trace (disabled build: a zero-sized
/// no-op that never reads the clock).
#[derive(Debug, Default)]
#[cfg(not(feature = "enabled"))]
pub struct QueryTrace;

#[cfg(feature = "enabled")]
impl QueryTrace {
    /// Whether the `enabled` feature compiled the real tracer in.
    pub const fn enabled() -> bool {
        true
    }

    /// A tracer that records nothing (tracing off for this query).
    #[inline]
    pub fn off() -> Self {
        QueryTrace { inner: None }
    }

    /// Starts a trace: sets the monotonic epoch, reserves the span arena
    /// (`capacity` events — the tracer's only allocations) and opens the
    /// root span under `label`.
    pub fn start(label: &'static str, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut data = TraceData {
            label: Cow::Borrowed(label),
            spans: Vec::with_capacity(capacity),
            ..TraceData::default()
        };
        data.spans.push(SpanRecord {
            name: Cow::Borrowed(label),
            parent: NO_PARENT,
            depth: 0,
            kind: SpanKind::Span,
            start_ns: 0,
            dur_ns: 0,
            attrs: Default::default(),
        });
        let mut stack = Vec::with_capacity(16);
        stack.push(0);
        QueryTrace {
            inner: Some(Box::new(ActiveTrace {
                data,
                clock: Stopwatch::start(),
                stack,
                capacity,
            })),
        }
    }

    /// Whether this tracer is recording.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a child span of the innermost open span. Returns
    /// [`SpanId::NONE`] (and counts a drop) when the arena is full.
    #[inline]
    pub fn open(&mut self, name: &'static str) -> SpanId {
        let Some(active) = self.inner.as_deref_mut() else {
            return SpanId::NONE;
        };
        let Some(idx) = active.push_record(name, SpanKind::Span) else {
            return SpanId::NONE;
        };
        active.stack.push(idx);
        SpanId(idx)
    }

    /// Records a point event under the innermost open span.
    #[inline]
    pub fn instant(&mut self, name: &'static str) -> SpanId {
        let Some(active) = self.inner.as_deref_mut() else {
            return SpanId::NONE;
        };
        match active.push_record(name, SpanKind::Instant) {
            Some(idx) => SpanId(idx),
            None => SpanId::NONE,
        }
    }

    /// Attaches `key = value` to span `id` (first [`MAX_SPAN_ATTRS`] win).
    #[inline]
    pub fn attr(&mut self, id: SpanId, key: &'static str, value: AttrValue) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        let Some(record) = active.data.spans.get_mut(id.0 as usize) else {
            return;
        };
        if let Some(slot) = record.attrs.iter_mut().find(|s| s.is_none()) {
            *slot = Some((Cow::Borrowed(key), value));
        }
    }

    /// Closes span `id`, stamping its duration. Closing out of order
    /// also closes every span opened after `id` (value-type spans cannot
    /// dangle below a closed parent).
    #[inline]
    pub fn close(&mut self, id: SpanId) {
        let Some(active) = self.inner.as_deref_mut() else {
            return;
        };
        if id == SpanId::NONE {
            return;
        }
        let Some(pos) = active.stack.iter().rposition(|&i| i == id.0) else {
            return; // already closed, or never a region span
        };
        let now = active.clock.elapsed_nanos();
        while active.stack.len() > pos {
            if let Some(idx) = active.stack.pop() {
                if let Some(record) = active.data.spans.get_mut(idx as usize) {
                    record.dur_ns = now.saturating_sub(record.start_ns);
                }
            }
        }
    }

    /// Finishes the trace: closes every open span (the root last), stamps
    /// the total duration and yields the recorded tree. `None` if this
    /// tracer was [`off`](QueryTrace::off).
    pub fn finish(self) -> Option<TraceData> {
        let mut active = self.inner?;
        let now = active.clock.elapsed_nanos();
        while let Some(idx) = active.stack.pop() {
            if let Some(record) = active.data.spans.get_mut(idx as usize) {
                record.dur_ns = now.saturating_sub(record.start_ns);
            }
        }
        active.data.total_ns = now;
        Some(active.data)
    }
}

#[cfg(feature = "enabled")]
impl ActiveTrace {
    /// Appends a record under the innermost open span; `None` (counted as
    /// a drop) when the arena is at capacity.
    #[inline]
    fn push_record(&mut self, name: &'static str, kind: SpanKind) -> Option<u32> {
        if self.data.spans.len() >= self.capacity {
            self.data.dropped = self.data.dropped.saturating_add(1);
            return None;
        }
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let depth = self.stack.len() as u16;
        let idx = self.data.spans.len() as u32;
        self.data.spans.push(SpanRecord {
            name: Cow::Borrowed(name),
            parent,
            depth,
            kind,
            start_ns: self.clock.elapsed_nanos(),
            dur_ns: 0,
            attrs: Default::default(),
        });
        Some(idx)
    }
}

#[cfg(not(feature = "enabled"))]
impl QueryTrace {
    /// Whether the `enabled` feature compiled the real tracer in.
    pub const fn enabled() -> bool {
        false
    }

    /// A tracer that records nothing (zero-sized in this build).
    #[inline(always)]
    pub fn off() -> Self {
        QueryTrace
    }

    /// No-op — no clock read, no allocation.
    #[inline(always)]
    pub fn start(_label: &'static str, _capacity: usize) -> Self {
        QueryTrace
    }

    /// Always `false` in the disabled build.
    #[inline(always)]
    pub fn is_active(&self) -> bool {
        false
    }

    /// No-op; always [`SpanId::NONE`].
    #[inline(always)]
    pub fn open(&mut self, _name: &'static str) -> SpanId {
        SpanId::NONE
    }

    /// No-op; always [`SpanId::NONE`].
    #[inline(always)]
    pub fn instant(&mut self, _name: &'static str) -> SpanId {
        SpanId::NONE
    }

    /// No-op.
    #[inline(always)]
    pub fn attr(&mut self, _id: SpanId, _key: &'static str, _value: AttrValue) {}

    /// No-op.
    #[inline(always)]
    pub fn close(&mut self, _id: SpanId) {}

    /// Always `None` in the disabled build.
    #[inline(always)]
    pub fn finish(self) -> Option<TraceData> {
        None
    }
}

/// A fixed-capacity recorder of recent traces plus the slow-query log.
///
/// **Ring semantics.** The ring retains the `capacity` traces with the
/// *highest* sequence numbers — overwrite-oldest, stated as a pure
/// function of the trace set. Because retention depends only on the set
/// (never on arrival order), per-worker recorders [`merge`] to exactly
/// the recorder a single worker would have produced, mirroring the
/// `Stats::merge` order-independence contract.
///
/// **Slow-log promotion.** At [`record`](FlightRecorder::record) time a
/// trace meeting the threshold is *promoted*: copied into the retained
/// slow list, which keeps the `slow_capacity` slowest traces (ties broken
/// by lower sequence number). Promotion is permanent — a slow trace
/// survives being overwritten in the ring, which is the point of the log.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    slow_threshold_ns: u64,
    slow_capacity: usize,
    /// Retained recent traces; unordered storage, retention by `seq`.
    ring: Vec<TraceData>,
    /// Retained slow traces, by `(total_ns desc, seq asc)`.
    slow: Vec<TraceData>,
    recorded: u64,
    evicted: u64,
    promoted: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING_CAPACITY, 0, DEFAULT_SLOW_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining up to `capacity` recent traces, and
    /// promoting traces of at least `slow_threshold_ns` into a slow log
    /// of up to `slow_capacity` entries. A threshold of 0 disables the
    /// slow log.
    pub fn new(capacity: usize, slow_threshold_ns: u64, slow_capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            slow_threshold_ns,
            slow_capacity,
            ring: Vec::new(),
            slow: Vec::new(),
            recorded: 0,
            evicted: 0,
            promoted: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slow-query promotion threshold in nanoseconds (0 = disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Traces ever recorded (including those since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Traces overwritten out of the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Traces promoted to the slow log (including ones later displaced by
    /// slower traces).
    pub fn promoted(&self) -> u64 {
        self.promoted
    }

    /// Traces currently retained in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained slow traces, slowest first.
    pub fn slow_log(&self) -> &[TraceData] {
        &self.slow
    }

    /// Records one trace: slow-log promotion first, then ring insertion
    /// with overwrite-oldest eviction.
    pub fn record(&mut self, trace: TraceData) {
        self.recorded += 1;
        if self.slow_threshold_ns > 0 && trace.total_ns >= self.slow_threshold_ns {
            self.promoted += 1;
            self.slow_insert(trace.clone());
        }
        self.ring_insert(trace);
    }

    /// Merges another recorder's retained traces and tallies into this
    /// one. Exact and order-independent: the merged ring is the
    /// top-`capacity`-by-`seq` of the union, the merged slow log the
    /// top-`slow_capacity`-by-duration of the union — the same recorder
    /// regardless of how work was split across workers.
    pub fn merge(&mut self, other: FlightRecorder) {
        self.recorded += other.recorded;
        self.evicted += other.evicted;
        self.promoted += other.promoted;
        for t in other.ring {
            self.ring_insert(t);
        }
        for t in other.slow {
            self.slow_insert(t);
        }
    }

    /// The `n` most recent traces (highest `seq`), newest first.
    pub fn last(&self, n: usize) -> Vec<&TraceData> {
        let mut all: Vec<&TraceData> = self.ring.iter().collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.seq));
        all.truncate(n);
        all
    }

    /// The `n` slowest known traces (slow log ∪ ring, deduplicated by
    /// `seq`), slowest first.
    pub fn slowest(&self, n: usize) -> Vec<&TraceData> {
        let mut all: Vec<&TraceData> = self.slow.iter().chain(self.ring.iter()).collect();
        all.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        all.dedup_by_key(|t| t.seq);
        all.truncate(n);
        all
    }

    fn ring_insert(&mut self, trace: TraceData) {
        if self.ring.len() < self.capacity {
            self.ring.push(trace);
            return;
        }
        // Overwrite-oldest: the victim is the lowest (seq, total_ns) — a
        // total order over well-formed streams, where seqs are unique.
        let Some(victim) = self
            .ring
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| (t.seq, t.total_ns))
            .map(|(i, _)| i)
        else {
            return;
        };
        let Some(slot) = self.ring.get_mut(victim) else {
            return;
        };
        if (trace.seq, trace.total_ns) > (slot.seq, slot.total_ns) {
            *slot = trace;
        }
        self.evicted += 1;
    }

    fn slow_insert(&mut self, trace: TraceData) {
        if self.slow_capacity == 0 {
            return;
        }
        self.slow.push(trace);
        self.slow
            .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        self.slow.truncate(self.slow_capacity);
    }

    /// Serialises the recorder as the versioned `#osd-flight v1` text
    /// format (whitespace-delimited; floats as bit patterns), so the CLI
    /// can persist it across invocations. Inverse of
    /// [`from_log`](FlightRecorder::from_log).
    pub fn to_log(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "#osd-flight v1 cap={} slow_ns={} slow_cap={} recorded={} evicted={} promoted={}\n",
            self.capacity,
            self.slow_threshold_ns,
            self.slow_capacity,
            self.recorded,
            self.evicted,
            self.promoted
        ));
        for (section, traces) in [("ring", &self.ring), ("slow", &self.slow)] {
            for t in traces {
                out.push_str(&format!(
                    "trace {section} {} {} {} {}\n",
                    t.seq, t.total_ns, t.dropped, t.label
                ));
                for s in &t.spans {
                    let parent = if s.parent == NO_PARENT {
                        "-".to_string()
                    } else {
                        format!("{}", s.parent)
                    };
                    let kind = match s.kind {
                        SpanKind::Span => "s",
                        SpanKind::Instant => "i",
                    };
                    out.push_str(&format!(
                        "span {parent} {} {kind} {} {} {}",
                        s.depth, s.start_ns, s.dur_ns, s.name
                    ));
                    for (k, v) in s.attrs() {
                        out.push_str(&format!(" {k}={}", v.to_log()));
                    }
                    out.push('\n');
                }
                out.push_str("end\n");
            }
        }
        out
    }

    /// Parses a [`to_log`](FlightRecorder::to_log) document back into a
    /// recorder.
    ///
    /// # Errors
    /// A human-readable message when the header, a trace line or a span
    /// line is malformed — corrupted recorder files fail loudly rather
    /// than silently losing traces.
    pub fn from_log(text: &str) -> Result<FlightRecorder, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty flight-recorder file")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("#osd-flight") || fields.next() != Some("v1") {
            return Err(format!("not a v1 flight-recorder file: {header:?}"));
        }
        let mut rec = FlightRecorder::default();
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed header field {field:?}"))?;
            let parsed: u64 = value
                .parse()
                .map_err(|_| format!("malformed header field {field:?}"))?;
            match key {
                "cap" => rec.capacity = (parsed as usize).max(1),
                "slow_ns" => rec.slow_threshold_ns = parsed,
                "slow_cap" => rec.slow_capacity = parsed as usize,
                "recorded" => rec.recorded = parsed,
                "evicted" => rec.evicted = parsed,
                "promoted" => rec.promoted = parsed,
                _ => return Err(format!("unknown header field {field:?}")),
            }
        }
        let mut current: Option<(bool, TraceData)> = None;
        for line in lines {
            let mut parts = lines_fields(line);
            match parts.next() {
                Some("trace") => {
                    if current.is_some() {
                        return Err("trace block not terminated by `end`".into());
                    }
                    let section = parts.next().ok_or("truncated trace line")?;
                    let slow = match section {
                        "ring" => false,
                        "slow" => true,
                        other => return Err(format!("unknown trace section {other:?}")),
                    };
                    let seq = parse_u64(parts.next(), "trace seq")?;
                    let total_ns = parse_u64(parts.next(), "trace total_ns")?;
                    let dropped = parse_u64(parts.next(), "trace dropped")? as u32;
                    let label = parts.next().ok_or("truncated trace line")?.to_string();
                    current = Some((
                        slow,
                        TraceData {
                            seq,
                            label: Cow::Owned(label),
                            total_ns,
                            spans: Vec::new(),
                            dropped,
                        },
                    ));
                }
                Some("span") => {
                    let (_, trace) = current.as_mut().ok_or("span line outside a trace")?;
                    let parent = match parts.next().ok_or("truncated span line")? {
                        "-" => NO_PARENT,
                        p => p
                            .parse()
                            .map_err(|_| format!("malformed span parent {p:?}"))?,
                    };
                    let depth = parse_u64(parts.next(), "span depth")? as u16;
                    let kind = match parts.next().ok_or("truncated span line")? {
                        "s" => SpanKind::Span,
                        "i" => SpanKind::Instant,
                        other => return Err(format!("unknown span kind {other:?}")),
                    };
                    let start_ns = parse_u64(parts.next(), "span start")?;
                    let dur_ns = parse_u64(parts.next(), "span dur")?;
                    let name = parts.next().ok_or("truncated span line")?.to_string();
                    let mut attrs: [Option<(Cow<'static, str>, AttrValue)>; MAX_SPAN_ATTRS] =
                        Default::default();
                    for (slot, kv) in attrs.iter_mut().zip(parts) {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("malformed span attribute {kv:?}"))?;
                        *slot = Some((Cow::Owned(k.to_string()), AttrValue::from_log(v)?));
                    }
                    trace.spans.push(SpanRecord {
                        name: Cow::Owned(name),
                        parent,
                        depth,
                        kind,
                        start_ns,
                        dur_ns,
                        attrs,
                    });
                }
                Some("end") => {
                    let (slow, trace) = current.take().ok_or("`end` line outside a trace block")?;
                    if slow {
                        rec.slow.push(trace);
                    } else {
                        rec.ring.push(trace);
                    }
                }
                Some(other) => return Err(format!("unknown line kind {other:?}")),
                None => {} // blank line
            }
        }
        if current.is_some() {
            return Err("truncated flight-recorder file (unterminated trace)".into());
        }
        rec.slow
            .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        Ok(rec)
    }
}

fn lines_fields(line: &str) -> impl Iterator<Item = &str> {
    line.split_whitespace()
}

fn parse_u64(field: Option<&str>, what: &str) -> Result<u64, String> {
    let s = field.ok_or_else(|| format!("truncated line: missing {what}"))?;
    s.parse().map_err(|_| format!("malformed {what}: {s:?}"))
}

/// Renders traces as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form), loadable in `chrome://tracing`
/// and `ui.perfetto.dev`.
///
/// Each trace becomes one "thread" (tid = `seq`) on pid 0: region spans
/// are complete (`"ph": "X"`) events, instants are thread-scoped instant
/// (`"ph": "i"`) events, and span attributes become `args`. Timestamps
/// are microseconds from each trace's own epoch, as the format requires.
pub fn chrome_trace(traces: &[&TraceData]) -> String {
    let mut events = Vec::new();
    for t in traces {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{} #{} ({} ns)\"}}}}",
            t.seq,
            escape_json(&t.label),
            t.seq,
            t.total_ns
        ));
        for s in &t.spans {
            let ts = s.start_ns as f64 / 1000.0;
            let mut args: Vec<String> = s
                .attrs()
                .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v.to_json()))
                .collect();
            if s.is_root() && t.dropped > 0 {
                args.push(format!("\"dropped_events\":{}", t.dropped));
            }
            let args = args.join(",");
            match s.kind {
                SpanKind::Span => events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                     \"ts\":{ts:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                    escape_json(&s.name),
                    t.seq,
                    s.dur_ns as f64 / 1000.0
                )),
                SpanKind::Instant => events.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                     \"tid\":{},\"ts\":{ts:.3},\"args\":{{{args}}}}}",
                    escape_json(&s.name),
                    t.seq
                )),
            }
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

/// Renders one trace as a human-readable tree: one line per span,
/// indented by depth, with durations and attributes.
pub fn render_text(t: &TraceData) -> String {
    let mut out = format!(
        "trace #{} {} total={} spans={} dropped={}\n",
        t.seq,
        t.label,
        fmt_ns(t.total_ns),
        t.spans.len(),
        t.dropped
    );
    for s in &t.spans {
        out.push_str(&"  ".repeat(s.depth as usize + 1));
        match s.kind {
            SpanKind::Span => {
                out.push_str(&format!("{} {}", s.name, fmt_ns(s.dur_ns)));
            }
            SpanKind::Instant => {
                out.push_str(&format!("* {} @{}", s.name, fmt_ns(s.start_ns)));
            }
        }
        let attrs: Vec<String> = s
            .attrs()
            .map(|(k, v)| format!("{k}={}", v.display()))
            .collect();
        if !attrs.is_empty() {
            out.push_str(&format!(" [{}]", attrs.join(" ")));
        }
        out.push('\n');
    }
    out
}

/// Formats nanoseconds with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic hand-built trace (no clock) for recorder tests.
    fn fake_trace(seq: u64, total_ns: u64) -> TraceData {
        TraceData {
            seq,
            label: Cow::Borrowed("PSD"),
            total_ns,
            spans: vec![
                SpanRecord {
                    name: Cow::Borrowed("PSD"),
                    parent: NO_PARENT,
                    depth: 0,
                    kind: SpanKind::Span,
                    start_ns: 0,
                    dur_ns: total_ns,
                    attrs: Default::default(),
                },
                SpanRecord {
                    name: Cow::Borrowed("prepare"),
                    parent: 0,
                    depth: 1,
                    kind: SpanKind::Span,
                    start_ns: 5,
                    dur_ns: 17,
                    attrs: [
                        Some((Cow::Borrowed("shards"), AttrValue::U64(seq))),
                        Some((Cow::Borrowed("key"), AttrValue::F64(1.5))),
                        None,
                        None,
                    ],
                },
                SpanRecord {
                    name: Cow::Borrowed("candidate"),
                    parent: 0,
                    depth: 1,
                    kind: SpanKind::Instant,
                    start_ns: 40,
                    dur_ns: 0,
                    attrs: [
                        Some((
                            Cow::Borrowed("reason"),
                            AttrValue::Str(Cow::Borrowed("mbr")),
                        )),
                        None,
                        None,
                        None,
                    ],
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn recording_matches_enabled_state() {
        let mut tr = QueryTrace::start("PSD", 16);
        let a = tr.open("prepare");
        tr.attr(a, "shards", AttrValue::U64(2));
        tr.close(a);
        let b = tr.instant("candidate");
        tr.attr(b, "id", AttrValue::U64(7));
        let data = tr.finish();
        if QueryTrace::enabled() {
            let data = data.expect("active tracer yields data");
            assert_eq!(data.spans.len(), 3, "root + span + instant");
            assert!(data.spans[0].is_root());
            assert_eq!(data.count("prepare"), 1);
            assert_eq!(data.count("candidate"), 1);
            assert_eq!(data.spans[1].depth, 1);
            assert_eq!(data.spans[1].attrs().count(), 1);
            assert_eq!(data.total_ns, data.spans[0].dur_ns);
        } else {
            assert!(data.is_none(), "disabled build records nothing");
            assert_eq!(std::mem::size_of::<QueryTrace>(), 0);
        }
    }

    #[test]
    fn off_tracer_records_nothing_in_every_build() {
        let mut tr = QueryTrace::off();
        assert!(!tr.is_active());
        let id = tr.open("prepare");
        assert_eq!(id, SpanId::NONE);
        tr.attr(id, "k", AttrValue::U64(1));
        tr.close(id);
        assert!(tr.finish().is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn arena_capacity_counts_drops() {
        let mut tr = QueryTrace::start("PSD", 2); // root + 1
        let a = tr.open("kept");
        tr.close(a);
        assert_eq!(tr.instant("dropped"), SpanId::NONE);
        assert_eq!(tr.open("dropped-too"), SpanId::NONE);
        let data = tr.finish().expect("active");
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.dropped, 2);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn out_of_order_close_unwinds_children() {
        let mut tr = QueryTrace::start("PSD", 8);
        let outer = tr.open("outer");
        let inner = tr.open("inner");
        tr.close(outer); // closes inner too
        let data = tr.finish().expect("active");
        assert!(data.spans.iter().all(|s| s.dur_ns <= data.total_ns));
        let _ = inner;
    }

    #[test]
    fn ring_keeps_newest_by_seq() {
        let mut rec = FlightRecorder::new(2, 0, 4);
        rec.record(fake_trace(0, 10));
        rec.record(fake_trace(1, 20));
        rec.record(fake_trace(2, 30));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.evicted(), 1);
        let last: Vec<u64> = rec.last(10).iter().map(|t| t.seq).collect();
        assert_eq!(last, vec![2, 1], "oldest seq overwritten");
    }

    #[test]
    fn slow_promotion_survives_ring_overwrite() {
        let mut rec = FlightRecorder::new(2, 100, 4);
        rec.record(fake_trace(0, 500)); // slow — promoted
        rec.record(fake_trace(1, 10));
        rec.record(fake_trace(2, 10));
        rec.record(fake_trace(3, 10)); // seq 0 long gone from the ring
        assert_eq!(rec.promoted(), 1);
        let slowest: Vec<u64> = rec.slowest(10).iter().map(|t| t.seq).collect();
        assert_eq!(slowest[0], 0, "promoted trace outlives the ring");
        assert_eq!(rec.slow_log().len(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let traces: Vec<TraceData> = (0..7).map(|i| fake_trace(i, 10 * (7 - i))).collect();
        // One worker sees everything...
        let mut solo = FlightRecorder::new(3, 25, 2);
        for t in &traces {
            solo.record(t.clone());
        }
        // ...vs. split across workers, merged in both orders.
        for split in 1..traces.len() {
            for flip in [false, true] {
                let mut a = FlightRecorder::new(3, 25, 2);
                let mut b = FlightRecorder::new(3, 25, 2);
                for t in &traces[..split] {
                    a.record(t.clone());
                }
                for t in &traces[split..] {
                    b.record(t.clone());
                }
                let mut merged = FlightRecorder::new(3, 25, 2);
                if flip {
                    merged.merge(b);
                    merged.merge(a);
                } else {
                    merged.merge(a);
                    merged.merge(b);
                }
                let key = |r: &FlightRecorder| {
                    (
                        r.last(10).iter().map(|t| t.seq).collect::<Vec<_>>(),
                        r.slowest(10).iter().map(|t| t.seq).collect::<Vec<_>>(),
                        r.recorded(),
                        r.promoted(),
                    )
                };
                assert_eq!(key(&merged), key(&solo), "split={split} flip={flip}");
            }
        }
    }

    #[test]
    fn log_round_trip_is_exact() {
        let mut rec = FlightRecorder::new(4, 15, 2);
        for i in 0..6 {
            rec.record(fake_trace(i, 3 + 7 * i));
        }
        let text = rec.to_log();
        let back = FlightRecorder::from_log(&text).expect("well-formed log");
        assert_eq!(back, rec, "to_log/from_log must round-trip exactly");
    }

    #[test]
    fn malformed_logs_fail_loudly() {
        assert!(FlightRecorder::from_log("").is_err());
        assert!(FlightRecorder::from_log("#other v9\n").is_err());
        assert!(FlightRecorder::from_log("#osd-flight v1\nspan - 0 s 0 0 x\n").is_err());
        assert!(FlightRecorder::from_log("#osd-flight v1\ntrace ring 0 1 0 PSD\n").is_err());
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let t = fake_trace(3, 100);
        let json = chrome_trace(&[&t]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "region spans present");
        assert!(json.contains("\"ph\":\"i\""), "instants present");
        assert!(json.contains("\"tid\":3"), "trace seq becomes the tid");
        // Every event rides the trace's tid — the complete events must not
        // leak their duration (or anything else) into the tid slot.
        for line in json.lines().filter(|l| l.contains("\"ph\":")) {
            assert!(
                line.contains("\"tid\":3,") || line.contains("\"tid\":3}"),
                "event off its trace thread: {line}"
            );
        }
        assert!(json.contains("\"shards\":3"), "attrs become args");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn text_render_shows_the_tree() {
        let t = fake_trace(5, 1_500);
        let text = render_text(&t);
        assert!(text.contains("trace #5 PSD total=1.50µs"));
        assert!(text.contains("prepare"));
        assert!(text.contains("* candidate"), "instants are starred");
        assert!(text.contains("reason=mbr"));
    }

    #[test]
    fn attr_value_log_round_trip() {
        for v in [
            AttrValue::U64(u64::MAX),
            AttrValue::I64(-42),
            AttrValue::F64(0.1 + 0.2), // a value that decimal text would mangle
            AttrValue::F64(f64::NAN),
            AttrValue::Str(Cow::Borrowed("mbr-dominated")),
        ] {
            let back = AttrValue::from_log(&v.to_log()).expect("round-trip");
            match (&v, &back) {
                (AttrValue::F64(a), AttrValue::F64(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "floats round-trip bit-exactly");
                }
                _ => assert_eq!(v, back),
            }
        }
    }
}
