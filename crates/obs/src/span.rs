//! Monotonic-clock timers: [`PhaseTimer`] for the fixed five-phase
//! taxonomy and [`Span`] for ad-hoc named regions.
//!
//! Both are start/stop value types recorded into a
//! [`QueryMetrics`](crate::QueryMetrics): start one at the top of a region,
//! hand it to [`QueryMetrics::record`](crate::QueryMetrics::record) /
//! [`record_span`](crate::QueryMetrics::record_span) at the bottom. With
//! the `enabled` feature off, both are zero-sized and never read the clock.

use crate::Phase;

#[cfg(feature = "enabled")]
use crate::Stopwatch;

/// A running timer for one of the five pipeline [`Phase`]s.
///
/// Not a RAII guard: dropping it without recording simply discards the
/// sample (the borrow checker would otherwise force `&mut` registry
/// borrows to span the whole timed region).
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    #[cfg(feature = "enabled")]
    started: Stopwatch,
}

impl PhaseTimer {
    /// Starts timing `phase` now (no clock read when disabled).
    #[inline]
    pub fn start(phase: Phase) -> Self {
        PhaseTimer {
            phase,
            #[cfg(feature = "enabled")]
            started: Stopwatch::start(),
        }
    }

    /// The phase this timer is attributed to.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Stops the timer, yielding `(phase, elapsed_ns)`.
    #[cfg(feature = "enabled")]
    pub(crate) fn stop(self) -> (Phase, u64) {
        (self.phase, self.started.elapsed_nanos())
    }
}

/// A running timer for an ad-hoc named region (label-tallied in the
/// registry rather than part of the phase taxonomy).
///
/// Labels must be `&'static str` so the registry can store them without
/// allocating on the query path.
#[derive(Debug)]
pub struct Span {
    label: &'static str,
    #[cfg(feature = "enabled")]
    started: Stopwatch,
}

impl Span {
    /// Enters the span `label` now (no clock read when disabled).
    #[inline]
    pub fn enter(label: &'static str) -> Self {
        Span {
            label,
            #[cfg(feature = "enabled")]
            started: Stopwatch::start(),
        }
    }

    /// The span's label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Stops the span, yielding `(label, elapsed_ns)`.
    #[cfg(feature = "enabled")]
    pub(crate) fn stop(self) -> (&'static str, u64) {
        (self.label, self.started.elapsed_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, QueryMetrics};

    #[test]
    fn phase_timer_records_into_registry() {
        let mut m = QueryMetrics::new();
        let t = PhaseTimer::start(Phase::Validate);
        assert_eq!(t.phase(), Phase::Validate);
        m.record(t);
        if QueryMetrics::enabled() {
            assert_eq!(m.phase_count(Phase::Validate), 1);
            assert_eq!(m.phase_count(Phase::Refine), 0);
        } else {
            assert_eq!(m.phase_count(Phase::Validate), 0);
        }
        // Untouched counters stay zero in both builds.
        assert_eq!(m.counter(Counter::CacheHits), 0);
    }

    #[test]
    fn span_records_under_its_label() {
        let mut m = QueryMetrics::new();
        let s = Span::enter("flow-rebuild");
        assert_eq!(s.label(), "flow-rebuild");
        m.record_span(s);
        if QueryMetrics::enabled() {
            let spans = m.spans();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].0, "flow-rebuild");
            assert_eq!(spans[0].1, 1);
        } else {
            assert!(m.spans().is_empty());
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_types_are_small() {
        // The disabled timer carries only its Phase/label tag — no Instant.
        assert!(std::mem::size_of::<PhaseTimer>() <= std::mem::size_of::<Phase>());
        assert_eq!(
            std::mem::size_of::<Span>(),
            std::mem::size_of::<&'static str>()
        );
    }
}
