//! Exposition: renders a [`QueryMetrics`] registry as JSON or
//! Prometheus text format.
//!
//! Both renderers are written purely against the registry's accessor
//! methods, so they compile and run in the disabled build too (emitting
//! zeros/empties). Callers may pass extra `(name, value)` counter pairs —
//! the CLI uses this to fold the legacy `Stats` counters into the same
//! document without this crate depending on `osd-core`.
//!
//! JSON is hand-formatted (the workspace is std-only; no serde). The
//! schema is stable and validated by the `check.sh` smoke step:
//!
//! ```json
//! {
//!   "enabled": true,
//!   "phases": { "prepare": {"count": 1, "total_ns": 42, "buckets": [..]}, .. },
//!   "counters": { "rtree_node_visits": 7, .. },
//!   "gauges": { "heap_high_water": 5, "snapshot_epoch": 0, "live_objects": 9, "tombstones": 0 },
//!   "candidates_by_op": { "PSD": 11 },
//!   "spans": { "flow-rebuild": {"count": 2, "total_ns": 99} }
//! }
//! ```

use crate::{Counter, Phase, QueryMetrics, BUCKET_BOUNDS_NS, NUM_BUCKETS};

/// Renders the registry (plus `extra` counter pairs) as a JSON object.
pub fn to_json(m: &QueryMetrics, extra: &[(&str, u64)]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"enabled\": {},\n", QueryMetrics::enabled()));

    out.push_str("  \"phases\": {\n");
    for (i, p) in Phase::ALL.iter().enumerate() {
        let buckets = m.phase_buckets(*p);
        let bucket_list = buckets
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"buckets\": [{}]}}{}\n",
            p.name(),
            m.phase_count(*p),
            m.phase_nanos(*p),
            bucket_list,
            comma(i, Phase::COUNT)
        ));
    }
    out.push_str("  },\n");

    out.push_str("  \"counters\": {\n");
    let n_counters = Counter::COUNT + extra.len();
    for (i, c) in Counter::ALL.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            c.name(),
            m.counter(*c),
            comma(i, n_counters)
        ));
    }
    for (j, (name, value)) in extra.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            name,
            value,
            comma(Counter::COUNT + j, n_counters)
        ));
    }
    out.push_str("  },\n");

    out.push_str(&format!(
        "  \"gauges\": {{\"heap_high_water\": {}, \"snapshot_epoch\": {}, \"live_objects\": {}, \"tombstones\": {}, \"warm_evictions\": {}, \"warm_resident_bytes\": {}}},\n",
        m.heap_high_water(),
        m.snapshot_epoch(),
        m.live_objects(),
        m.tombstones(),
        m.warm_evictions(),
        m.warm_resident_bytes()
    ));

    let by_op = m.candidates_by_op();
    out.push_str("  \"candidates_by_op\": {");
    for (i, (label, count)) in by_op.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\": {}{}",
            label,
            count,
            if i + 1 < by_op.len() { ", " } else { "" }
        ));
    }
    out.push_str("},\n");

    let spans = m.spans();
    out.push_str("  \"spans\": {");
    for (i, (label, count, total_ns)) in spans.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\": {{\"count\": {}, \"total_ns\": {}}}{}",
            label,
            count,
            total_ns,
            if i + 1 < spans.len() { ", " } else { "" }
        ));
    }
    out.push_str("},\n");

    // Fixed-width array: MAX_TRACKED_SHARDS cells plus the overflow cell.
    let shard_visits = m.shard_visits();
    out.push_str("  \"shard_node_visits\": [");
    for (i, v) in shard_visits.iter().enumerate() {
        out.push_str(&format!(
            "{}{}",
            v,
            if i + 1 < shard_visits.len() { ", " } else { "" }
        ));
    }
    out.push_str("]\n");

    out.push_str("}\n");
    out
}

/// Renders the registry (plus `extra` counter pairs) in Prometheus text
/// exposition format (metric families `osd_phase_duration_ns`,
/// `osd_phase_latency_bucket` with cumulative `le` buckets, `osd_counter`,
/// `osd_heap_high_water`, the snapshot gauges `osd_snapshot_epoch` /
/// `osd_live_objects` / `osd_tombstones`, `osd_candidates_emitted`,
/// `osd_span_ns` / `osd_span_count`). Every family carries a `# HELP`
/// line immediately before its `# TYPE` line, as the exposition format
/// prescribes.
pub fn to_prometheus(m: &QueryMetrics, extra: &[(&str, u64)]) -> String {
    let mut out = String::with_capacity(2048);

    out.push_str("# HELP osd_phase_duration_ns Total wall-clock nanoseconds per query phase.\n");
    out.push_str("# TYPE osd_phase_duration_ns counter\n");
    for p in Phase::ALL {
        out.push_str(&format!(
            "osd_phase_duration_ns{{phase=\"{}\"}} {}\n",
            p.name(),
            m.phase_nanos(p)
        ));
    }

    out.push_str("# HELP osd_phase_latency Per-sample phase latency distribution, nanoseconds.\n");
    out.push_str("# TYPE osd_phase_latency histogram\n");
    for p in Phase::ALL {
        let buckets = m.phase_buckets(p);
        let mut cumulative = 0u64;
        for (i, b) in buckets.iter().take(NUM_BUCKETS).enumerate() {
            cumulative += b;
            out.push_str(&format!(
                "osd_phase_latency_bucket{{phase=\"{}\",le=\"{}\"}} {}\n",
                p.name(),
                BUCKET_BOUNDS_NS[i],
                cumulative
            ));
        }
        out.push_str(&format!(
            "osd_phase_latency_bucket{{phase=\"{}\",le=\"+Inf\"}} {}\n",
            p.name(),
            m.phase_count(p)
        ));
        out.push_str(&format!(
            "osd_phase_latency_sum{{phase=\"{}\"}} {}\n",
            p.name(),
            m.phase_nanos(p)
        ));
        out.push_str(&format!(
            "osd_phase_latency_count{{phase=\"{}\"}} {}\n",
            p.name(),
            m.phase_count(p)
        ));
    }

    out.push_str("# HELP osd_counter Pipeline event counters (node visits, cache traffic, …).\n");
    out.push_str("# TYPE osd_counter counter\n");
    for c in Counter::ALL {
        out.push_str(&format!(
            "osd_counter{{name=\"{}\"}} {}\n",
            c.name(),
            m.counter(c)
        ));
    }
    for (name, value) in extra {
        out.push_str(&format!("osd_counter{{name=\"{}\"}} {}\n", name, value));
    }

    out.push_str("# HELP osd_heap_high_water Deepest best-first traversal heap observed.\n");
    out.push_str("# TYPE osd_heap_high_water gauge\n");
    out.push_str(&format!("osd_heap_high_water {}\n", m.heap_high_water()));

    out.push_str(
        "# HELP osd_snapshot_epoch Epoch of the published snapshot the query ran against.\n",
    );
    out.push_str("# TYPE osd_snapshot_epoch gauge\n");
    out.push_str(&format!("osd_snapshot_epoch {}\n", m.snapshot_epoch()));

    out.push_str("# HELP osd_live_objects Live objects in the snapshot.\n");
    out.push_str("# TYPE osd_live_objects gauge\n");
    out.push_str(&format!("osd_live_objects {}\n", m.live_objects()));

    out.push_str("# HELP osd_tombstones Deleted-but-unreclaimed rows in the snapshot.\n");
    out.push_str("# TYPE osd_tombstones gauge\n");
    out.push_str(&format!("osd_tombstones {}\n", m.tombstones()));

    out.push_str(
        "# HELP osd_warm_evictions Warm-cache entries discarded by epoch invalidation (pool-cumulative).\n",
    );
    out.push_str("# TYPE osd_warm_evictions gauge\n");
    out.push_str(&format!("osd_warm_evictions {}\n", m.warm_evictions()));

    out.push_str("# HELP osd_warm_resident_bytes Approximate bytes resident in the warm cache.\n");
    out.push_str("# TYPE osd_warm_resident_bytes gauge\n");
    out.push_str(&format!(
        "osd_warm_resident_bytes {}\n",
        m.warm_resident_bytes()
    ));

    out.push_str("# HELP osd_candidates_emitted NN candidates emitted, by dominance operator.\n");
    out.push_str("# TYPE osd_candidates_emitted counter\n");
    for (label, count) in m.candidates_by_op() {
        out.push_str(&format!(
            "osd_candidates_emitted{{op=\"{}\"}} {}\n",
            label, count
        ));
    }

    out.push_str("# HELP osd_span_ns Total nanoseconds inside named code spans.\n");
    out.push_str("# TYPE osd_span_ns counter\n");
    let spans = m.spans();
    for (label, _, total_ns) in &spans {
        out.push_str(&format!("osd_span_ns{{span=\"{label}\"}} {total_ns}\n"));
    }
    out.push_str("# HELP osd_span_count Entries into named code spans.\n");
    out.push_str("# TYPE osd_span_count counter\n");
    for (label, count, _) in &spans {
        out.push_str(&format!("osd_span_count{{span=\"{label}\"}} {count}\n"));
    }

    out.push_str("# HELP osd_shard_node_visits R-tree node visits per STR shard.\n");
    out.push_str("# TYPE osd_shard_node_visits counter\n");
    let shard_visits = m.shard_visits();
    for (i, v) in shard_visits.iter().enumerate() {
        // Only populated cells, to keep one-shard output compact; the
        // trailing cell aggregates shards past the tracked range.
        if *v > 0 {
            if i < shard_visits.len() - 1 {
                out.push_str(&format!("osd_shard_node_visits{{shard=\"{i}\"}} {v}\n"));
            } else {
                out.push_str(&format!(
                    "osd_shard_node_visits{{shard=\"overflow\"}} {v}\n"
                ));
            }
        }
    }

    out
}

fn comma(i: usize, n: usize) -> &'static str {
    if i + 1 < n {
        ","
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryMetrics {
        let mut m = QueryMetrics::new();
        m.incr_by(Counter::RtreeNodeVisits, 7);
        m.incr(Counter::CacheHits);
        m.heap_depth(5);
        m.candidate_emitted("PSD");
        m.shard_visit(0);
        m.shard_visit(2);
        m.snapshot(4, 11, 2);
        m.warm_cache(3, 2048);
        m
    }

    #[test]
    fn json_has_all_phases_and_counters() {
        let json = to_json(&sample(), &[("dominance_checks", 3)]);
        for p in Phase::ALL {
            assert!(
                json.contains(&format!("\"{}\"", p.name())),
                "missing {}",
                p.name()
            );
        }
        for c in Counter::ALL {
            assert!(json.contains(c.name()), "missing {}", c.name());
        }
        assert!(json.contains("\"dominance_checks\": 3"));
        assert!(json.contains("\"heap_high_water\""));
        assert!(json.contains("\"snapshot_epoch\""));
        assert!(json.contains("\"live_objects\""));
        assert!(json.contains("\"tombstones\""));
        assert!(json.contains("\"warm_evictions\""));
        assert!(json.contains("\"warm_resident_bytes\""));
        assert!(json.contains("\"shard_node_visits\": ["));
        if QueryMetrics::enabled() {
            assert!(json.contains("\"rtree_node_visits\": 7"));
            assert!(json.contains("\"PSD\": 1"));
            assert!(json.contains("\"enabled\": true"));
            assert!(json.contains("\"shard_node_visits\": [1, 0, 1, 0,"));
            assert!(json.contains("\"snapshot_epoch\": 4"));
            assert!(json.contains("\"live_objects\": 11"));
            assert!(json.contains("\"tombstones\": 2"));
            assert!(json.contains("\"warm_evictions\": 3"));
            assert!(json.contains("\"warm_resident_bytes\": 2048"));
        } else {
            assert!(json.contains("\"rtree_node_visits\": 0"));
            assert!(json.contains("\"enabled\": false"));
            assert!(json.contains("\"snapshot_epoch\": 0"));
            assert!(json.contains("\"warm_evictions\": 0"));
        }
        // Balanced braces — cheap well-formedness check without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        // No trailing commas before closing braces.
        assert!(!json.contains(",\n  }"), "trailing comma:\n{json}");
        assert!(!json.contains(",}"), "trailing comma:\n{json}");
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_with_count() {
        let prom = to_prometheus(&sample(), &[("mbr_checks", 9)]);
        assert!(prom.contains("# TYPE osd_phase_latency histogram"));
        for p in Phase::ALL {
            let inf = format!(
                "osd_phase_latency_bucket{{phase=\"{}\",le=\"+Inf\"}}",
                p.name()
            );
            assert!(prom.contains(&inf), "missing +Inf bucket for {}", p.name());
        }
        assert!(prom.contains("osd_counter{name=\"mbr_checks\"} 9"));
        assert!(prom.contains("# TYPE osd_shard_node_visits counter"));
        assert!(prom.contains("# TYPE osd_snapshot_epoch gauge"));
        assert!(prom.contains("# TYPE osd_live_objects gauge"));
        assert!(prom.contains("# TYPE osd_tombstones gauge"));
        assert!(prom.contains("# TYPE osd_warm_evictions gauge"));
        assert!(prom.contains("# TYPE osd_warm_resident_bytes gauge"));
        if QueryMetrics::enabled() {
            assert!(prom.contains("osd_shard_node_visits{shard=\"0\"} 1"));
            assert!(prom.contains("osd_shard_node_visits{shard=\"2\"} 1"));
            assert!(prom.contains("osd_snapshot_epoch 4\n"));
            assert!(prom.contains("osd_live_objects 11\n"));
            assert!(prom.contains("osd_tombstones 2\n"));
            assert!(prom.contains("osd_warm_evictions 3\n"));
            assert!(prom.contains("osd_warm_resident_bytes 2048\n"));
        }
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in prom.lines() {
            if let Some(rest) = line.strip_prefix("osd_phase_latency_bucket{phase=\"prepare\"") {
                if let Some(v) = rest.rsplit(' ').next().and_then(|s| s.parse::<u64>().ok()) {
                    assert!(v >= last, "buckets must be cumulative");
                    last = v;
                }
            }
        }
    }

    #[test]
    fn prometheus_families_are_well_formed() {
        let mut m = sample();
        m.record_span(crate::Span::enter("flow-solve"));
        let prom = to_prometheus(&m, &[("dominance_checks", 3)]);

        // Every # TYPE line is immediately preceded by the matching # HELP
        // line, and every sample line belongs to the family most recently
        // declared (allowing the histogram's _bucket/_sum/_count and the
        // shard/overflow suffix-free names).
        let lines: Vec<&str> = prom.lines().collect();
        let mut current_family: Option<&str> = None;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                let help = lines
                    .get(i.wrapping_sub(1))
                    .and_then(|l| l.strip_prefix("# HELP "));
                match help {
                    Some(h) => {
                        assert_eq!(
                            h.split(' ').next().unwrap(),
                            name,
                            "# HELP does not name the family of the following # TYPE"
                        );
                        assert!(
                            h.split_once(' ')
                                .map(|x| x.1)
                                .is_some_and(|d| !d.is_empty()),
                            "# HELP {name} has no description"
                        );
                    }
                    None => panic!("# TYPE {name} lacks a preceding # HELP line"),
                }
                current_family = Some(name);
            } else if !line.starts_with('#') && !line.is_empty() {
                let family = current_family.expect("sample line before any # TYPE");
                let metric = line.split(['{', ' ']).next().unwrap();
                assert!(
                    metric.starts_with(family),
                    "sample {metric} emitted under family {family}"
                );
            }
        }
        // The span registry renders as two families, values paired.
        if QueryMetrics::enabled() {
            assert!(prom.contains("osd_span_count{span=\"flow-solve\"} 1"));
            assert!(prom.contains("osd_span_ns{span=\"flow-solve\"}"));
        }
    }
}
