//! The per-query metrics registry: counters, gauges, histograms and
//! labelled tallies, with exact order-independent merging.
//!
//! One [`QueryMetrics`] accompanies one query's `CheckCtx` through the
//! pipeline; the batch engine folds per-query registries with
//! [`QueryMetrics::merge`]. Every stored quantity is an integer, counters
//! and histogram buckets merge by addition and gauges by `max`, so the
//! folded totals of an N-thread batch are identical to the sequential run
//! — the same exactness contract as `Stats::merge` in `osd-core`.

use crate::span::{PhaseTimer, Span};
use crate::Phase;

/// Number of finite histogram bucket bounds (one overflow bucket follows).
pub const NUM_BUCKETS: usize = 16;

/// Shards tracked individually by the per-shard node-visit tally; visits
/// attributed to shard ids at or past this bound fold into one trailing
/// overflow cell. Fixed capacity keeps the registry allocation-free on the
/// query path (the `LabelSet` idiom) and merging exact.
pub const MAX_TRACKED_SHARDS: usize = 32;

/// Fixed latency bucket upper bounds in nanoseconds: powers of four from
/// 256 ns to ~4.6 min. Samples above the last bound land in the overflow
/// bucket. Fixed bounds keep merging exact: equal-shape histograms add
/// bucket-wise with no re-binning.
pub const BUCKET_BOUNDS_NS: [u64; NUM_BUCKETS] = [
    1 << 8,  // 256 ns
    1 << 10, // ~1 µs
    1 << 12,
    1 << 14,
    1 << 16, // ~65 µs
    1 << 18,
    1 << 20, // ~1 ms
    1 << 22,
    1 << 24, // ~16 ms
    1 << 26,
    1 << 28, // ~268 ms
    1 << 30, // ~1 s
    1 << 32,
    1 << 34, // ~17 s
    1 << 36,
    1 << 38, // ~4.6 min
];

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_NS`].
///
/// Always compiled (it is plain data); whether anything ever observes into
/// it depends on the `enabled` feature of the recording side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples `≤ BUCKET_BOUNDS_NS[i]` (non-cumulative);
    /// `buckets[NUM_BUCKETS]` is the overflow bucket.
    buckets: [u64; NUM_BUCKETS + 1],
    count: u64,
    sum_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS + 1],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample of `ns` nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(NUM_BUCKETS);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Adds another histogram bucket-wise. Exact and order-independent:
    /// `u64` addition per bucket, commutative and associative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Non-cumulative bucket counts (`NUM_BUCKETS` finite buckets plus the
    /// overflow bucket).
    pub fn buckets(&self) -> [u64; NUM_BUCKETS + 1] {
        self.buckets
    }
}

/// The integer counters of the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// R-tree nodes popped during traversal — global best-first descent
    /// plus local-tree nearest/furthest searches (mirrors
    /// `Stats::rtree_nodes_visited`).
    RtreeNodeVisits,
    /// Per-query derived-state cache hits (mirrors `Stats::cache_hits`).
    CacheHits,
    /// Per-query derived-state cache misses — entries built (mirrors
    /// `Stats::cache_misses`).
    CacheMisses,
    /// Candidates emitted by the traversal (all operators combined; see
    /// [`QueryMetrics::candidates_by_op`] for the per-operator split).
    CandidatesEmitted,
    /// Entries pushed onto the progressive traversal heap.
    HeapPushes,
    /// Snapshot-scoped warm-cache lookups served from an already published
    /// entry. Deliberately *not* folded into [`Counter::CacheHits`]: the
    /// legacy counters keep their per-query semantics bit-identical with
    /// the warm cache on or off.
    WarmHits,
    /// Snapshot-scoped warm-cache lookups that had to build (and publish)
    /// the entry.
    WarmMisses,
}

impl Counter {
    /// Number of counters (array dimension).
    pub const COUNT: usize = 7;

    /// All counters, in exposition order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::RtreeNodeVisits,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CandidatesEmitted,
        Counter::HeapPushes,
        Counter::WarmHits,
        Counter::WarmMisses,
    ];

    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RtreeNodeVisits => "rtree_node_visits",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CandidatesEmitted => "candidates_emitted",
            Counter::HeapPushes => "heap_pushes",
            Counter::WarmHits => "warm_hits",
            Counter::WarmMisses => "warm_misses",
        }
    }

    #[cfg(feature = "enabled")]
    fn idx(self) -> usize {
        match self {
            Counter::RtreeNodeVisits => 0,
            Counter::CacheHits => 1,
            Counter::CacheMisses => 2,
            Counter::CandidatesEmitted => 3,
            Counter::HeapPushes => 4,
            Counter::WarmHits => 5,
            Counter::WarmMisses => 6,
        }
    }
}

/// A small set of `(label, count, nanos)` cells kept sorted by label, so
/// that merge results are independent of insertion order and `PartialEq`
/// compares canonically. Capacity is fixed (no allocation on the query
/// path); overflow tallies under `"__other"`.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LabelSet {
    cells: [Option<(&'static str, u64, u64)>; LabelSet::CAPACITY],
}

#[cfg(feature = "enabled")]
impl LabelSet {
    const CAPACITY: usize = 8;
    const OVERFLOW: &'static str = "__other";

    fn add(&mut self, label: &'static str, count: u64, nanos: u64) {
        // Find the insertion point in label-sorted order.
        let mut i = 0;
        while i < Self::CAPACITY {
            match self.cells[i] {
                None => {
                    self.cells[i] = Some((label, count, nanos));
                    return;
                }
                Some((l, ref mut c, ref mut n)) if l == label => {
                    *c += count;
                    *n = n.saturating_add(nanos);
                    return;
                }
                Some((l, _, _)) if label < l => break,
                Some(_) => i += 1,
            }
        }
        if i >= Self::CAPACITY {
            // Full and the label sorts past the end: fold into overflow.
            self.add_overflow(count, nanos);
            return;
        }
        // Shift the tail right to keep sorted order; a displaced last cell
        // folds into the overflow tally.
        if let Some(displaced) = self.cells[Self::CAPACITY - 1] {
            self.add_overflow(displaced.1, displaced.2);
        }
        for j in (i + 1..Self::CAPACITY).rev() {
            self.cells[j] = self.cells[j - 1];
        }
        self.cells[i] = Some((label, count, nanos));
    }

    fn add_overflow(&mut self, count: u64, nanos: u64) {
        // The overflow label starts with '_', sorting before alphabetic
        // labels, so a plain `add` would recurse; update it directly.
        for (l, c, n) in self.cells.iter_mut().flatten() {
            if *l == Self::OVERFLOW {
                *c += count;
                *n = n.saturating_add(nanos);
                return;
            }
        }
        // No overflow cell yet: steal the last slot (we only get here when
        // the set is full of distinct labels).
        if let Some((_, c0, n0)) = self.cells[Self::CAPACITY - 1] {
            for j in (1..Self::CAPACITY).rev() {
                self.cells[j] = self.cells[j - 1];
            }
            self.cells[0] = Some((Self::OVERFLOW, count + c0, nanos.saturating_add(n0)));
        } else {
            self.cells[0] = Some((Self::OVERFLOW, count, nanos));
        }
    }

    fn merge(&mut self, other: &LabelSet) {
        for cell in other.cells.into_iter().flatten() {
            self.add(cell.0, cell.1, cell.2);
        }
    }

    fn entries(&self) -> Vec<(&'static str, u64, u64)> {
        self.cells.iter().flatten().copied().collect()
    }
}

/// The per-query metrics registry.
///
/// With the `enabled` feature this holds the real counters, gauges and
/// histograms; without it the struct is zero-sized, every method is an
/// empty inline body, and every accessor reports zero/empty.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMetrics {
    counters: [u64; Counter::COUNT],
    phase_nanos: [u64; Phase::COUNT],
    phase_hist: [Histogram; Phase::COUNT],
    heap_high_water: u64,
    /// Epoch of the snapshot the query ran against (merged by `max`: a
    /// batch reports the newest snapshot any of its queries saw).
    snapshot_epoch: u64,
    /// Live objects of that snapshot (merged by `max`, like the epoch).
    live_objects: u64,
    /// Tombstoned ids of that snapshot (merged by `max`, like the epoch).
    tombstones: u64,
    /// Cumulative warm-cache entries discarded by epoch invalidation, as
    /// observed by this query's warm view (merged by `max`: the count is
    /// already cumulative per pool, so adding would double-count).
    warm_evictions: u64,
    /// Approximate bytes resident in the warm cache this query ran against
    /// (merged by `max`, like the snapshot gauges).
    warm_resident_bytes: u64,
    per_op: LabelSet,
    spans: LabelSet,
    /// Global-traversal node visits attributed to their source shard;
    /// the trailing cell tallies shards ≥ [`MAX_TRACKED_SHARDS`].
    shard_visits: [u64; MAX_TRACKED_SHARDS + 1],
}

// Manual because `Default` is not derivable for the 33-cell array.
#[cfg(feature = "enabled")]
impl Default for QueryMetrics {
    fn default() -> Self {
        QueryMetrics {
            counters: [0; Counter::COUNT],
            phase_nanos: [0; Phase::COUNT],
            phase_hist: [Histogram::new(); Phase::COUNT],
            heap_high_water: 0,
            snapshot_epoch: 0,
            live_objects: 0,
            tombstones: 0,
            warm_evictions: 0,
            warm_resident_bytes: 0,
            per_op: LabelSet::default(),
            spans: LabelSet::default(),
            shard_visits: [0; MAX_TRACKED_SHARDS + 1],
        }
    }
}

/// The per-query metrics registry (disabled build: a zero-sized no-op).
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryMetrics;

#[cfg(feature = "enabled")]
impl QueryMetrics {
    /// Whether the `enabled` feature compiled the real registry in.
    pub const fn enabled() -> bool {
        true
    }

    /// A fresh, zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `counter` by one.
    #[inline]
    pub fn incr(&mut self, counter: Counter) {
        self.counters[counter.idx()] += 1;
    }

    /// Increments `counter` by `n`.
    #[inline]
    pub fn incr_by(&mut self, counter: Counter, n: u64) {
        self.counters[counter.idx()] += n;
    }

    /// Records the traversal heap's current depth into the high-water
    /// gauge (merged by `max`, which is commutative and associative).
    #[inline]
    pub fn heap_depth(&mut self, depth: u64) {
        self.heap_high_water = self.heap_high_water.max(depth);
    }

    /// Records the snapshot the query runs against: its epoch, live
    /// object count and tombstone count. Each gauge merges by `max`, so a
    /// merged batch reports the newest snapshot state any query saw.
    #[inline]
    pub fn snapshot(&mut self, epoch: u64, live_objects: u64, tombstones: u64) {
        self.snapshot_epoch = self.snapshot_epoch.max(epoch);
        self.live_objects = self.live_objects.max(live_objects);
        self.tombstones = self.tombstones.max(tombstones);
    }

    /// Records the state of the warm cache the query ran against: its
    /// cumulative eviction count and approximate resident bytes. Both
    /// gauges merge by `max` (the values are pool-cumulative snapshots,
    /// not per-query deltas).
    #[inline]
    pub fn warm_cache(&mut self, evictions: u64, resident_bytes: u64) {
        self.warm_evictions = self.warm_evictions.max(evictions);
        self.warm_resident_bytes = self.warm_resident_bytes.max(resident_bytes);
    }

    /// Records one emitted candidate under the operator's label.
    #[inline]
    pub fn candidate_emitted(&mut self, op_label: &'static str) {
        self.incr(Counter::CandidatesEmitted);
        self.per_op.add(op_label, 1, 0);
    }

    /// Records one global-traversal node visit attributed to `shard`
    /// (shards ≥ [`MAX_TRACKED_SHARDS`] fold into the overflow cell).
    #[inline]
    pub fn shard_visit(&mut self, shard: usize) {
        self.shard_visits[shard.min(MAX_TRACKED_SHARDS)] += 1;
    }

    /// Stops `timer` and folds its elapsed time into the phase totals and
    /// the phase latency histogram.
    #[inline]
    pub fn record(&mut self, timer: PhaseTimer) {
        let (phase, ns) = timer.stop();
        self.phase_nanos[phase.idx()] = self.phase_nanos[phase.idx()].saturating_add(ns);
        self.phase_hist[phase.idx()].observe(ns);
    }

    /// Stops `span` and folds its elapsed time into the labelled span
    /// totals.
    #[inline]
    pub fn record_span(&mut self, span: Span) {
        let (label, ns) = span.stop();
        self.spans.add(label, 1, ns);
    }

    /// Merges another registry into this one, field by exact field:
    /// counters, phase totals and histogram buckets add; the heap gauge
    /// takes the `max`; labelled tallies add per label (kept label-sorted).
    /// All integer arithmetic — merged parallel totals equal sequential
    /// totals regardless of worker count or fold order.
    pub fn merge(&mut self, other: &QueryMetrics) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.phase_nanos.iter_mut().zip(other.phase_nanos.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.phase_hist.iter_mut().zip(other.phase_hist.iter()) {
            a.merge(b);
        }
        self.heap_high_water = self.heap_high_water.max(other.heap_high_water);
        self.snapshot_epoch = self.snapshot_epoch.max(other.snapshot_epoch);
        self.live_objects = self.live_objects.max(other.live_objects);
        self.tombstones = self.tombstones.max(other.tombstones);
        self.warm_evictions = self.warm_evictions.max(other.warm_evictions);
        self.warm_resident_bytes = self.warm_resident_bytes.max(other.warm_resident_bytes);
        self.per_op.merge(&other.per_op);
        self.spans.merge(&other.spans);
        for (a, b) in self.shard_visits.iter_mut().zip(other.shard_visits.iter()) {
            *a += b;
        }
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.idx()]
    }

    /// Total nanoseconds recorded under `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.idx()]
    }

    /// Number of timer samples recorded under `phase`.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_hist[phase.idx()].count()
    }

    /// Non-cumulative latency bucket counts of `phase`.
    pub fn phase_buckets(&self, phase: Phase) -> [u64; NUM_BUCKETS + 1] {
        self.phase_hist[phase.idx()].buckets()
    }

    /// Highest traversal-heap depth seen.
    pub fn heap_high_water(&self) -> u64 {
        self.heap_high_water
    }

    /// Epoch of the newest snapshot any merged query ran against.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Live object count of the newest snapshot seen.
    pub fn live_objects(&self) -> u64 {
        self.live_objects
    }

    /// Tombstone count of the newest snapshot seen.
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Cumulative warm-cache evictions observed (largest merged value).
    pub fn warm_evictions(&self) -> u64 {
        self.warm_evictions
    }

    /// Approximate warm-cache resident bytes observed (largest merged
    /// value).
    pub fn warm_resident_bytes(&self) -> u64 {
        self.warm_resident_bytes
    }

    /// Candidates emitted per operator label, label-sorted.
    pub fn candidates_by_op(&self) -> Vec<(&'static str, u64)> {
        self.per_op
            .entries()
            .into_iter()
            .map(|(l, c, _)| (l, c))
            .collect()
    }

    /// Named span totals as `(label, count, total_ns)`, label-sorted.
    pub fn spans(&self) -> Vec<(&'static str, u64, u64)> {
        self.spans.entries()
    }

    /// Per-shard global-traversal node visits: [`MAX_TRACKED_SHARDS`]
    /// individual cells plus one trailing overflow cell.
    pub fn shard_visits(&self) -> [u64; MAX_TRACKED_SHARDS + 1] {
        self.shard_visits
    }
}

#[cfg(not(feature = "enabled"))]
impl QueryMetrics {
    /// Whether the `enabled` feature compiled the real registry in.
    pub const fn enabled() -> bool {
        false
    }

    /// A fresh registry (zero-sized in this build).
    #[inline(always)]
    pub fn new() -> Self {
        QueryMetrics
    }

    /// No-op.
    #[inline(always)]
    pub fn incr(&mut self, _counter: Counter) {}

    /// No-op.
    #[inline(always)]
    pub fn incr_by(&mut self, _counter: Counter, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn heap_depth(&mut self, _depth: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn snapshot(&mut self, _epoch: u64, _live_objects: u64, _tombstones: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn warm_cache(&mut self, _evictions: u64, _resident_bytes: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn candidate_emitted(&mut self, _op_label: &'static str) {}

    /// No-op.
    #[inline(always)]
    pub fn shard_visit(&mut self, _shard: usize) {}

    /// No-op (the timer is zero-sized and never read a clock).
    #[inline(always)]
    pub fn record(&mut self, _timer: PhaseTimer) {}

    /// No-op (the span is zero-sized and never read a clock).
    #[inline(always)]
    pub fn record_span(&mut self, _span: Span) {}

    /// No-op.
    #[inline(always)]
    pub fn merge(&mut self, _other: &QueryMetrics) {}

    /// Always zero in the disabled build.
    pub fn counter(&self, _counter: Counter) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn phase_nanos(&self, _phase: Phase) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn phase_count(&self, _phase: Phase) -> u64 {
        0
    }

    /// Always empty in the disabled build.
    pub fn phase_buckets(&self, _phase: Phase) -> [u64; NUM_BUCKETS + 1] {
        [0; NUM_BUCKETS + 1]
    }

    /// Always zero in the disabled build.
    pub fn heap_high_water(&self) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn snapshot_epoch(&self) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn live_objects(&self) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn tombstones(&self) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn warm_evictions(&self) -> u64 {
        0
    }

    /// Always zero in the disabled build.
    pub fn warm_resident_bytes(&self) -> u64 {
        0
    }

    /// Always empty in the disabled build.
    pub fn candidates_by_op(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Always empty in the disabled build.
    pub fn spans(&self) -> Vec<(&'static str, u64, u64)> {
        Vec::new()
    }

    /// Always zero in the disabled build.
    pub fn shard_visits(&self) -> [u64; MAX_TRACKED_SHARDS + 1] {
        [0; MAX_TRACKED_SHARDS + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_sums() {
        let mut h = Histogram::new();
        h.observe(100); // bucket 0 (≤256)
        h.observe(300); // bucket 1 (≤1024)
        h.observe(u64::MAX); // overflow
        assert_eq!(h.count(), 3);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[NUM_BUCKETS], 1);
        assert_eq!(h.sum_ns(), u64::MAX); // saturated
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |samples: &[u64]| {
            let mut h = Histogram::new();
            for &s in samples {
                h.observe(s);
            }
            h
        };
        let parts = [
            mk(&[1, 5000]),
            mk(&[2_000_000]),
            mk(&[77, 1 << 20, 1 << 39]),
        ];
        // ((a + b) + c) == (a + (b + c)) == fold in reverse order.
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right = parts[2];
        right.merge(&parts[1]);
        right.merge(&parts[0]);
        let mut assoc = parts[1];
        assoc.merge(&parts[2]);
        let mut a0 = parts[0];
        a0.merge(&assoc);
        assert_eq!(left, right);
        assert_eq!(left, a0);
        assert_eq!(left.count(), 6);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn label_set_is_order_independent() {
        let mut a = LabelSet::default();
        a.add("psd", 1, 10);
        a.add("ssd", 2, 20);
        let mut b = LabelSet::default();
        b.add("ssd", 2, 20);
        b.add("psd", 1, 10);
        assert_eq!(a, b, "insertion order must not matter");
        assert_eq!(a.entries(), vec![("psd", 1, 10), ("ssd", 2, 20)]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn label_set_overflow_tallies_under_other() {
        let labels = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
        let mut s = LabelSet::default();
        for (i, l) in labels.iter().enumerate() {
            s.add(l, (i + 1) as u64, 0);
        }
        let total: u64 = s.entries().iter().map(|&(_, c, _)| c).sum();
        assert_eq!(
            total,
            (1..=labels.len() as u64).sum::<u64>(),
            "no count lost"
        );
        assert!(s.entries().iter().any(|&(l, _, _)| l == "__other"));
    }

    #[test]
    fn merge_matches_enabled_state() {
        // In both builds: merging registries never panics, and the
        // deterministic accessors agree with the feature state.
        let mut a = QueryMetrics::new();
        let mut b = QueryMetrics::new();
        a.incr(Counter::RtreeNodeVisits);
        b.incr_by(Counter::RtreeNodeVisits, 4);
        b.heap_depth(9);
        a.heap_depth(3);
        a.candidate_emitted("PSD");
        a.merge(&b);
        if QueryMetrics::enabled() {
            assert_eq!(a.counter(Counter::RtreeNodeVisits), 5);
            assert_eq!(a.heap_high_water(), 9);
            assert_eq!(a.candidates_by_op(), vec![("PSD", 1)]);
        } else {
            assert_eq!(a.counter(Counter::RtreeNodeVisits), 0);
            assert_eq!(a.heap_high_water(), 0);
            assert!(a.candidates_by_op().is_empty());
        }
    }

    #[test]
    fn snapshot_gauges_merge_by_max() {
        let mut a = QueryMetrics::new();
        a.snapshot(3, 100, 2);
        let mut b = QueryMetrics::new();
        b.snapshot(5, 98, 4);
        a.merge(&b);
        if QueryMetrics::enabled() {
            assert_eq!(a.snapshot_epoch(), 5);
            assert_eq!(a.live_objects(), 100);
            assert_eq!(a.tombstones(), 4);
        } else {
            assert_eq!(a.snapshot_epoch(), 0);
            assert_eq!(a.live_objects(), 0);
            assert_eq!(a.tombstones(), 0);
        }
    }

    #[test]
    fn warm_gauges_merge_by_max() {
        let mut a = QueryMetrics::new();
        a.warm_cache(2, 4096);
        a.incr(Counter::WarmHits);
        let mut b = QueryMetrics::new();
        b.warm_cache(5, 1024);
        b.incr_by(Counter::WarmMisses, 3);
        a.merge(&b);
        if QueryMetrics::enabled() {
            assert_eq!(a.warm_evictions(), 5);
            assert_eq!(a.warm_resident_bytes(), 4096);
            assert_eq!(a.counter(Counter::WarmHits), 1);
            assert_eq!(a.counter(Counter::WarmMisses), 3);
        } else {
            assert_eq!(a.warm_evictions(), 0);
            assert_eq!(a.warm_resident_bytes(), 0);
            assert_eq!(a.counter(Counter::WarmHits), 0);
        }
    }

    #[test]
    fn shard_visits_track_and_overflow() {
        let mut m = QueryMetrics::new();
        m.shard_visit(0);
        m.shard_visit(0);
        m.shard_visit(3);
        m.shard_visit(MAX_TRACKED_SHARDS + 5); // folds into the overflow cell
        let mut other = QueryMetrics::new();
        other.shard_visit(3);
        m.merge(&other);
        let v = m.shard_visits();
        if QueryMetrics::enabled() {
            assert_eq!(v[0], 2);
            assert_eq!(v[3], 2);
            assert_eq!(v[MAX_TRACKED_SHARDS], 1);
            assert_eq!(v.iter().sum::<u64>(), 5);
        } else {
            assert!(v.iter().all(|&x| x == 0));
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn registry_merge_is_order_independent() {
        let mk = |seed: u64| {
            let mut m = QueryMetrics::new();
            m.incr_by(Counter::CacheHits, seed);
            m.incr_by(Counter::CacheMisses, seed * 3);
            m.heap_depth(seed * 7);
            m.candidate_emitted(if seed.is_multiple_of(2) { "PSD" } else { "SSD" });
            m
        };
        let parts = [mk(1), mk(2), mk(3), mk(4)];
        let mut fwd = QueryMetrics::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = QueryMetrics::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.counter(Counter::CacheHits), 10);
        assert_eq!(fwd.heap_high_water(), 28);
        assert_eq!(fwd.candidates_by_op(), vec![("PSD", 2), ("SSD", 2)]);
    }
}
