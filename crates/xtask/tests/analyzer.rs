//! End-to-end tests for the token-level analyzer.
//!
//! The fixture corpus under `tests/fixtures/` is the executable
//! specification of the rule set:
//!
//! * `corpus/*.rs` — one file per rule family, each carrying a
//!   `//~ path: <virtual path>` header and `//~ expect: <rule> @ <line>`
//!   annotations. The harness runs the full registry over the file and
//!   requires the diagnostic set to match the annotations **exactly** —
//!   every seeded violation produces its diagnostic, and nothing else
//!   fires.
//! * `lexer/adversarial.rs` — raw strings spanning lines, nested block
//!   comments, and lifetime-vs-char-literal punning, with one live seeded
//!   violation after them; phantom diagnostics or a shifted line anchor
//!   mean the lexer lost track of the source.
//! * `ws_layering`, `ws_waivers`, `ws_waivers_ok` — mini-workspaces for
//!   the cross-crate rules and the waiver ledger, driven through the real
//!   check driver.
//!
//! The `real_workspace_*` tests pin the analyzer against this repository
//! itself: the scan scope (tests/, examples/, crates/*/tests) and a clean
//! end-to-end run.

// Integration test: aborting on malformed fixtures is intentional.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::path::{Path, PathBuf};
use xtask::driver;
use xtask::model::{FileOrigin, SourceFile, Workspace};
use xtask::rules;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Maps a fixture's virtual path to its package name, mirroring the real
/// crate layout.
fn crate_of(path: &str) -> String {
    let Some(rest) = path.strip_prefix("crates/") else {
        return "osd".to_string();
    };
    rest.split('/')
        .next()
        .map_or_else(|| "osd".to_string(), |dir| format!("osd-{dir}"))
}

fn origin_of(path: &str) -> FileOrigin {
    if path.contains("/tests/") || path.starts_with("tests/") {
        FileOrigin::TestDir
    } else if path.contains("/examples/") || path.starts_with("examples/") {
        FileOrigin::Example
    } else {
        FileOrigin::LibSrc
    }
}

/// A sorted `(rule, line)` diagnostic list.
type Diags = Vec<(String, usize)>;

/// Parses `//~ path:` / `//~ expect:` annotations and runs the registry;
/// returns (expected, actual) as sorted `(rule, line)` lists.
fn run_fixture(fixture: &Path) -> (Diags, Diags) {
    let text = fs::read_to_string(fixture).unwrap();
    let mut virtual_path = None;
    let mut expected: Vec<(String, usize)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(p) = line.strip_prefix("//~ path:") {
            virtual_path = Some(p.trim().to_string());
        } else if let Some(e) = line.strip_prefix("//~ expect:") {
            let (rule, lineno) = e.split_once('@').unwrap();
            expected.push((rule.trim().to_string(), lineno.trim().parse().unwrap()));
        }
    }
    let virtual_path = virtual_path.unwrap_or_else(|| panic!("{fixture:?} has no //~ path:"));
    let file = SourceFile::parse(
        PathBuf::from(&virtual_path),
        origin_of(&virtual_path),
        &crate_of(&virtual_path),
        &text,
    );
    let ws = Workspace {
        root: PathBuf::from("."),
        files: vec![file],
        manifests: Vec::new(),
    };
    let mut actual: Vec<(String, usize)> = rules::run_all(&ws)
        .into_iter()
        .map(|v| (v.rule.to_string(), v.line))
        .collect();
    expected.sort();
    actual.sort();
    (expected, actual)
}

#[test]
fn corpus_every_seeded_violation_fires_exactly_once() {
    let dir = fixtures().join("corpus");
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 12,
        "corpus shrank: {} files",
        entries.len()
    );
    let mut rules_covered = std::collections::BTreeSet::new();
    for fixture in entries {
        let (expected, actual) = run_fixture(&fixture);
        assert!(!expected.is_empty(), "{fixture:?} seeds nothing");
        assert_eq!(
            expected, actual,
            "diagnostic mismatch for fixture {fixture:?}"
        );
        for (rule, _) in &expected {
            rules_covered.insert(rule.clone());
        }
    }
    // All nine legacy per-file rules plus the per-file new rules must be
    // exercised by the corpus; the workspace rules have their own
    // mini-workspace fixtures below.
    for rule in [
        "no-partial-cmp-unwrap",
        "no-float-eq-in-kernels",
        "doc-cites-paper",
        "no-println-in-libs",
        "no-panic-allow-in-libs",
        "no-rc-in-core",
        "no-raw-cow-outside-epoch",
        "no-owned-points-in-hot-paths",
        "no-ad-hoc-timing",
        "no-alloc-in-kernels",
        "determinism",
        "obs-feature-purity",
        "no-warm-bypass",
    ] {
        assert!(rules_covered.contains(rule), "corpus does not cover {rule}");
    }
}

#[test]
fn lexer_survives_adversarial_source() {
    let fixture = fixtures().join("lexer/adversarial.rs");
    let text = fs::read_to_string(&fixture).unwrap();
    let file = SourceFile::parse(
        PathBuf::from("crates/geom/src/point.rs"),
        FileOrigin::LibSrc,
        "osd-geom",
        &text,
    );
    use xtask::lexer::Kind;
    let raw_strings = file
        .tokens
        .iter()
        .filter(|t| t.kind == Kind::RawStr)
        .count();
    assert_eq!(raw_strings, 1, "the multi-line raw string is one token");
    assert!(
        file.tokens
            .iter()
            .any(|t| t.kind == Kind::BlockComment && t.text.contains("nested")),
        "the nested block comment is one token"
    );
    assert!(file.tokens.iter().any(|t| t.kind == Kind::Lifetime));
    assert!(file.tokens.iter().any(|t| t.kind == Kind::Char));
    // And the seeded violation after all of it fires exactly once, at the
    // right line.
    let (expected, actual) = run_fixture(&fixture);
    assert_eq!(expected, actual, "adversarial fixture diagnostics");
}

#[test]
fn ws_layering_fixture_flags_inverted_edge_and_undeclared_import() {
    let report = driver::run_check_at(&fixtures().join("ws_layering"), "2026-08-08").unwrap();
    let got: Vec<(String, usize, &str)> = report
        .diagnostics
        .iter()
        .map(|v| (v.path.clone(), v.line, v.rule))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/geom/Cargo.toml".to_string(), 5, "crate-layering"),
            ("crates/geom/src/lib.rs".to_string(), 2, "crate-layering"),
        ],
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn ws_waivers_fixture_fails_on_expired_and_unused_entries() {
    let report = driver::run_check_at(&fixtures().join("ws_waivers"), "2026-08-08").unwrap();
    assert!(!report.ok());
    assert_eq!(report.waivers_total, 2);
    assert_eq!(report.waivers_used, 0);
    let rules_hit: Vec<&str> = report.diagnostics.iter().map(|v| v.rule).collect();
    assert_eq!(
        rules_hit,
        vec!["no-println-in-libs", "waiver-ledger", "waiver-ledger"],
        "{:#?}",
        report.diagnostics
    );
    assert!(report.diagnostics.iter().any(|v| v.msg.contains("expired")));
    assert!(report
        .diagnostics
        .iter()
        .any(|v| v.msg.contains("suppresses nothing")));
}

#[test]
fn ws_waivers_ok_fixture_passes_with_a_used_waiver() {
    let report = driver::run_check_at(&fixtures().join("ws_waivers_ok"), "2026-08-08").unwrap();
    assert!(report.ok(), "{:#?}", report.diagnostics);
    assert_eq!(report.waivers_total, 1);
    assert_eq!(report.waivers_used, 1);
}

#[test]
fn real_workspace_scan_scope_covers_tests_and_examples() {
    let ws = Workspace::load(&repo_root()).unwrap();
    let paths: Vec<String> = ws
        .files
        .iter()
        .map(|f| f.path.display().to_string())
        .collect();
    for must in [
        "src/lib.rs",
        "tests/pipeline.rs",
        "examples/quickstart.rs",
        "crates/core/tests/obs_purity.rs",
        "crates/geom/src/dominance.rs",
        "crates/rtree/tests/rtree_tests.rs",
    ] {
        assert!(paths.iter().any(|p| p == must), "scan misses {must}");
    }
    assert!(
        !paths.iter().any(|p| p.starts_with("crates/xtask")),
        "the analyzer's own crate (fixture corpus!) must not be scanned"
    );
    assert!(
        ws.files.len() >= 100,
        "scan scope shrank: only {} files",
        ws.files.len()
    );
    assert_eq!(ws.manifests.len(), 12, "one manifest per scanned package");
}

#[test]
fn real_workspace_passes_the_full_check() {
    let report = driver::run_check(&repo_root()).unwrap();
    assert!(
        report.ok(),
        "the repository violates its own rules:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
