use osd_core::QueryEngine;
use osd_rtree::Tree;
