fn noisy() {
    println!("x");
}
