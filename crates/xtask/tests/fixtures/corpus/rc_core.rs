//~ path: crates/core/src/cache.rs
type Shared = Rc<[f64]>;

//~ expect: no-rc-in-core @ 2
