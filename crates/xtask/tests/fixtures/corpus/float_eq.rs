//~ path: crates/core/src/nnc.rs
struct H {
    key: f64,
}
fn heap_eq(a: &H, b: &H) -> bool {
    a.key
        == b.key
}

//~ expect: no-float-eq-in-kernels @ 7
