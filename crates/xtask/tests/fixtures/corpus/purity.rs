//~ path: crates/core/src/engine.rs
#[cfg(feature = "obs")]
fn probe(state: &mut SearchState) {
    state.pruned += 1;
}
#[cfg(feature = "obs")]
fn peek(q: &Query) -> f64 {
    osd_geom::dist(q.a, q.b)
}

//~ expect: obs-feature-purity @ 4
//~ expect: obs-feature-purity @ 8
