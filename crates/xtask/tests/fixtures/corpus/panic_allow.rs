//~ path: crates/rtree/src/lib.rs
#![allow(
    clippy::module_name_repetitions,
    clippy::unwrap_used,
)]

//~ expect: no-panic-allow-in-libs @ 2
