//~ path: crates/core/src/ops/psd.rs
/// Setup may allocate freely (Algorithm 2 preamble).
pub fn setup() -> Vec<f64> {
    Vec::with_capacity(8)
}
// alloc-free: begin
/// The exact-network inner loop (Algorithm 2).
pub fn inner(xs: &[f64], out: &mut Vec<f64>) {
    out.extend(xs.iter().copied());
    let _bad = vec![0.0; 4];
}
// alloc-free: end

//~ expect: no-alloc-in-kernels @ 10
