//~ path: crates/uncertain/src/store.rs
pub fn splice(store: &mut Arc<InstanceStore>, x: f64) {
    Arc::make_mut(store).push(x);
}

pub fn clone_is_fine(store: &Arc<InstanceStore>) -> Arc<InstanceStore> {
    Arc::clone(store)
}

#[cfg(test)]
mod tests {
    fn scratch(store: &mut Arc<InstanceStore>) {
        Arc::make_mut(store);
    }
}

//~ expect: no-raw-cow-outside-epoch @ 3
