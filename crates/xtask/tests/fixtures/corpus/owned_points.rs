//~ path: crates/core/src/knnc.rs
fn gather(xs: &[f64]) -> Vec<f64> {
    xs
        .to_vec
        ()
}

//~ expect: no-owned-points-in-hot-paths @ 4
