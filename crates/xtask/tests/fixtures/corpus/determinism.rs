//~ path: crates/uncertain/src/index.rs
type Index = std::collections::HashMap<u64, usize>;

//~ expect: determinism @ 2
