//~ path: crates/core/src/nnc.rs
fn snapshot_of(groups: Vec<LevelGroups>) -> LevelSnapshot {
    LevelSnapshot { groups }
}

fn bounds_of(query: &PreparedQuery, level: &LevelGroups) -> Vec<BoundPair> {
    crate::cache::build_bounds_whole(query, level)
}

fn through_the_cache(s: &LevelSnapshot) -> usize {
    s.height()
}

#[cfg(test)]
mod tests {
    fn fixtures_may_build_directly() {
        let _s = LevelSnapshot { groups: Vec::new() };
    }
}

//~ expect: no-warm-bypass @ 3
//~ expect: no-warm-bypass @ 7
