//~ path: crates/geom/src/lib.rs
use std::time::Instant;

//~ expect: no-ad-hoc-timing @ 2
