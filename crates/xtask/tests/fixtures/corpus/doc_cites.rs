//~ path: crates/core/src/ops/seeded.rs
pub fn undocumented() {}

/// Vague words, citing nothing.
pub fn vague() {}

macro_rules! bare {
    ($name:ident) => {
        pub fn $name() {}
    };
}
bare!(seeded);

macro_rules! fwd {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub fn $name() {}
    };
}
fwd!(
    /// Nothing cited here either.
    silent
);

//~ expect: doc-cites-paper @ 2
//~ expect: doc-cites-paper @ 5
//~ expect: doc-cites-paper @ 9
//~ expect: doc-cites-paper @ 20
