//~ path: crates/obs/src/trace.rs

// Inside osd-obs the ban is path-shaped: std::time imports and ::now()
// calls are clock access, but naming an `Instant` span kind is not.
use std::time::Instant;

/// Region or point event — the `Instant` variant here must NOT fire the
/// rule (it is a name, not a clock read).
pub enum SpanKind {
    /// An open/close region.
    Region,
    /// A zero-duration point event.
    Instant,
}

pub fn stamp() -> u64 {
    let t = Instant::now();
    let _ = SpanKind::Instant;
    t.elapsed().as_nanos() as u64
}

//~ expect: no-ad-hoc-timing @ 5
//~ expect: no-ad-hoc-timing @ 17
