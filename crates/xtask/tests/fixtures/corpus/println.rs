//~ path: crates/flow/src/lib.rs
fn report(x: f64) {
    println
        !("x = {x}");
}

//~ expect: no-println-in-libs @ 3
