//~ path: crates/geom/src/point.rs
// A chain split across lines and comments: the line-based scanner's
// false-negative class. The token engine sees one adjacent sequence.
fn order(a: f64, b: f64) -> std::cmp::Ordering {
    a
        .partial_cmp(&b)
        // NaN "cannot happen"
        .unwrap()
}

//~ expect: no-partial-cmp-unwrap @ 6
