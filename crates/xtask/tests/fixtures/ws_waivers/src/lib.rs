fn noisy() {
    println!("x");
}
