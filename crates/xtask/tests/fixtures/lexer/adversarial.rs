//~ path: crates/geom/src/point.rs
// Everything inside the raw string below is inert; if the lexer loses
// track of it, phantom diagnostics appear and the line anchors shift.
const RAW: &str = r##"
partial_cmp(&b).unwrap()
println!("not real");
"# not the end either
"##;
/* nested /* block comment */ with println!("x") inside */
const LIFETIMES: fn(&'static str) -> char = |_x: &'static str| 'a';
fn seeded(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

//~ expect: no-partial-cmp-unwrap @ 12
