//! Repo-specific static analysis for the osd workspace.
//!
//! The analyzer lexes every scanned file into a Rust token stream
//! ([`lexer`]), annotates it with structural context — `#[cfg(test)]`,
//! `#[cfg(feature = "obs")]`, `macro_rules!` bodies, module paths
//! ([`model`]) — and runs a registry of per-file and cross-crate rules
//! over it ([`rules`]). Suppressions live in a central waiver ledger
//! ([`waivers`]); [`driver`] ties it together and renders human or JSON
//! reports.
//!
//! Run it as `cargo run -p xtask -- check` (or `explain <rule>` for any
//! rule's intent and waiver policy).

pub mod driver;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod waivers;
