//! A std-only Rust lexer producing the token stream the `check` rules
//! match against.
//!
//! This replaces the line-by-line "blanking" scanner of the first
//! analyzer generation: rules now see real tokens with line numbers, so a
//! `partial_cmp(..)` chained to an `.unwrap()` three lines later, or a
//! `.to_vec(` split across a line break, is one adjacent token sequence
//! instead of an invisible multi-line pattern.
//!
//! The lexer handles the constructs that defeat substring scanners:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth, spanning lines) and
//!   byte/raw-byte strings (`b"…"`, `br#"…"#`);
//! * nested block comments (`/* /* … */ */`) and doc comments (`///`,
//!   `//!`, `/** … */`, `/*! … */`), kept in the stream as tokens so the
//!   doc-citation rule and the `// alloc-free:` region markers still work;
//! * lifetimes vs char literals (`'a` vs `'a'` vs `'\''` vs `b'x'`);
//! * float vs integer literals (`1.0`, `1.`, `1e-3`, `0x1f` is an int,
//!   `1.0f64` keeps its suffix), distinguished in [`Kind`] because the
//!   float-equality rule needs to know;
//! * raw identifiers (`r#match` lexes as the identifier `match`);
//! * multi-character operators (`==`, `!=`, `::`, `..=`, …) as single
//!   punctuation tokens, so `a <= b` can never be mistaken for `a == b`.
//!
//! It is intentionally *not* a full parser: malformed input degrades to
//! single-character punctuation tokens instead of erroring, because the
//! analyzer must never be the thing that breaks the build on code rustc
//! itself accepts (or on a deliberately adversarial test fixture).

/// Token classification. Comments are real tokens (rules that need code
/// structure skip them via [`crate::model::SourceFile::sig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (raw identifiers are unescaped).
    Ident,
    /// A lifetime such as `'a` or `'static` (text keeps the quote).
    Lifetime,
    /// A char or byte-char literal, e.g. `'x'`, `'\''`, `b'0'`.
    Char,
    /// A cooked string or byte-string literal (text keeps the quotes).
    Str,
    /// A raw string literal of any hash depth (text keeps the delimiters).
    RawStr,
    /// An integer literal (including hex/octal/binary forms).
    Int,
    /// A floating-point literal (`1.0`, `1.`, `2e9`, `1f64`).
    Float,
    /// Punctuation; multi-character operators are one token.
    Punct,
    /// A non-doc `//` comment (kept for region markers).
    LineComment,
    /// A non-doc `/* … */` comment.
    BlockComment,
    /// A doc comment: `///`, `//!`, `/** … */` or `/*! … */`.
    DocComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: Kind,
    /// The token text as written (except raw identifiers, which drop the
    /// `r#` escape so rules match the real name).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            Kind::LineComment | Kind::BlockComment | Kind::DocComment
        )
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }
}

/// Lexes `src` into a token stream. Whitespace is dropped; everything
/// else — comments included — becomes a token.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// Multi-character operators, longest first (maximal munch).
const PUNCT3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::", "..", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.cooked_string(self.i);
            } else if c == '\'' {
                self.quote();
            } else if c == 'r' && self.raw_string_hashes(self.i + 1).is_some() {
                let h = self.raw_string_hashes(self.i + 1).unwrap_or(0);
                self.raw_string(self.i, h);
            } else if c == 'r' && self.peek(1) == Some('#') && self.ident_start_at(self.i + 2) {
                self.raw_ident();
            } else if c == 'b' && self.peek(1) == Some('\'') {
                // Byte char literal: consume the `b`, then the quote path.
                let start = self.i;
                self.bump();
                self.char_literal(start);
            } else if c == 'b' && self.peek(1) == Some('"') {
                let start = self.i;
                self.bump();
                self.cooked_string(start);
            } else if c == 'b'
                && self.peek(1) == Some('r')
                && self.raw_string_hashes(self.i + 2).is_some()
            {
                let start = self.i;
                let h = self.raw_string_hashes(self.i + 2).unwrap_or(0);
                self.bump();
                self.raw_string(start, h);
            } else if c.is_alphabetic() || c == '_' {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                self.punct();
            }
        }
        self.out
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if c == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
        c
    }

    fn text_from(&self, start: usize) -> String {
        self.chars[start..self.i].iter().collect()
    }

    fn push_from(&mut self, kind: Kind, start: usize, line: usize) {
        let text = self.text_from(start);
        self.out.push(Token { kind, text, line });
    }

    fn ident_start_at(&self, at: usize) -> bool {
        self.chars
            .get(at)
            .is_some_and(|c| c.is_alphabetic() || *c == '_')
    }

    /// If a raw-string delimiter (`#* "`) starts at `at`, returns the hash
    /// count.
    fn raw_string_hashes(&self, at: usize) -> Option<usize> {
        let mut j = at;
        while self.chars.get(j) == Some(&'#') {
            j += 1;
        }
        (self.chars.get(j) == Some(&'"')).then_some(j - at)
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.i < self.chars.len() && self.chars[self.i] != '\n' {
            self.bump();
        }
        let text = self.text_from(start);
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        let kind = if doc {
            Kind::DocComment
        } else {
            Kind::LineComment
        };
        self.out.push(Token { kind, text, line });
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && self.i < self.chars.len() {
            if self.chars[self.i] == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
            } else if self.chars[self.i] == '/' && self.peek(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
            } else {
                self.bump();
            }
        }
        let text = self.text_from(start);
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
            || text.starts_with("/*!");
        let kind = if doc {
            Kind::DocComment
        } else {
            Kind::BlockComment
        };
        self.out.push(Token { kind, text, line });
    }

    /// A cooked (escapable) string; `start` may point at a `b` prefix.
    fn cooked_string(&mut self, start: usize) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
        self.push_from(Kind::Str, start, line);
    }

    /// A raw string; `start` may point at a `b` prefix, `self.i` is at the
    /// `r`.
    fn raw_string(&mut self, start: usize, hashes: usize) {
        let line = self.line;
        self.bump(); // r
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        while self.i < self.chars.len() {
            if self.chars[self.i] == '"' && self.closes_raw(self.i + 1, hashes) {
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        self.push_from(Kind::RawStr, start, line);
    }

    fn closes_raw(&self, at: usize, hashes: usize) -> bool {
        (0..hashes).all(|k| self.chars.get(at + k) == Some(&'#'))
    }

    fn raw_ident(&mut self) {
        let line = self.line;
        self.bump(); // r
        self.bump(); // #
        let start = self.i;
        while self
            .chars
            .get(self.i)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
        {
            self.bump();
        }
        self.push_from(Kind::Ident, start, line);
    }

    /// Dispatches a bare `'`: lifetime or char literal.
    fn quote(&mut self) {
        // `'a` with no closing quote is a lifetime; `'a'` is a char.
        if self.ident_start_at(self.i + 1) && self.peek(2) != Some('\'') {
            let (start, line) = (self.i, self.line);
            self.bump(); // '
            while self
                .chars
                .get(self.i)
                .is_some_and(|c| c.is_alphanumeric() || *c == '_')
            {
                self.bump();
            }
            self.push_from(Kind::Lifetime, start, line);
        } else {
            self.char_literal(self.i);
        }
    }

    /// A char literal starting at the quote under `self.i`; `start` may
    /// point at a `b` prefix. Tolerant: an unterminated quote becomes a
    /// lone punctuation token.
    fn char_literal(&mut self, start: usize) {
        let line = self.line;
        let reset = self.i;
        self.bump(); // '
        if self.chars.get(self.i) == Some(&'\\') {
            self.bump();
            // Escapes: single char, or `\u{…}`.
            if self.chars.get(self.i) == Some(&'u') {
                while self.i < self.chars.len() && self.chars[self.i] != '}' {
                    self.bump();
                }
            }
            self.bump();
        } else {
            self.bump();
        }
        if self.chars.get(self.i) == Some(&'\'') {
            self.bump();
            self.push_from(Kind::Char, start, line);
        } else {
            // Not a char literal after all — emit the quote alone.
            self.i = reset;
            self.bump();
            self.out.push(Token {
                kind: Kind::Punct,
                text: "'".to_string(),
                line,
            });
        }
    }

    fn ident(&mut self) {
        let (start, line) = (self.i, self.line);
        while self
            .chars
            .get(self.i)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
        {
            self.bump();
        }
        self.push_from(Kind::Ident, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut float = false;
        if self.chars[self.i] == '0'
            && matches!(self.peek(1), Some('x' | 'o' | 'b'))
            && self
                .peek(2)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
            self.bump();
            while self
                .chars
                .get(self.i)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
            {
                self.bump();
            }
            self.push_from(Kind::Int, start, line);
            return;
        }
        while self
            .chars
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || *c == '_')
        {
            self.bump();
        }
        if self.chars.get(self.i) == Some(&'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.bump();
                    while self
                        .chars
                        .get(self.i)
                        .is_some_and(|c| c.is_ascii_digit() || *c == '_')
                    {
                        self.bump();
                    }
                }
                // `1..2` is a range, `1.foo()` a method call; `1.` a float.
                Some('.') => {}
                Some(c) if c.is_alphabetic() || c == '_' => {}
                _ => {
                    float = true;
                    self.bump();
                }
            }
        }
        if matches!(self.chars.get(self.i), Some('e' | 'E')) {
            let (a, b) = (self.peek(1), self.peek(2));
            let exp = matches!(a, Some(c) if c.is_ascii_digit())
                || (matches!(a, Some('+' | '-')) && matches!(b, Some(c) if c.is_ascii_digit()));
            if exp {
                float = true;
                self.bump();
                if matches!(self.chars.get(self.i), Some('+' | '-')) {
                    self.bump();
                }
                while self
                    .chars
                    .get(self.i)
                    .is_some_and(|c| c.is_ascii_digit() || *c == '_')
                {
                    self.bump();
                }
            }
        }
        // Type suffix (`f64`, `u32`, …).
        let suffix_start = self.i;
        while self
            .chars
            .get(self.i)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
        {
            self.bump();
        }
        let suffix: String = self.chars[suffix_start..self.i].iter().collect();
        if suffix.starts_with('f') {
            float = true;
        }
        let kind = if float { Kind::Float } else { Kind::Int };
        self.push_from(kind, start, line);
    }

    fn punct(&mut self) {
        let (start, line) = (self.i, self.line);
        let rest: String = self.chars[self.i..(self.i + 3).min(self.chars.len())]
            .iter()
            .collect();
        let len = if PUNCT3.iter().any(|p| rest.starts_with(p)) {
            3
        } else if PUNCT2.iter().any(|p| rest.starts_with(p)) {
            2
        } else {
            1
        };
        for _ in 0..len {
            self.bump();
        }
        self.push_from(Kind::Punct, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_span_lines() {
        let toks = lex("let s = r#\"a.unwrap()\nstill \"inside\"\"#; x");
        assert!(toks
            .iter()
            .all(|t| !(t.kind == Kind::Ident && t.text == "unwrap")));
        let raw = toks.iter().find(|t| t.kind == Kind::RawStr).map(|t| t.line);
        assert_eq!(raw, Some(1));
        let x = toks.iter().find(|t| t.is_ident("x")).map(|t| t.line);
        assert_eq!(x, Some(2), "line counting continues through the literal");
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner == */ still comment */ let y = 1;");
        assert_eq!(toks[0].kind, Kind::BlockComment);
        assert!(toks.iter().any(|t| t.is_ident("let")));
        assert!(!toks.iter().any(|t| t.is_punct("==")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = '\"'; let d = 'a'; let e = b'x'; }");
        assert!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count() == 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 3);
        // The '"' char literal must not open a string.
        assert!(!toks.iter().any(|(k, _)| *k == Kind::Str));
    }

    #[test]
    fn float_vs_int_literals() {
        let t = kinds("1 1.0 1. 1e-3 0x1f 1..2 1.0f64 3usize");
        let f: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == Kind::Float)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(f, vec!["1.0", "1.", "1e-3", "1.0f64"]);
        let ints: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == Kind::Int)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, vec!["1", "0x1f", "1", "2", "3usize"]);
    }

    #[test]
    fn operators_are_single_tokens() {
        let t = kinds("a <= b == c != d ..= e :: f");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, vec!["<=", "==", "!=", "..=", "::"]);
    }

    #[test]
    fn doc_comments_are_classified() {
        let toks = lex("/// outer\n//! inner\n//// not doc\n// plain\n/** block */\nfn x() {}");
        let docs = toks.iter().filter(|t| t.kind == Kind::DocComment).count();
        assert_eq!(docs, 3);
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::LineComment).count(),
            2
        );
    }

    #[test]
    fn raw_identifiers_unescape() {
        let toks = lex("let r#match = 1;");
        assert!(toks.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn strings_hide_operators_and_macros() {
        let toks = lex("let s = \"println!(1 == 2)\"; let t = b\"x != y\";");
        assert!(!toks.iter().any(|t| t.is_ident("println")));
        assert!(!toks.iter().any(|t| t.is_punct("==") || t.is_punct("!=")));
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 2);
    }

    #[test]
    fn unterminated_quote_degrades_gracefully() {
        let toks = lex("let x = 1; ' let y = 2;");
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }
}
