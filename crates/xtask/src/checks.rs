//! The `check` rules.
//!
//! Each rule is a pure function over a scanned [`SourceFile`]; `run_all`
//! walks the library-crate source trees and applies the rules that match
//! each file's location. Test modules (`#[cfg(test)]`) are exempt
//! throughout — the rules police shipping code, not test scaffolding.

use crate::scan::{rust_files, SourceFile};
use std::fmt;
use std::io;
use std::path::Path;

/// Source roots of the *library* crates (relative to the repo root). The
/// bench/cli leaves, examples, integration tests and the vendored shims
/// are intentionally not listed.
const LIB_SRC_DIRS: &[&str] = &[
    "src",
    "crates/geom/src",
    "crates/uncertain/src",
    "crates/flow/src",
    "crates/rtree/src",
    "crates/nnfuncs/src",
    "crates/core/src",
    "crates/nncore/src",
    "crates/datagen/src",
    "crates/obs/src",
];

/// Crates under the `no-ad-hoc-timing` rule: every monotonic-clock read in
/// the query pipeline goes through `osd-obs` (`Stopwatch`, `PhaseTimer`,
/// `Span`), so the instrumented phase taxonomy is the single source of
/// timing truth and the obs-disabled build stays free of stray clock
/// reads. `crates/obs/src` is the sanctioned implementation and exempt;
/// bench/cli leaves time their own harness loops freely. `Duration` (a
/// plain data type) is allowed — only clock *sources* are banned.
const NO_TIMING_DIRS: &[&str] = &["crates/core/src", "crates/geom/src", "crates/rtree/src"];

/// The dominance kernels where exact float comparison is banned outright.
const KERNEL_DIRS: &[&str] = &["crates/core/src/ops"];
const KERNEL_FILES: &[&str] = &[
    "crates/geom/src/dominance.rs",
    "crates/core/src/nnc.rs",
    "crates/core/src/knnc.rs",
];

/// The crate that must stay `Send + Sync`: single-threaded shared-ownership
/// types (`Rc`, `RefCell`) would silently break the parallel batch executor.
const THREAD_SAFE_DIR: &str = "crates/core/src";

/// Hot query paths that must read instance data as borrowed slices out of
/// the columnar `InstanceStore`. Materialising owned point sets here would
/// silently reintroduce the per-check allocations the flat layout removed.
const HOT_PATH_DIRS: &[&str] = &["crates/core/src/ops"];
const HOT_PATH_FILES: &[&str] = &["crates/core/src/nnc.rs", "crates/core/src/knnc.rs"];

/// Files whose whole body is an allocation-free kernel: every non-test
/// line is subject to the `no-alloc-in-kernels` rule.
const ALLOC_FREE_FILES: &[&str] = &["crates/geom/src/kernels.rs"];

/// Files with `// alloc-free: begin` / `// alloc-free: end` marker regions:
/// only the marked regions are subject to the rule (the scalar reference
/// paths next to them may allocate freely).
const ALLOC_FREE_REGION_FILES: &[&str] = &["crates/core/src/ops/psd.rs"];

/// Directory whose `pub fn`s must cite the paper.
const OPS_DIR: &str = "crates/core/src/ops";

/// Doc-comment substrings accepted as a paper citation.
const CITATION_KEYWORDS: &[&str] = &[
    "Definition",
    "Theorem",
    "Lemma",
    "Corollary",
    "Algorithm",
    "Remark",
    "Figure",
    "Section",
    "§",
];

/// A single rule violation.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the repo root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Runs every rule over the library source trees under `root`.
pub fn run_all(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for dir in LIB_SRC_DIRS {
        let abs_dir = root.join(dir);
        if !abs_dir.is_dir() {
            continue;
        }
        for (abs, rel) in rust_files(root, &abs_dir)? {
            let file = SourceFile::load(&abs, rel)?;
            check_file(&file, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

/// Applies the rules that match `file`'s location.
pub fn check_file(file: &SourceFile, out: &mut Vec<Violation>) {
    no_partial_cmp_unwrap(file, out);
    no_println_in_libs(file, out);
    no_panic_allow_in_libs(file, out);
    if is_kernel(&file.path) {
        no_float_eq_in_kernels(file, out);
    }
    if file.path.starts_with(OPS_DIR) {
        doc_cites_paper(file, out);
    }
    if file.path.starts_with(THREAD_SAFE_DIR) {
        no_rc_in_core(file, out);
    }
    if is_hot_path(&file.path) {
        no_owned_points_in_hot_paths(file, out);
    }
    if NO_TIMING_DIRS.iter().any(|d| file.path.starts_with(d)) {
        no_ad_hoc_timing(file, out);
    }
    if ALLOC_FREE_FILES.iter().any(|f| Path::new(f) == file.path) {
        no_alloc_in_kernels(file, true, out);
    }
    if ALLOC_FREE_REGION_FILES
        .iter()
        .any(|f| Path::new(f) == file.path)
    {
        no_alloc_in_kernels(file, false, out);
    }
}

fn is_kernel(path: &Path) -> bool {
    KERNEL_DIRS.iter().any(|d| path.starts_with(d))
        || KERNEL_FILES.iter().any(|f| Path::new(f) == path)
}

fn is_hot_path(path: &Path) -> bool {
    HOT_PATH_DIRS.iter().any(|d| path.starts_with(d))
        || HOT_PATH_FILES.iter().any(|f| Path::new(f) == path)
}

fn push(out: &mut Vec<Violation>, file: &SourceFile, line: usize, rule: &'static str, msg: String) {
    out.push(Violation {
        path: file.path.display().to_string(),
        line,
        rule,
        msg,
    });
}

/// Rule 1: `partial_cmp(..)` must not be unwrapped — NaN makes it `None`
/// and the panic surfaces far from the data that caused it. Distances are
/// ordered with `f64::total_cmp` instead.
fn no_partial_cmp_unwrap(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(at) = line.code.find("partial_cmp") else {
            continue;
        };
        let after = &line.code[at..];
        let mut offending = after.contains(".unwrap()") || after.contains(".expect(");
        if !offending {
            // Chained on the next code line: `.partial_cmp(b)\n  .unwrap()`.
            if let Some(next) = file.lines[i + 1..]
                .iter()
                .find(|l| !l.code.trim().is_empty())
            {
                let t = next.code.trim_start();
                offending = t.starts_with(".unwrap()") || t.starts_with(".expect(");
            }
        }
        if offending {
            push(
                out,
                file,
                line.num,
                "no-partial-cmp-unwrap",
                "partial_cmp(..).unwrap()/expect(..) panics on NaN; order distances with f64::total_cmp".into(),
            );
        }
    }
}

/// Rule 2: no `==` / `!=` on floating-point values in the dominance
/// kernels. Detection is heuristic (no type information): a comparison is
/// flagged when either operand textually looks float-valued — a float
/// literal, an `f64`/`f32` mention, or a distance-producing call.
fn no_float_eq_in_kernels(file: &SourceFile, out: &mut Vec<Violation>) {
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for (at, op) in eq_operators(&line.code) {
            let (lhs, rhs) = operands(&line.code, at, op.len());
            if looks_float(lhs) || looks_float(rhs) {
                push(
                    out,
                    file,
                    line.num,
                    "no-float-eq-in-kernels",
                    format!(
                        "`{op}` on a floating-point value in a dominance kernel; use total_cmp or an epsilon"
                    ),
                );
            }
        }
    }
}

/// Finds `==` / `!=` token positions in blanked code.
fn eq_operators(code: &str) -> Vec<(usize, &'static str)> {
    let b = code.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        let pair = &b[i..i + 2];
        if pair == b"==" {
            let prev_ok = i == 0 || !matches!(b[i - 1], b'<' | b'>' | b'!' | b'=');
            let next_ok = i + 2 >= b.len() || b[i + 2] != b'=';
            if prev_ok && next_ok {
                found.push((i, "=="));
            }
            i += 2;
        } else if pair == b"!=" {
            let next_ok = i + 2 >= b.len() || b[i + 2] != b'=';
            if next_ok {
                found.push((i, "!="));
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    found
}

/// Extracts the textual operands around the comparison at `at`.
fn operands(code: &str, at: usize, op_len: usize) -> (&str, &str) {
    const STOPS: &[char] = &[',', ';', '(', ')', '{', '}', '&', '|'];
    let left = &code[..at];
    let lstart = left.rfind(STOPS).map_or(0, |p| p + 1);
    let right = &code[at + op_len..];
    let rend = right.find(STOPS).unwrap_or(right.len());
    (left[lstart..].trim(), right[..rend].trim())
}

/// Whether an operand snippet textually looks like an `f64` value.
fn looks_float(snippet: &str) -> bool {
    const MARKERS: &[&str] = &[
        "f64",
        "f32",
        ".dist(",
        ".volume(",
        ".min_dist",
        ".max_dist",
        ".coord(",
        ".prob",
        "d_min",
        "d_max",
        ".mean(",
        ".quantile(",
        ".cdf(",
        ".key",
    ];
    if MARKERS.iter().any(|m| snippet.contains(m)) {
        return true;
    }
    // A float literal: digit '.' followed by a digit or a non-identifier.
    let b = snippet.as_bytes();
    for i in 1..b.len() {
        if b[i] == b'.'
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1)
                .is_none_or(|c| !c.is_ascii_alphabetic() && *c != b'.')
        {
            return true;
        }
    }
    false
}

/// Rule 3: every `pub fn` in `core::ops` carries a doc comment that cites
/// the paper construct it implements.
fn doc_cites_paper(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(name) = pub_fn_name(&line.code) else {
            continue;
        };
        if name.starts_with('$') {
            // `pub fn $name` inside a macro definition: the doc arrives at
            // the expansion site, which this textual pass cannot attach.
            continue;
        }
        let doc = collect_doc(&file.lines[..i]);
        if doc.is_empty() {
            push(
                out,
                file,
                line.num,
                "doc-cites-paper",
                format!("`pub fn {name}` in core::ops has no doc comment"),
            );
        } else if !CITATION_KEYWORDS.iter().any(|k| doc.contains(k)) {
            push(
                out,
                file,
                line.num,
                "doc-cites-paper",
                format!(
                    "doc comment of `pub fn {name}` cites no paper construct (Definition/Theorem/§ ...)"
                ),
            );
        }
    }
}

/// If `code` declares a `pub fn`, returns the function name.
fn pub_fn_name(code: &str) -> Option<&str> {
    let t = code.trim_start();
    let rest = t.strip_prefix("pub ")?;
    // Skip qualifiers: `const`, `async`, `unsafe`, `extern "C"` (blanked).
    let mut rest = rest.trim_start();
    for q in ["const ", "async ", "unsafe ", "extern "] {
        if let Some(r) = rest.strip_prefix(q) {
            rest = r.trim_start();
        }
    }
    let rest = rest.strip_prefix("fn ")?;
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_' && c != '$')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Collects the doc-comment text immediately above a declaration,
/// skipping interleaved attributes.
fn collect_doc(above: &[crate::scan::Line]) -> String {
    let mut doc_lines: Vec<&str> = Vec::new();
    for line in above.iter().rev() {
        let t = line.raw.trim_start();
        if line.doc {
            doc_lines.push(t);
        } else if t.starts_with("#[") || t.starts_with("#!") {
            continue;
        } else {
            break;
        }
    }
    doc_lines.reverse();
    doc_lines.join("\n")
}

/// Rule 4: library crates never print — reporting belongs to bench/cli.
fn no_println_in_libs(file: &SourceFile, out: &mut Vec<Violation>) {
    const BANNED: &[&str] = &["println!", "print!", "eprintln!", "eprint!"];
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        if let Some(m) = BANNED.iter().find(|m| line.code.contains(*m)) {
            push(
                out,
                file,
                line.num,
                "no-println-in-libs",
                format!("`{m}` in a library crate; return data and let bench/cli report it"),
            );
        }
    }
}

/// Rule 5: only the bench/cli/example leaves may opt out of the workspace
/// panic-family lints; a crate-level `#![allow(..)]` of them in a library
/// crate defeats the whole gate.
fn no_panic_allow_in_libs(file: &SourceFile, out: &mut Vec<Violation>) {
    const GATED: &[&str] = &[
        "clippy::unwrap_used",
        "clippy::expect_used",
        "clippy::panic",
    ];
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        if !line.code.contains("#![allow(") {
            continue;
        }
        if let Some(l) = GATED.iter().find(|l| {
            // `clippy::panic` must not also match `clippy::panic_in_result_fn`-style names.
            line.code
                .split(|c: char| !c.is_alphanumeric() && c != '_' && c != ':')
                .any(|tok| tok == **l)
        }) {
            push(
                out,
                file,
                line.num,
                "no-panic-allow-in-libs",
                format!("crate-level `#![allow({l})]` in a library crate; only bench/cli leaves may opt out"),
            );
        }
    }
}

/// Rule 6: `osd-core` is the crate the parallel batch executor shares
/// across worker threads; `Rc` (or anything from `std::rc`) is `!Send` and
/// would be caught only at the far-away `QueryEngine` compile-time
/// assertions. Ban it at the source: shared ownership in core uses `Arc`.
fn no_rc_in_core(file: &SourceFile, out: &mut Vec<Violation>) {
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let uses_rc_path = line.code.contains("std::rc");
        let bare_rc = line
            .code
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|tok| tok == "Rc");
        if uses_rc_path || bare_rc {
            push(
                out,
                file,
                line.num,
                "no-rc-in-core",
                "`Rc`/`std::rc` in osd-core; the batch executor shares this crate across threads — use `Arc`".into(),
            );
        }
    }
}

/// Rule 7: the dominance kernels and the NNC/k-NNC traversals operate on
/// borrowed rows of the columnar instance store. Gathering owned point sets
/// (`.points()`) or cloning borrowed slices (`.to_vec(`) inside these files
/// allocates per dominance check and defeats the flat SoA layout.
fn no_owned_points_in_hot_paths(file: &SourceFile, out: &mut Vec<Violation>) {
    const BANNED: &[(&str, &str)] = &[
        (".points()", "gathers an owned copy of the instance points"),
        (
            ".to_vec(",
            "clones a borrowed slice into a fresh allocation",
        ),
    ];
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for (pat, what) in BANNED {
            if line.code.contains(pat) {
                push(
                    out,
                    file,
                    line.num,
                    "no-owned-points-in-hot-paths",
                    format!(
                        "`{pat}` in a hot query path {what}; borrow rows from the InstanceStore instead"
                    ),
                );
            }
        }
    }
}

/// Rule 8: no raw clock reads in the instrumented library crates —
/// `Instant` / `SystemTime` tokens (and `std::time::Instant` paths) are
/// banned outside `osd-obs`. Timing goes through `osd_obs::Stopwatch` for
/// always-on result timestamps and `PhaseTimer`/`Span` for profile data,
/// which compile to no-ops when the `enabled` feature is off.
fn no_ad_hoc_timing(file: &SourceFile, out: &mut Vec<Violation>) {
    const CLOCKS: &[&str] = &["Instant", "SystemTime"];
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let clock = line
            .code
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .find(|tok| CLOCKS.contains(tok));
        if let Some(c) = clock {
            push(
                out,
                file,
                line.num,
                "no-ad-hoc-timing",
                format!(
                    "`{c}` in an instrumented library crate; time through osd_obs \
                     (Stopwatch / PhaseTimer / Span) so the obs-off build stays clock-free"
                ),
            );
        }
    }
}

/// Rule 9: the blocked distance kernels and the exact-network dominance
/// loop are written to allocate nothing per call — that is the whole point
/// of the scratch-buffer design. Allocation idioms (`Vec::new`, `vec![`,
/// `.to_vec(`, `.collect(`) inside these regions silently reintroduce the
/// per-check heap traffic. `whole_file` applies the rule to every non-test
/// line; otherwise only `// alloc-free: begin` / `end` marker regions are
/// checked (markers are read from the raw line — they are comments, which
/// the blanked `code` view erases).
fn no_alloc_in_kernels(file: &SourceFile, whole_file: bool, out: &mut Vec<Violation>) {
    const BANNED: &[&str] = &["Vec::new", "vec![", ".to_vec(", ".collect::<", ".collect("];
    let mut in_region = whole_file;
    for line in &file.lines {
        if !whole_file {
            let marker = line.raw.trim();
            if marker == "// alloc-free: begin" {
                in_region = true;
                continue;
            }
            if marker == "// alloc-free: end" {
                in_region = false;
                continue;
            }
        }
        if !in_region || line.in_test {
            continue;
        }
        for pat in BANNED {
            if line.code.contains(pat) {
                push(
                    out,
                    file,
                    line.num,
                    "no-alloc-in-kernels",
                    format!(
                        "`{pat}` inside an allocation-free kernel region; reuse the caller's scratch buffers instead"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check_src(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::parse(PathBuf::from(path), src);
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn flags_partial_cmp_unwrap() {
        let v = check_src(
            "crates/geom/src/point.rs",
            "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n",
        );
        assert_eq!(rules(&v), vec!["no-partial-cmp-unwrap"]);
    }

    #[test]
    fn flags_chained_partial_cmp_expect() {
        let v = check_src(
            "crates/geom/src/point.rs",
            "fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b)\n        .expect(\"no NaN\");\n}\n",
        );
        assert_eq!(rules(&v), vec!["no-partial-cmp-unwrap"]);
    }

    #[test]
    fn accepts_manual_ord_impls() {
        let v = check_src(
            "crates/core/src/nnc.rs",
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n    Some(self.cmp(other))\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_float_eq_in_kernel_only() {
        let src = "fn f(d: f64) -> bool { d == 0.0 }\n";
        assert_eq!(
            rules(&check_src("crates/core/src/ops/ssd.rs", src)),
            vec!["no-float-eq-in-kernels"]
        );
        // Same code outside a kernel path: the rule does not apply.
        assert!(check_src("crates/uncertain/src/object.rs", src).is_empty());
    }

    #[test]
    fn integer_eq_in_kernel_is_fine() {
        let v = check_src(
            "crates/core/src/ops/level.rs",
            "/// Per Theorem 7.\npub fn f(a: usize, b: usize) -> bool { a == b }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_undocumented_ops_pub_fn() {
        let v = check_src("crates/core/src/ops/mod.rs", "pub fn naked() {}\n");
        assert_eq!(rules(&v), vec!["doc-cites-paper"]);
    }

    #[test]
    fn flags_citation_free_doc() {
        let v = check_src(
            "crates/core/src/ops/mod.rs",
            "/// Does things.\npub fn vague() {}\n",
        );
        assert_eq!(rules(&v), vec!["doc-cites-paper"]);
        assert!(v[0].msg.contains("cites no paper construct"));
    }

    #[test]
    fn accepts_cited_doc_with_attributes() {
        let v = check_src(
            "crates/core/src/ops/mod.rs",
            "/// Implements Definition 5.\n#[inline]\npub fn cited() {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_println_but_not_in_strings_or_tests() {
        let v = check_src("crates/flow/src/lib.rs", "fn f() { println!(\"x\"); }\n");
        assert_eq!(rules(&v), vec!["no-println-in-libs"]);
        let ok = "fn f() { let _ = \"println!\"; }\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"debug\"); }\n}\n";
        assert!(check_src("crates/flow/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn flags_crate_level_panic_allow() {
        let v = check_src(
            "crates/rtree/src/lib.rs",
            "#![allow(clippy::unwrap_used)]\nfn f() {}\n",
        );
        assert_eq!(rules(&v), vec!["no-panic-allow-in-libs"]);
        // Unrelated allows are fine.
        assert!(check_src(
            "crates/rtree/src/lib.rs",
            "#![allow(clippy::module_name_repetitions)]\nfn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn nnc_and_knnc_are_kernels_now() {
        let src = "fn f(item: &HeapItem) -> bool { item.key == 0.0 }\n";
        assert_eq!(
            rules(&check_src("crates/core/src/nnc.rs", src)),
            vec!["no-float-eq-in-kernels"]
        );
        assert_eq!(
            rules(&check_src("crates/core/src/knnc.rs", src)),
            vec!["no-float-eq-in-kernels"]
        );
        // The `.key` marker alone triggers, even without a literal.
        let v = check_src(
            "crates/core/src/nnc.rs",
            "fn g(a: &HeapItem, b: &HeapItem) -> bool { a.key == b.key }\n",
        );
        assert_eq!(rules(&v), vec!["no-float-eq-in-kernels"]);
    }

    #[test]
    fn flags_rc_in_core_but_not_arc() {
        let v = check_src(
            "crates/core/src/cache.rs",
            "use std::rc::Rc;\nfn f() { let _x: Rc<u8> = Rc::new(1); }\n",
        );
        assert!(rules(&v).iter().all(|r| *r == "no-rc-in-core"));
        assert_eq!(v.len(), 2);
        // `Arc` must not false-positive, nor should identifiers containing
        // the letters (e.g. `Rcu`, `grpc`).
        assert!(check_src(
            "crates/core/src/cache.rs",
            "use std::sync::Arc;\nfn f() { let _x: Arc<u8> = Arc::new(1); }\nfn g(marc: usize) -> usize { marc }\n",
        )
        .is_empty());
        // Outside osd-core the rule does not apply.
        assert!(check_src("crates/rtree/src/lib.rs", "use std::rc::Rc;\n").is_empty());
        // Test modules are exempt, as everywhere.
        assert!(check_src(
            "crates/core/src/cache.rs",
            "#[cfg(test)]\nmod tests {\n    use std::rc::Rc;\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn flags_owned_points_in_hot_paths() {
        let gather =
            "/// Theorem 12 helper.\npub fn f(q: &UncertainObject) { let _ = q.points(); }\n";
        assert_eq!(
            rules(&check_src("crates/core/src/ops/psd.rs", gather)),
            vec!["no-owned-points-in-hot-paths"]
        );
        let clone = "fn g(v: &[f64]) -> Vec<f64> { v.to_vec() }\n";
        assert_eq!(
            rules(&check_src("crates/core/src/nnc.rs", clone)),
            vec!["no-owned-points-in-hot-paths"]
        );
        assert_eq!(
            rules(&check_src("crates/core/src/knnc.rs", clone)),
            vec!["no-owned-points-in-hot-paths"]
        );
        // Outside the hot paths both are allowed.
        assert!(check_src("crates/core/src/cache.rs", clone).is_empty());
        // Borrowing accessors with similar names do not trip the rule.
        let ok = "fn h(q: &PreparedQuery) { let _ = q.instance_points(); let _ = q.eval_points(true); }\n";
        assert!(check_src("crates/core/src/nnc.rs", ok).is_empty());
        // Test modules are exempt, as everywhere.
        assert!(check_src(
            "crates/core/src/ops/psd.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(v: &[f64]) { let _ = v.to_vec(); }\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn flags_ad_hoc_timing_in_instrumented_crates() {
        let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n";
        let v = check_src("crates/core/src/nnc.rs", src);
        assert!(rules(&v).contains(&"no-ad-hoc-timing"), "{v:?}");
        assert_eq!(
            rules(&check_src(
                "crates/rtree/src/query.rs",
                "fn f() { let _ = std::time::Instant::now(); }\n"
            )),
            vec!["no-ad-hoc-timing"]
        );
        assert_eq!(
            rules(&check_src(
                "crates/geom/src/point.rs",
                "fn f() { let _ = std::time::SystemTime::now(); }\n"
            )),
            vec!["no-ad-hoc-timing"]
        );
        // `Duration` is a data type, not a clock source.
        assert!(check_src("crates/core/src/nnc.rs", "use std::time::Duration;\n").is_empty());
        // osd-obs is the sanctioned home of the clock...
        assert!(check_src("crates/obs/src/span.rs", "use std::time::Instant;\n").is_empty());
        // ...and the bench/cli leaves are outside the rule entirely.
        assert!(check_src("crates/bench/src/runner.rs", "use std::time::Instant;\n").is_empty());
        // Test modules are exempt, as everywhere.
        assert!(check_src(
            "crates/core/src/nnc.rs",
            "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n",
        )
        .is_empty());
        // Identifiers merely containing the letters do not trip it.
        assert!(check_src("crates/core/src/nnc.rs", "fn g(instant_k: u64) {}\n").is_empty());
    }

    #[test]
    fn flags_alloc_in_whole_file_kernels() {
        for (src, pat) in [
            ("pub fn f() { let v: Vec<f64> = Vec::new(); }\n", "Vec::new"),
            ("pub fn f() { let _v = vec![0.0; 4]; }\n", "vec!["),
            ("pub fn f(r: &[f64]) { let _ = r.to_vec(); }\n", ".to_vec("),
            (
                "pub fn f(r: &[f64]) { let _: Vec<u64> = r.iter().map(|x| x.to_bits()).collect(); }\n",
                ".collect(",
            ),
        ] {
            let v = check_src("crates/geom/src/kernels.rs", src);
            assert!(
                rules(&v).contains(&"no-alloc-in-kernels"),
                "{pat}: {v:?}"
            );
        }
        // Scratch reuse (clear + resize + push) is exactly what the rule
        // wants to see.
        assert!(check_src(
            "crates/geom/src/kernels.rs",
            "pub fn f(out: &mut Vec<f64>) { out.clear(); out.resize(4, 0.0); out.push(1.0); }\n",
        )
        .is_empty());
        // Test modules are exempt, as everywhere.
        assert!(check_src(
            "crates/geom/src/kernels.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = vec![1.0]; }\n}\n",
        )
        .is_empty());
        // Other geom files are not under the rule.
        assert!(check_src(
            "crates/geom/src/point.rs",
            "fn f() { let _ = vec![1.0]; }\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_alloc_only_inside_psd_marker_regions() {
        let src = "\
fn scalar_path() { let _edges: Vec<(usize, usize)> = Vec::new(); }
// alloc-free: begin
fn kernel_path(buf: &mut Vec<f64>) { buf.clear(); }
fn leaky_kernel() { let _ = vec![0.0; 8]; }
// alloc-free: end
fn other_scalar() { let _ = vec![1.0]; }
";
        let v = check_src("crates/core/src/ops/psd.rs", src);
        let alloc: Vec<_> = v
            .iter()
            .filter(|x| x.rule == "no-alloc-in-kernels")
            .collect();
        assert_eq!(alloc.len(), 1, "{v:?}");
        assert_eq!(alloc[0].line, 4, "only the in-region vec! is flagged");
        // The real psd.rs markers are comments: the blanked code view must
        // not hide them from the region tracker.
        assert!(alloc[0].msg.contains("vec!["));
    }

    #[test]
    fn pub_fn_name_parses_qualifiers() {
        assert_eq!(pub_fn_name("pub fn foo(a: u8) {"), Some("foo"));
        assert_eq!(pub_fn_name("    pub const fn bar() {"), Some("bar"));
        assert_eq!(pub_fn_name("pub fn $name(u: &U) {"), Some("$name"));
        assert_eq!(pub_fn_name("pub struct S;"), None);
        assert_eq!(pub_fn_name("fn private() {}"), None);
    }
}
