//! A minimal source model for the `check` rules.
//!
//! Rust files are loaded line by line with comments and string-literal
//! *contents* blanked out (lengths preserved, so column positions stay
//! meaningful), and each line is classified as doc-comment / test-module
//! code / ordinary code. The rules in [`crate::checks`] then work on the
//! blanked `code` text, which makes naive substring matching sound: a
//! `println!` inside a string literal or a comment can no longer match.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One physical source line, pre-processed for rule matching.
#[derive(Debug)]
pub struct Line {
    /// 1-based line number.
    pub num: usize,
    /// The line with comments and string contents replaced by spaces.
    pub code: String,
    /// The raw line as written.
    pub raw: String,
    /// Whether the raw line is a `///` or `//!` doc comment.
    pub doc: bool,
    /// Whether the line sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scan root.
    pub path: PathBuf,
    /// The pre-processed lines.
    pub lines: Vec<Line>,
}

/// Lexer state carried across lines while blanking.
enum State {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Loads and pre-processes one file. `rel` is the path recorded in
    /// diagnostics.
    pub fn load(abs: &Path, rel: PathBuf) -> io::Result<SourceFile> {
        let text = fs::read_to_string(abs)?;
        Ok(SourceFile::parse(rel, &text))
    }

    /// Parses source text (separated from `load` for unit testing).
    pub fn parse(rel: PathBuf, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut state = State::Code;
        for (i, raw) in text.lines().enumerate() {
            let (code, next) = blank_line(raw, state);
            state = next;
            let trimmed = raw.trim_start();
            let doc = trimmed.starts_with("///") || trimmed.starts_with("//!");
            lines.push(Line {
                num: i + 1,
                code,
                raw: raw.to_string(),
                doc,
                in_test: false,
            });
        }
        mark_test_regions(&mut lines);
        SourceFile { path: rel, lines }
    }
}

/// Blanks comments and string contents in one line, threading the lexer
/// state across line boundaries (block comments and raw strings may span
/// lines; ordinary string literals in this codebase do not, but a `"` left
/// open carries over conservatively).
fn blank_line(raw: &str, mut state: State) -> (String, State) {
    let b: Vec<char> = raw.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match state {
            State::BlockComment(depth) => {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == '\\' {
                    out.push(' ');
                    if i + 1 < b.len() {
                        out.push(' ');
                    }
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    state = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i + 1, hashes) {
                    out.push('"');
                    out.extend(std::iter::repeat_n(' ', hashes as usize));
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                if b[i] == '/' && b.get(i + 1) == Some(&'/') {
                    // Line comment (incl. doc comments): blank the rest.
                    out.extend(std::iter::repeat_n(' ', b.len() - i));
                    i = b.len();
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    state = State::BlockComment(1);
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    state = State::Str;
                } else if b[i] == 'r' && raw_str_hashes(&b, i).is_some() {
                    // Only match a raw string when `r` starts a token.
                    let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
                    if prev_ident {
                        out.push(b[i]);
                        i += 1;
                    } else if let Some(h) = raw_str_hashes(&b, i) {
                        out.push('r');
                        out.extend(std::iter::repeat_n(' ', h as usize));
                        out.push('"');
                        i += 2 + h as usize;
                        state = State::RawStr(h);
                    }
                } else if b[i] == '\'' {
                    // Char literal or lifetime. `'x'` / `'\n'` are blanked;
                    // a lifetime (`'a` not followed by a closing quote) is
                    // kept as-is.
                    if let Some(len) = char_literal_len(&b, i) {
                        out.push('\'');
                        out.extend(std::iter::repeat_n(' ', len - 1));
                        i += len;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
        }
    }
    (out.into_iter().collect(), state)
}

/// Whether `chars[at..]` starts with `hashes` consecutive `#`s.
fn closes_raw(chars: &[char], at: usize, hashes: u32) -> bool {
    let h = hashes as usize;
    chars.len() >= at + h && chars[at..at + h].iter().all(|&c| c == '#')
}

/// If `chars[i..]` starts a raw string literal (`r"` / `r#"` / ...),
/// returns the number of `#`s.
fn raw_str_hashes(chars: &[char], i: usize) -> Option<u32> {
    debug_assert_eq!(chars.get(i), Some(&'r'));
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// If `chars[i..]` is a char literal, returns its total length.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    debug_assert_eq!(chars.get(i), Some(&'\''));
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char: find the closing quote within a few characters
        // (`'\n'`, `'\u{1F600}'`).
        chars[i + 3..(i + 12).min(chars.len())]
            .iter()
            .position(|&c| c == '\'')
            .map(|off| off + 4)
    } else if chars.get(i + 2) == Some(&'\'') {
        Some(3)
    } else {
        None
    }
}

/// Marks every line inside a `#[cfg(test)] mod ... { ... }` region.
///
/// Brace depth is tracked on the blanked `code` text, so braces in strings
/// and comments do not confuse the count.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_cfg = false;
    let mut region_floor: Option<i64> = None;
    for line in lines.iter_mut() {
        if region_floor.is_none() && line.code.contains("#[cfg(test)]") {
            pending_cfg = true;
        }
        let starts_region = pending_cfg
            && region_floor.is_none()
            && line.code.contains("mod")
            && line.code.contains('{');
        if starts_region {
            region_floor = Some(depth);
            pending_cfg = false;
        }
        if region_floor.is_some() {
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(floor) = region_floor {
            if depth <= floor {
                region_floor = None;
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`, returning `(abs, rel)`
/// pairs with `rel` relative to `root`.
pub fn rust_files(root: &Path, dir: &Path) -> io::Result<Vec<(PathBuf, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, dir, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push((path, rel));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse("let s = \"println!(1 == 2)\"; // partial_cmp\n");
        assert!(!f.lines[0].code.contains("println"));
        assert!(!f.lines[0].code.contains("=="));
        assert!(!f.lines[0].code.contains("partial_cmp"));
        assert!(f.lines[0].code.contains("let s ="));
        assert_eq!(f.lines[0].code.len(), f.lines[0].raw.len());
    }

    #[test]
    fn block_comments_span_lines() {
        let f = parse("/* a == b\n   c != d */ let x = 1;\n");
        assert!(!f.lines[0].code.contains("=="));
        assert!(!f.lines[1].code.contains("!="));
        assert!(f.lines[1].code.contains("let x = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = parse("let s = r#\"a.unwrap()\"#;\n");
        assert!(!f.lines[0].code.contains("unwrap"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = parse("let c = '\"'; let d = 1 == 2;\n");
        assert!(f.lines[0].code.contains("=="), "{}", f.lines[0].code);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = parse(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn doc_lines_are_classified() {
        let f = parse("//! module\n/// item\nfn x() {}\n");
        assert!(f.lines[0].doc && f.lines[1].doc && !f.lines[2].doc);
    }
}
