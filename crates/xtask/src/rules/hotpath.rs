//! Hot-path allocation and timing rules:
//! `no-owned-points-in-hot-paths`, `no-ad-hoc-timing`,
//! `no-alloc-in-kernels` and `no-per-shard-alloc-in-descent`.

use super::{is_hot_path, push, Violation};
use crate::model::{SourceFile, Workspace};

/// Hot query paths borrow rows from the columnar store; `.points()` /
/// `.to_vec()` gathers an owned copy per dominance check and reintroduces
/// the per-check heap traffic the flat SoA layout removed.
pub(super) fn no_owned_points_in_hot_paths(
    _ws: &Workspace,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    if !is_hot_path(&file.path) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        if !t.is_punct(".") {
            continue;
        }
        let line = t.line;
        let gathers = file.sig_tok(p + 1).is_some_and(|t| t.is_ident("points"))
            && file.sig_tok(p + 2).is_some_and(|t| t.is_punct("("))
            && file.sig_tok(p + 3).is_some_and(|t| t.is_punct(")"));
        let copies = file.sig_tok(p + 1).is_some_and(|t| t.is_ident("to_vec"))
            && file.sig_tok(p + 2).is_some_and(|t| t.is_punct("("));
        if gathers || copies {
            let what = if gathers { ".points()" } else { ".to_vec()" };
            push(
                out,
                file,
                line,
                "no-owned-points-in-hot-paths",
                format!(
                    "`{what}` in a hot query path gathers an owned copy per dominance \
                     check; borrow rows via the columnar accessors instead"
                ),
            );
        }
    }
}

/// Directories where any mention of the raw clock types is banned
/// (osd-obs is the sanctioned wrapper).
const NO_TIMING_DIRS: &[&str] = &["crates/core/src", "crates/geom/src", "crates/rtree/src"];

/// The tracer/timer crate itself: raw clock *access* is banned here too,
/// so every span/phase/flight-recorder timestamp flows through the one
/// shim below. The ban is path-shaped (`std::time::…` / `…::now()`)
/// rather than bare-ident because osd-obs legitimately names an
/// `Instant` span kind.
const OBS_DIR: &str = "crates/obs/src";

/// The one sanctioned clock shim: `Stopwatch` in the osd-obs crate root.
/// Everything else — PhaseTimer, Span, QueryTrace — reads time through it.
const CLOCK_SHIM_FILE: &str = "crates/obs/src/lib.rs";

/// Wall-clock reads go through osd-obs so the obs-disabled build is
/// clock-free by construction — and within osd-obs, through the single
/// `Stopwatch` shim so there is exactly one time source to audit.
pub(super) fn no_ad_hoc_timing(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    let in_obs = file.path.starts_with(OBS_DIR);
    if in_obs && file.path.to_string_lossy() == CLOCK_SHIM_FILE {
        return;
    }
    if !in_obs && !NO_TIMING_DIRS.iter().any(|d| file.path.starts_with(d)) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        if !t.is_ident("Instant") && !t.is_ident("SystemTime") {
            continue;
        }
        if in_obs && !is_clock_access(file, p) {
            continue;
        }
        let (what, fix) = if in_obs {
            (
                "raw clock access inside osd-obs",
                "read time through the crate's `Stopwatch` shim (lib.rs), \
                 the single sanctioned time source",
            )
        } else {
            (
                "raw clock type in an instrumented crate",
                "time through osd-obs (Stopwatch/PhaseTimer/Span) so the \
                 obs-off build stays clock-free",
            )
        };
        push(
            out,
            file,
            t.line,
            "no-ad-hoc-timing",
            format!("{what} (`{}`); {fix}", t.text),
        );
    }
}

/// Whether the `Instant`/`SystemTime` ident at `p` is actually the std
/// clock: part of a `time::…` path, or the receiver of `::now()`.
fn is_clock_access(file: &SourceFile, p: usize) -> bool {
    let from_std_time = p >= 2
        && file.sig_tok(p - 1).is_some_and(|t| t.is_punct("::"))
        && file.sig_tok(p - 2).is_some_and(|t| t.is_ident("time"));
    let reads_now = file.sig_tok(p + 1).is_some_and(|t| t.is_punct("::"))
        && file.sig_tok(p + 2).is_some_and(|t| t.is_ident("now"));
    from_std_time || reads_now
}

/// Files that are allocation-free in their entirety.
const ALLOC_FREE_FILES: &[&str] = &["crates/geom/src/kernels.rs"];
/// Files with `// alloc-free: begin` / `// alloc-free: end` regions.
const ALLOC_FREE_REGION_FILES: &[&str] = &["crates/core/src/ops/psd.rs"];

/// The blocked distance kernels and the exact-network dominance loop
/// reuse caller scratch buffers; allocation idioms inside them silently
/// reintroduce per-call heap traffic.
pub(super) fn no_alloc_in_kernels(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    let path = file.path.to_string_lossy();
    let whole = ALLOC_FREE_FILES.iter().any(|f| *f == path);
    let regions = ALLOC_FREE_REGION_FILES.iter().any(|f| *f == path);
    if !whole && !regions {
        return;
    }
    // Per-token activity: the whole file, or the marked comment regions.
    let mut active = vec![whole; file.tokens.len()];
    if regions {
        mark_regions(file, "alloc-free: begin", "alloc-free: end", &mut active);
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) || !active[file.sig[p]] {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        let line = t.line;
        if let Some(what) = alloc_idiom_at(file, p) {
            push(
                out,
                file,
                line,
                "no-alloc-in-kernels",
                format!(
                    "`{what}` inside an allocation-free kernel region; reuse the caller's \
                     scratch buffers"
                ),
            );
        }
    }
}

/// Files with `// per-shard descent: begin` / `end` regions: the Node
/// expansion arms of the merged-forest traversals.
const DESCENT_REGION_FILES: &[&str] = &["crates/core/src/nnc.rs", "crates/core/src/knnc.rs"];

/// The merged-forest heap expansion runs once per visited node per shard;
/// an allocation there scales with shard count × node visits and would
/// silently erase the shared-bound advantage the sharded layout exists
/// to deliver.
pub(super) fn no_per_shard_alloc_in_descent(
    _ws: &Workspace,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    let path = file.path.to_string_lossy();
    if !DESCENT_REGION_FILES.iter().any(|f| *f == path) {
        return;
    }
    let mut active = vec![false; file.tokens.len()];
    mark_regions(
        file,
        "per-shard descent: begin",
        "per-shard descent: end",
        &mut active,
    );
    for p in 0..file.sig.len() {
        if file.is_test_code(p) || !active[file.sig[p]] {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        let line = t.line;
        if let Some(what) = alloc_idiom_at(file, p) {
            push(
                out,
                file,
                line,
                "no-per-shard-alloc-in-descent",
                format!(
                    "`{what}` inside the per-shard descent region; the node-expansion arm \
                     runs once per visited node per shard — hoist the buffer to the \
                     traversal state"
                ),
            );
        }
    }
}

/// Marks the tokens between `begin`/`end` marker comments as active.
fn mark_regions(file: &SourceFile, begin: &str, end: &str, active: &mut [bool]) {
    let mut on = false;
    for (i, t) in file.tokens.iter().enumerate() {
        if t.is_comment() {
            if t.text.contains(begin) {
                on = true;
            } else if t.text.contains(end) {
                on = false;
            }
        }
        active[i] = on;
    }
}

/// The allocation idiom starting at significant-token position `p`, if any.
fn alloc_idiom_at(file: &SourceFile, p: usize) -> Option<&'static str> {
    let t = file.sig_tok(p)?;
    if t.is_ident("Vec")
        && file.sig_tok(p + 1).is_some_and(|t| t.is_punct("::"))
        && file.sig_tok(p + 2).is_some_and(|t| t.is_ident("new"))
    {
        Some("Vec::new()")
    } else if t.is_ident("vec") && file.sig_tok(p + 1).is_some_and(|t| t.is_punct("!")) {
        Some("vec![..]")
    } else if t.is_punct(".")
        && file.sig_tok(p + 1).is_some_and(|t| t.is_ident("to_vec"))
        && file.sig_tok(p + 2).is_some_and(|t| t.is_punct("("))
    {
        Some(".to_vec()")
    } else if t.is_punct(".") && file.sig_tok(p + 1).is_some_and(|t| t.is_ident("collect")) {
        Some(".collect()")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{check_src, rules};

    #[test]
    fn flags_points_and_to_vec_in_hot_paths() {
        let v = check_src(
            "crates/core/src/nnc.rs",
            "fn f(s: &Store) { let _ = s.points(); }\n",
        );
        assert_eq!(rules(&v), vec!["no-owned-points-in-hot-paths"]);
        let v = check_src(
            "crates/core/src/ops/ssd.rs",
            "/// Per Definition 3.\npub fn f(xs: &[f64]) { let _ = xs.to_vec(); }\n",
        );
        assert!(v.iter().any(|x| x.rule == "no-owned-points-in-hot-paths"));
    }

    #[test]
    fn to_vec_split_across_lines_is_still_flagged() {
        let v = check_src(
            "crates/core/src/knnc.rs",
            "fn f(xs: &[f64]) {\n    let _ = xs\n        .to_vec\n        ();\n}\n",
        );
        assert_eq!(rules(&v), vec!["no-owned-points-in-hot-paths"]);
    }

    #[test]
    fn points_fine_outside_hot_paths_and_in_tests() {
        assert!(check_src(
            "crates/uncertain/src/object.rs",
            "fn f(s: &Store) { let _ = s.points(); }\n"
        )
        .is_empty());
        assert!(check_src(
            "crates/core/src/nnc.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(s: &Store) { let _ = s.points(); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_raw_clocks_in_instrumented_crates() {
        let v = check_src(
            "crates/rtree/src/node.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert_eq!(rules(&v), vec!["no-ad-hoc-timing"]);
        assert!(check_src(
            "crates/flow/src/lib.rs",
            "fn f() { let _t = std::time::Instant::now(); }\n"
        )
        .is_empty());
        assert!(check_src(
            "crates/geom/src/point.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn obs_bans_clock_access_outside_the_stopwatch_shim() {
        // Inside osd-obs, std::time paths and ::now() calls are violations…
        let v = check_src(
            "crates/obs/src/trace.rs",
            "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n",
        );
        assert_eq!(rules(&v), vec!["no-ad-hoc-timing", "no-ad-hoc-timing"]);
        let v = check_src(
            "crates/obs/src/span.rs",
            "fn f() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert_eq!(rules(&v), vec!["no-ad-hoc-timing"]);
        // …but naming an `Instant` span kind is not clock access…
        assert!(check_src(
            "crates/obs/src/trace.rs",
            "pub enum SpanKind { Region, Instant }\n\
             fn f(k: SpanKind) -> bool { matches!(k, SpanKind::Instant) }\n"
        )
        .is_empty());
        // …and the Stopwatch shim file is the sanctioned clock.
        assert!(check_src(
            "crates/obs/src/lib.rs",
            "pub struct Stopwatch { started: std::time::Instant }\n\
             impl Stopwatch { pub fn start() -> Self { Stopwatch { started: std::time::Instant::now() } } }\n"
        )
        .is_empty());
    }

    #[test]
    fn kernels_file_is_alloc_free_everywhere() {
        let v = check_src(
            "crates/geom/src/kernels.rs",
            "fn f() { let v = vec![1.0];\n    let _: Vec<f64> = v.iter().copied().collect(); }\n",
        );
        assert_eq!(
            rules(&v),
            vec!["no-alloc-in-kernels", "no-alloc-in-kernels"]
        );
    }

    #[test]
    fn descent_regions_ban_alloc_idioms() {
        let src = "\
pub fn seed() { let _roots: Vec<usize> = (0..4).collect(); }
// per-shard descent: begin
pub fn expand(xs: &[usize]) { let _c: Vec<usize> = xs.iter().copied().collect(); }
// per-shard descent: end
pub fn gather() { let _v: Vec<usize> = Vec::new(); }
";
        for path in ["crates/core/src/nnc.rs", "crates/core/src/knnc.rs"] {
            let v = check_src(path, src);
            let hits: Vec<_> = v
                .iter()
                .filter(|x| x.rule == "no-per-shard-alloc-in-descent")
                .collect();
            assert_eq!(hits.len(), 1, "{v:?}");
            assert_eq!(hits[0].line, 3);
        }
        // Other files are out of scope even with the markers present.
        let v = check_src("crates/core/src/engine.rs", src);
        assert!(v.iter().all(|x| x.rule != "no-per-shard-alloc-in-descent"));
    }

    #[test]
    fn descent_region_test_code_is_exempt() {
        let src = "\
// per-shard descent: begin
#[cfg(test)]
mod tests {
    fn t() { let _v: Vec<usize> = (0..4).collect(); }
}
// per-shard descent: end
";
        let v = check_src("crates/core/src/knnc.rs", src);
        assert!(v.iter().all(|x| x.rule != "no-per-shard-alloc-in-descent"));
    }

    #[test]
    fn psd_regions_gate_by_markers() {
        let src = "\
/// Per Algorithm 2.
pub fn setup() { let _v = Vec::new(); }
// alloc-free: begin
/// Per Algorithm 2.
pub fn inner(xs: &[f64]) { let _ = xs.to_vec(); }
// alloc-free: end
/// Per Algorithm 2.
pub fn teardown() { let _v: Vec<f64> = vec![]; }
";
        let v = check_src("crates/core/src/ops/psd.rs", src);
        let allocs: Vec<_> = v
            .iter()
            .filter(|x| x.rule == "no-alloc-in-kernels")
            .collect();
        assert_eq!(allocs.len(), 1, "{v:?}");
        assert_eq!(allocs[0].line, 5);
    }
}
