//! Cross-crate rules: `crate-layering` (the dependency DAG, enforced on
//! both manifests and `osd_*` imports) and `manifest-hygiene` (every
//! member must be declared in the layering map).

use super::{push, Violation};
use crate::lexer::Kind;
use crate::model::{Manifest, Workspace};

/// The layering map: each crate's level in the DAG. A crate may depend
/// only on strictly lower levels (dev-dependencies may additionally sit
/// at the same level — they cannot create build cycles).
///
/// ```text
/// 0  osd-geom   osd-flow   osd-obs          (foundations, no deps)
/// 1  osd-rtree  osd-uncertain               (index / model, → geom)
/// 2  osd-datagen osd-nnfuncs osd-nncore     (generators / functions)
/// 3  osd-core                               (query engine)
/// 4  osd-cli    osd-bench   osd             (leaves + facade)
/// ```
const LAYERS: &[(&str, u8)] = &[
    ("osd-geom", 0),
    ("osd-flow", 0),
    ("osd-obs", 0),
    ("osd-rtree", 1),
    ("osd-uncertain", 1),
    ("osd-datagen", 2),
    ("osd-nnfuncs", 2),
    ("osd-nncore", 2),
    ("osd-core", 3),
    ("osd-cli", 4),
    ("osd-bench", 4),
    ("osd", 4),
];

/// Crates nothing may depend on: the binary leaves and the facade.
const LEAVES: &[&str] = &["osd-cli", "osd-bench", "osd"];

/// The `SpatialIndex` trait module: the abstraction every query operator
/// compiles against. It layers *below* the concrete indexes inside
/// osd-core, so it must never reach up into them.
const TRAIT_MODULE: &str = "crates/core/src/index.rs";
/// The concrete implementation modules the trait module may not import.
const INDEX_IMPLS: &[&str] = &["db", "sharded"];

fn level(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|(_, l)| *l)
}

/// `osd_geom` (import path) → `osd-geom` (package name).
fn dash(name: &str) -> String {
    name.replace('_', "-")
}

pub(super) fn crate_layering(ws: &Workspace, out: &mut Vec<Violation>) {
    for m in &ws.manifests {
        // Unknown crates are manifest-hygiene's problem, not layering's.
        let Some(lvl) = level(&m.name) else { continue };
        for dep in &m.deps {
            check_manifest_edge(m, &dep.name, dep.line, lvl, false, out);
        }
        for dep in &m.dev_deps {
            check_manifest_edge(m, &dep.name, dep.line, lvl, true, out);
        }
    }
    // Import graph: every `osd_*` path root in scanned source must map to
    // a declared dependency (dev-dependencies only count in test code).
    for file in &ws.files {
        let Some(m) = ws.manifest(&file.crate_name) else {
            continue;
        };
        for p in 0..file.sig.len() {
            let Some(t) = file.sig_tok(p) else { break };
            if t.kind != Kind::Ident || !t.text.starts_with("osd_") {
                continue;
            }
            let pkg = dash(&t.text);
            if pkg == file.crate_name {
                continue;
            }
            let in_deps = m.deps.iter().any(|d| d.name == pkg);
            let in_dev = m.dev_deps.iter().any(|d| d.name == pkg);
            if in_deps || (in_dev && file.is_test_code(p)) {
                continue;
            }
            let msg = if in_dev {
                format!(
                    "`{}` is only a dev-dependency of {}; non-test code may not import it",
                    t.text, m.name
                )
            } else {
                format!(
                    "`{}` is not a declared dependency of {}; undeclared edges bypass \
                     the layering DAG",
                    t.text, m.name
                )
            };
            push(out, file, t.line, "crate-layering", msg);
        }
    }
    // Intra-crate layering of the index abstraction: the trait module
    // (`core::index`) sits below the concrete indexes; `crate::db` /
    // `crate::sharded` references from it invert that edge (test modules
    // exercise the concrete types and are exempt).
    for file in &ws.files {
        if file.path.to_string_lossy() != TRAIT_MODULE {
            continue;
        }
        for p in 0..file.sig.len() {
            let Some(t) = file.sig_tok(p) else { break };
            if !(t.is_ident("crate") || t.is_ident("super")) || file.is_test_code(p) {
                continue;
            }
            let reaches = file.sig_tok(p + 1).is_some_and(|n| n.is_punct("::"))
                && file
                    .sig_tok(p + 2)
                    .is_some_and(|n| INDEX_IMPLS.iter().any(|m| n.is_ident(m)));
            if reaches {
                let module = file
                    .sig_tok(p + 2)
                    .map_or(String::new(), |n| n.text.clone());
                push(
                    out,
                    file,
                    t.line,
                    "crate-layering",
                    format!(
                        "the SpatialIndex trait module imports `crate::{module}`; the trait \
                         layer must stay implementation-agnostic — move shared code into \
                         index.rs or depend on the trait instead"
                    ),
                );
            }
        }
    }
}

fn check_manifest_edge(
    m: &Manifest,
    dep: &str,
    line: usize,
    lvl: u8,
    dev: bool,
    out: &mut Vec<Violation>,
) {
    if !(dep == "osd" || dep.starts_with("osd-")) {
        return;
    }
    let path = m.path.display().to_string();
    if LEAVES.contains(&dep) && m.name != *dep {
        out.push(Violation {
            path,
            line,
            rule: "crate-layering",
            msg: format!(
                "{} depends on `{dep}`, a leaf/facade crate; nothing may depend on the \
                 leaves",
                m.name
            ),
        });
        return;
    }
    let Some(dep_lvl) = level(dep) else {
        out.push(Violation {
            path,
            line,
            rule: "crate-layering",
            msg: format!(
                "{} depends on `{dep}`, which is not in the layering map",
                m.name
            ),
        });
        return;
    };
    let inverted = if dev { dep_lvl > lvl } else { dep_lvl >= lvl };
    if inverted {
        out.push(Violation {
            path,
            line,
            rule: "crate-layering",
            msg: format!(
                "{} (layer {lvl}) depends on `{dep}` (layer {dep_lvl}); dependencies must \
                 point strictly downward{}",
                m.name,
                if dev {
                    " (dev-dependencies may be same-layer)"
                } else {
                    ""
                }
            ),
        });
    }
}

/// Every scanned crate must be declared in the layering map; a new member
/// silently escaping the DAG defeats the whole audit.
pub(super) fn manifest_hygiene(ws: &Workspace, out: &mut Vec<Violation>) {
    for m in &ws.manifests {
        if level(&m.name).is_none() {
            out.push(Violation {
                path: m.path.display().to_string(),
                line: 1,
                rule: "manifest-hygiene",
                msg: format!(
                    "crate `{}` is not in the layering map; declare its layer in \
                     crates/xtask/src/rules/layering.rs and DESIGN.md §6.2",
                    m.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{crate_layering, manifest_hygiene};
    use crate::model::{FileOrigin, Manifest, SourceFile, Workspace};
    use crate::rules::Violation;
    use std::path::PathBuf;

    fn manifest(rel: &str, text: &str) -> Manifest {
        Manifest::parse(PathBuf::from(rel), text)
    }

    fn ws(manifests: Vec<Manifest>, files: Vec<SourceFile>) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files,
            manifests,
        }
    }

    fn file(path: &str, origin: FileOrigin, krate: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(path), origin, krate, src)
    }

    fn run_layering(ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        crate_layering(ws, &mut out);
        out
    }

    #[test]
    fn real_shaped_edges_pass() {
        let w = ws(
            vec![
                manifest(
                    "crates/rtree/Cargo.toml",
                    "[package]\nname = \"osd-rtree\"\n[dependencies]\nosd-geom = { path = \"../geom\" }\n",
                ),
                manifest(
                    "crates/core/Cargo.toml",
                    "[package]\nname = \"osd-core\"\n[dependencies]\nosd-geom = {}\nosd-rtree = {}\nosd-obs = {}\n",
                ),
            ],
            vec![],
        );
        assert!(run_layering(&w).is_empty());
    }

    #[test]
    fn inverted_manifest_edge_is_flagged() {
        let w = ws(
            vec![manifest(
                "crates/geom/Cargo.toml",
                "[package]\nname = \"osd-geom\"\n[dependencies]\nosd-core = { path = \"../core\" }\n",
            )],
            vec![],
        );
        let v = run_layering(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("strictly downward"), "{}", v[0].msg);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn depending_on_a_leaf_is_flagged() {
        let w = ws(
            vec![manifest(
                "crates/uncertain/Cargo.toml",
                "[package]\nname = \"osd-uncertain\"\n[dependencies]\nosd-cli = {}\n",
            )],
            vec![],
        );
        let v = run_layering(&w);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("leaf"), "{}", v[0].msg);
    }

    #[test]
    fn same_layer_dev_dep_is_allowed() {
        let w = ws(
            vec![manifest(
                "crates/nncore/Cargo.toml",
                "[package]\nname = \"osd-nncore\"\n[dependencies]\nosd-geom = {}\n[dev-dependencies]\nosd-nnfuncs = {}\n",
            )],
            vec![],
        );
        assert!(run_layering(&w).is_empty());
    }

    #[test]
    fn undeclared_import_is_flagged() {
        let w = ws(
            vec![manifest(
                "crates/rtree/Cargo.toml",
                "[package]\nname = \"osd-rtree\"\n[dependencies]\nosd-geom = {}\n",
            )],
            vec![file(
                "crates/rtree/src/lib.rs",
                FileOrigin::LibSrc,
                "osd-rtree",
                "use osd_geom::Point;\nfn f() { let _ = osd_uncertain::World::new(); }\n",
            )],
        );
        let v = run_layering(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("osd_uncertain"), "{}", v[0].msg);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn dev_dep_import_allowed_only_in_test_code() {
        let m = manifest(
            "crates/nncore/Cargo.toml",
            "[package]\nname = \"osd-nncore\"\n[dependencies]\nosd-geom = {}\n[dev-dependencies]\nosd-nnfuncs = {}\n",
        );
        let test_file = file(
            "crates/nncore/tests/parity.rs",
            FileOrigin::TestDir,
            "osd-nncore",
            "use osd_nnfuncs::s_sd;\n",
        );
        let lib_file = file(
            "crates/nncore/src/lib.rs",
            FileOrigin::LibSrc,
            "osd-nncore",
            "use osd_nnfuncs::s_sd;\n",
        );
        let w = ws(
            vec![manifest(
                "crates/nncore/Cargo.toml",
                "[package]\nname = \"osd-nncore\"\n[dependencies]\nosd-geom = {}\n[dev-dependencies]\nosd-nnfuncs = {}\n",
            )],
            vec![test_file],
        );
        assert!(run_layering(&w).is_empty());
        let w = ws(vec![m], vec![lib_file]);
        let v = run_layering(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("dev-dependency"), "{}", v[0].msg);
    }

    #[test]
    fn trait_module_may_not_import_concrete_indexes() {
        let m = manifest(
            "crates/core/Cargo.toml",
            "[package]\nname = \"osd-core\"\n[dependencies]\nosd-geom = {}\n",
        );
        let bad = file(
            "crates/core/src/index.rs",
            FileOrigin::LibSrc,
            "osd-core",
            "use crate::db::FlatDatabase;\npub trait SpatialIndex {}\n",
        );
        let v = run_layering(&ws(vec![m], vec![bad]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("implementation-agnostic"), "{}", v[0].msg);
        assert_eq!(v[0].line, 1);

        // Test modules exercise the concrete types and are exempt, and
        // the restriction is scoped to the trait module only.
        let m = manifest(
            "crates/core/Cargo.toml",
            "[package]\nname = \"osd-core\"\n[dependencies]\nosd-geom = {}\n",
        );
        let ok_test = file(
            "crates/core/src/index.rs",
            FileOrigin::LibSrc,
            "osd-core",
            "pub trait SpatialIndex {}\n#[cfg(test)]\nmod tests {\n    use crate::db::Database;\n}\n",
        );
        let ok_other = file(
            "crates/core/src/sharded.rs",
            FileOrigin::LibSrc,
            "osd-core",
            "use crate::db::DbError;\n",
        );
        assert!(run_layering(&ws(vec![m], vec![ok_test, ok_other])).is_empty());
    }

    #[test]
    fn unknown_crate_goes_to_manifest_hygiene() {
        let w = ws(
            vec![manifest(
                "crates/newbie/Cargo.toml",
                "[package]\nname = \"osd-newbie\"\n[dependencies]\n",
            )],
            vec![],
        );
        assert!(run_layering(&w).is_empty(), "layering skips unknown crates");
        let mut v = Vec::new();
        manifest_hygiene(&w, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "manifest-hygiene");
        assert!(v[0].msg.contains("osd-newbie"));
    }
}
