//! `obs-feature-purity`: code gated behind `#[cfg(feature = "obs")]` in
//! osd-core may observe the pipeline but not steer it — it must not call
//! into the result-affecting crates and must not assign non-obs state.
//! tests/obs_purity.rs pins the same contract dynamically (obs-on and
//! obs-off runs return identical results); this rule enforces it
//! statically at the token level.

use super::{push, Violation};
use crate::lexer::Kind;
use crate::model::{SourceFile, Workspace, IN_OBS_CFG};

/// Crates whose state determines query results; obs-gated code may not
/// reach into them.
const RESULT_CRATES: &[&str] = &["osd_geom", "osd_rtree", "osd_flow", "osd_uncertain"];

/// Identifier fragments that mark a place as observability state.
const OBS_MARKERS: &[&str] = &[
    "metric",
    "obs",
    "span",
    "timer",
    "stopwatch",
    "profile",
    "phase",
    "counter",
    "gauge",
];

pub(super) fn obs_feature_purity(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.path.starts_with("crates/core/src") {
        return;
    }
    let in_attr = attr_mask(file);
    for p in 0..file.sig.len() {
        if file.sig_flags(p) & IN_OBS_CFG == 0 || file.is_test_code(p) || in_attr[file.sig[p]] {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        let line = t.line;
        // (a) calls into result-affecting crates.
        if t.kind == Kind::Ident
            && RESULT_CRATES.iter().any(|c| t.text == *c)
            && file.sig_tok(p + 1).is_some_and(|n| n.is_punct("::"))
        {
            push(
                out,
                file,
                line,
                "obs-feature-purity",
                format!(
                    "obs-gated code reaches into result-affecting crate `{}`; observation \
                     must not steer the pipeline",
                    t.text
                ),
            );
            continue;
        }
        // (b) assignments to non-obs places.
        if t.kind == Kind::Punct && is_assign_op(&t.text) {
            if lhs_is_let(file, p) || lhs_mentions_obs(file, p) {
                continue;
            }
            push(
                out,
                file,
                line,
                "obs-feature-purity",
                format!(
                    "obs-gated code assigns (`{}`) a place that names no obs state \
                     (metrics/span/timer/...); the obs-off build must compute identical \
                     results",
                    t.text
                ),
            );
        }
    }
}

fn is_assign_op(text: &str) -> bool {
    matches!(
        text,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>="
    )
}

/// Marks tokens that sit inside `#[...]` / `#![...]` attribute groups, so
/// the `=` of `#[cfg(feature = "obs")]` itself never counts as an
/// assignment.
fn attr_mask(file: &SourceFile) -> Vec<bool> {
    let mut mask = vec![false; file.tokens.len()];
    let mut i = 0;
    while i < file.tokens.len() {
        if file.tokens[i].is_punct("#") {
            let mut j = i + 1;
            if file.tokens.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if file.tokens.get(j).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 0i64;
                let mut k = j;
                while k < file.tokens.len() {
                    if file.tokens[k].is_punct("[") {
                        depth += 1;
                    } else if file.tokens[k].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                for m in mask
                    .iter_mut()
                    .take(k.min(file.tokens.len() - 1) + 1)
                    .skip(i)
                {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Walks left from the assignment operator to the statement boundary
/// (`;`, `{`, `}` at depth 0); reports whether the statement is a `let`
/// binding.
fn lhs_is_let(file: &SourceFile, op_p: usize) -> bool {
    scan_lhs(file, op_p, |t| t.is_ident("let"))
}

/// Whether any identifier on the left-hand side names obs state.
fn lhs_mentions_obs(file: &SourceFile, op_p: usize) -> bool {
    scan_lhs(file, op_p, |t| {
        t.kind == Kind::Ident && {
            let lower = t.text.to_lowercase();
            OBS_MARKERS.iter().any(|m| lower.contains(m))
        }
    })
}

fn scan_lhs(file: &SourceFile, op_p: usize, pred: impl Fn(&crate::lexer::Token) -> bool) -> bool {
    let mut depth = 0i64;
    let mut p = op_p;
    while p > 0 {
        p -= 1;
        let Some(t) = file.sig_tok(p) else {
            return false;
        };
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                ";" | "{" | "}" if depth == 0 => return false,
                _ => {}
            }
        }
        if depth == 0 && pred(t) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{check_src, rules};

    #[test]
    fn flags_result_crate_access_in_obs_block() {
        let v = check_src(
            "crates/core/src/engine.rs",
            "#[cfg(feature = \"obs\")]\nfn probe(q: &Q) { let _ = osd_geom::dist(q.a, q.b); }\n",
        );
        assert_eq!(rules(&v), vec!["obs-feature-purity"]);
    }

    #[test]
    fn obs_crate_access_is_fine() {
        assert!(check_src(
            "crates/core/src/engine.rs",
            "#[cfg(feature = \"obs\")]\nfn probe() { osd_obs::metrics().counter(\"x\").incr(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn ungated_code_is_out_of_scope() {
        assert!(check_src(
            "crates/core/src/engine.rs",
            "fn run(q: &Q) -> f64 { osd_geom::dist(q.a, q.b) }\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_non_obs_assignment_in_obs_block() {
        let v = check_src(
            "crates/core/src/engine.rs",
            "#[cfg(feature = \"obs\")]\nfn probe(state: &mut State) { state.pruned = 0; }\n",
        );
        assert_eq!(rules(&v), vec!["obs-feature-purity"]);
        assert!(v[0].msg.contains("assigns"), "{}", v[0].msg);
    }

    #[test]
    fn let_bindings_and_obs_assignments_are_fine() {
        assert!(check_src(
            "crates/core/src/engine.rs",
            "#[cfg(feature = \"obs\")]\nfn probe(m: &mut Metrics) {\n    let started = now();\n    m.phase_timer = started;\n    self.obs_frames += 1;\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn cfg_attribute_equals_is_not_an_assignment() {
        // The whole item is obs-gated; the inner attribute's `=` must not
        // trip the assignment heuristic.
        assert!(check_src(
            "crates/core/src/engine.rs",
            "#[cfg(feature = \"obs\")]\nmod probes {\n    #[cfg(feature = \"obs\")]\n    fn t() { let x = 1; }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn rule_scoped_to_core() {
        assert!(check_src(
            "crates/rtree/src/lib.rs",
            "#[cfg(feature = \"obs\")]\nfn probe(q: &Q) { let _ = osd_geom::dist(q.a, q.b); }\n"
        )
        .is_empty());
    }
}
