//! Warm-cache bypass rule: `no-warm-bypass`.

use super::{is_hot_path, push, Violation};
use crate::model::{SourceFile, Workspace};

/// Level snapshots and bound-distribution tables are built by the shared
/// constructors in `core::cache` and promoted to snapshot lifetime by
/// `core::warm`; a hot-path file constructing them directly bypasses the
/// legacy hit/miss accounting *and* the epoch-keyed invalidation
/// protocol, so a stale table could silently survive a publish.
pub(super) fn no_warm_bypass(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    if !is_hot_path(&file.path) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        // `LevelSnapshot { .. }` / `LevelGroups { .. }` struct literals.
        // Type positions followed by a block (`-> LevelSnapshot {`,
        // `impl LevelSnapshot {`, `for LevelSnapshot {`) are not
        // construction.
        let type_position = p > 0
            && file
                .sig_tok(p - 1)
                .is_some_and(|b| b.is_punct("->") || b.is_ident("impl") || b.is_ident("for"));
        let literal = (t.is_ident("LevelSnapshot") || t.is_ident("LevelGroups"))
            && file.sig_tok(p + 1).is_some_and(|n| n.is_punct("{"))
            && !type_position;
        // Direct calls to the shared cache constructors.
        let builder = (t.is_ident("build_level_snapshot")
            || t.is_ident("build_bounds_whole")
            || t.is_ident("build_bounds_instance"))
            && file.sig_tok(p + 1).is_some_and(|n| n.is_punct("("));
        if literal || builder {
            push(
                out,
                file,
                t.line,
                "no-warm-bypass",
                format!(
                    "`{}` constructed directly in a hot query path; obtain level \
                     snapshots and bound distributions through `CheckCtx`'s \
                     `DominanceCache` so warm promotion and epoch invalidation \
                     stay correct",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{check_src, rules};

    #[test]
    fn flags_literals_and_builder_calls_in_hot_paths() {
        let v = check_src(
            "crates/core/src/nnc.rs",
            "fn f() { let _s = LevelSnapshot { groups: g }; }\n",
        );
        assert_eq!(rules(&v), vec!["no-warm-bypass"]);
        let v = check_src(
            "crates/core/src/knnc.rs",
            "fn f(q: &Q, l: &L) { let _b = build_bounds_whole(q, l); }\n",
        );
        assert_eq!(rules(&v), vec!["no-warm-bypass"]);
        let v = check_src(
            "crates/core/src/ops/ssd.rs",
            "/// Per Definition 3.\npub fn f(q: &Q, l: &L) { let _b = crate::cache::build_bounds_instance(q, l); }\n",
        );
        assert!(v.iter().any(|x| x.rule == "no-warm-bypass"));
    }

    #[test]
    fn cache_warm_and_type_mentions_are_fine() {
        // cache.rs and warm.rs own the constructors.
        assert!(check_src(
            "crates/core/src/cache.rs",
            "pub fn f() { let _s = LevelSnapshot { groups: g }; }\n"
        )
        .is_empty());
        assert!(check_src(
            "crates/core/src/warm.rs",
            "fn f(q: &Q, l: &L) { let _b = build_bounds_whole(q, l); }\n"
        )
        .is_empty());
        // Naming the type (annotations, signatures) is not construction.
        assert!(check_src(
            "crates/core/src/nnc.rs",
            "fn f(s: &LevelSnapshot) -> usize { s.height() }\n"
        )
        .is_empty());
        // Test modules inside hot-path files are exempt.
        assert!(check_src(
            "crates/core/src/nnc.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _s = LevelSnapshot { groups: g }; }\n}\n"
        )
        .is_empty());
    }
}
