//! Float-ordering rules: `no-partial-cmp-unwrap` and
//! `no-float-eq-in-kernels`.

use super::{is_kernel, matching_close, push, Violation};
use crate::lexer::Kind;
use crate::model::{SourceFile, Workspace};

/// `partial_cmp(..)` must never be unwrapped — NaN makes it `None` and
/// the panic surfaces far from the data that caused it. Token-level, so a
/// chain split across any number of lines and comments is still one
/// adjacent sequence. Applies everywhere, tests included: distance
/// comparisons in tests deserve the same NaN discipline.
pub(super) fn no_partial_cmp_unwrap(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    for p in 0..file.sig.len() {
        let Some(t) = file.sig_tok(p) else { break };
        if !t.is_ident("partial_cmp") {
            continue;
        }
        // `fn partial_cmp(..)` is Ord plumbing, not a call site.
        if p > 0 && file.sig_tok(p - 1).is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        let line = t.line;
        if !file.sig_tok(p + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let Some(close) = matching_close(file, p + 1, "(", ")") else {
            continue;
        };
        let dot = file.sig_tok(close + 1).is_some_and(|t| t.is_punct("."));
        let method = file.sig_tok(close + 2);
        if dot && method.is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect")) {
            push(
                out,
                file,
                line,
                "no-partial-cmp-unwrap",
                "partial_cmp(..).unwrap()/expect(..) panics on NaN; order distances with \
                 f64::total_cmp"
                    .into(),
            );
        }
    }
}

/// No `==` / `!=` on float-looking operands inside the dominance kernels.
/// Heuristic (no type information): a comparison is flagged when either
/// operand contains a float literal, an `f64`/`f32` mention, or a
/// distance-producing call.
pub(super) fn no_float_eq_in_kernels(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    if !is_kernel(&file.path) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let op = t.text.clone();
        let line = t.line;
        if operand_looks_float(file, p, true) || operand_looks_float(file, p, false) {
            push(
                out,
                file,
                line,
                "no-float-eq-in-kernels",
                format!(
                    "`{op}` on a floating-point value in a dominance kernel; use total_cmp \
                     or an epsilon"
                ),
            );
        }
    }
}

/// Punctuation that terminates an operand walk at depth 0.
fn is_operand_stop(text: &str) -> bool {
    matches!(
        text,
        "," | ";"
            | "{"
            | "}"
            | "&&"
            | "||"
            | "&"
            | "|"
            | "="
            | "=="
            | "!="
            | "=>"
            | "->"
            | "+="
            | "-="
            | "*="
            | "/="
    )
}

/// Walks the operand on one side of the comparison at sig-position `op_p`
/// and reports whether it textually looks float-valued.
fn operand_looks_float(file: &SourceFile, op_p: usize, left: bool) -> bool {
    // Collect up to a bounded number of operand tokens, skipping over
    // balanced groups (their contents still count for marker search).
    const LIMIT: usize = 64;
    let mut depth = 0i64;
    let mut prev_dot = false;
    let mut steps = 0;
    let mut p = op_p;
    loop {
        steps += 1;
        if steps > LIMIT {
            return false;
        }
        p = if left {
            let Some(q) = p.checked_sub(1) else {
                return false;
            };
            q
        } else {
            p + 1
        };
        let Some(t) = file.sig_tok(p) else {
            return false;
        };
        if t.kind == Kind::Punct {
            let open = if left { ")" } else { "(" };
            let close = if left { "(" } else { ")" };
            let open2 = if left { "]" } else { "[" };
            let close2 = if left { "[" } else { "]" };
            if t.text == open || t.text == open2 {
                depth += 1;
            } else if t.text == close || t.text == close2 {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            } else if depth == 0 && is_operand_stop(&t.text) {
                return false;
            }
            prev_dot = t.text == ".";
            continue;
        }
        if t.kind == Kind::Ident && matches!(t.text.as_str(), "return" | "if" | "while" | "match") {
            return false;
        }
        if token_looks_float(t.kind, &t.text, if left { false } else { prev_dot }) {
            return true;
        }
        // Walking left, a marker method name is *followed* by the dot we
        // already passed; check the field/method markers directly.
        if left && marker_name(&t.text) {
            return true;
        }
        prev_dot = false;
    }
}

/// Whether a single token marks a float-valued expression.
fn token_looks_float(kind: Kind, text: &str, after_dot: bool) -> bool {
    if kind == Kind::Float {
        return true;
    }
    if kind != Kind::Ident {
        return false;
    }
    if matches!(text, "f64" | "f32" | "d_min" | "d_max") {
        return true;
    }
    after_dot && marker_name(text)
}

/// Method/field names that produce distances or probabilities.
fn marker_name(name: &str) -> bool {
    matches!(
        name,
        "dist" | "dist2" | "volume" | "coord" | "mean" | "quantile" | "cdf" | "key"
    ) || name.starts_with("min_dist")
        || name.starts_with("max_dist")
        || name.starts_with("prob")
        || name.starts_with("dist")
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{check_src, rules};

    #[test]
    fn flags_partial_cmp_unwrap() {
        let v = check_src(
            "crates/geom/src/point.rs",
            "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n",
        );
        assert_eq!(rules(&v), vec!["no-partial-cmp-unwrap"]);
    }

    #[test]
    fn flags_chained_partial_cmp_across_lines_and_comments() {
        let v = check_src(
            "crates/geom/src/point.rs",
            "fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b)\n        // NaN never happens here\n\n        .expect(\"no NaN\");\n}\n",
        );
        assert_eq!(rules(&v), vec!["no-partial-cmp-unwrap"]);
        assert_eq!(v[0].line, 2, "diagnostic anchors at the partial_cmp call");
    }

    #[test]
    fn flags_partial_cmp_with_multiline_args() {
        let v = check_src(
            "crates/geom/src/point.rs",
            "fn f(a: f64, b: f64) {\n    a.partial_cmp(\n        &b,\n    )\n    .unwrap();\n}\n",
        );
        assert_eq!(rules(&v), vec!["no-partial-cmp-unwrap"]);
    }

    #[test]
    fn accepts_manual_ord_impls() {
        let v = check_src(
            "crates/core/src/nnc.rs",
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n    Some(self.cmp(other))\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn partial_cmp_applies_in_tests_now() {
        let v = check_src(
            "crates/geom/src/point.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n}\n",
        );
        assert_eq!(rules(&v), vec!["no-partial-cmp-unwrap"]);
    }

    #[test]
    fn flags_float_eq_in_kernel_only() {
        let src = "fn f(d: f64) -> bool { d == 0.0 }\n";
        assert_eq!(
            rules(&check_src("crates/core/src/ops/ssd.rs", src)),
            vec!["no-float-eq-in-kernels"]
        );
        assert!(check_src("crates/uncertain/src/object.rs", src).is_empty());
    }

    #[test]
    fn flags_float_eq_split_across_lines() {
        let src = "fn f(a: &H, b: &H) -> bool {\n    a.key\n        == b.key\n}\n";
        let v = check_src("crates/core/src/nnc.rs", src);
        assert_eq!(rules(&v), vec!["no-float-eq-in-kernels"]);
    }

    #[test]
    fn integer_eq_in_kernel_is_fine() {
        let v = check_src(
            "crates/core/src/ops/level.rs",
            "/// Per Theorem 7.\npub fn f(a: usize, b: usize) -> bool { a == b }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn le_is_not_eq() {
        let v = check_src(
            "crates/core/src/ops/level.rs",
            "/// Per Theorem 7.\npub fn f(a: f64, b: f64) -> bool { a <= b }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_inside_call_args() {
        let src = "fn f(d: f64) -> bool { g(d.dist(q) == x) }\n";
        let v = check_src("crates/core/src/ops/ssd.rs", src);
        assert_eq!(rules(&v), vec!["no-float-eq-in-kernels"]);
    }
}
