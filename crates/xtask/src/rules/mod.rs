//! The rule registry.
//!
//! Every rule the analyzer knows is declared here with its machine id,
//! scope, intent and waiver policy — `cargo run -p xtask -- explain
//! <rule>` prints exactly this metadata, and DESIGN.md §6.2 mirrors it.
//! Rules come in two shapes: *per-file* rules that walk one token stream,
//! and *workspace* rules that see every scanned file plus the parsed
//! manifests (the cross-crate checks the old line scanner could never
//! express).

mod determinism;
mod docs;
mod hotpath;
mod hygiene;
mod layering;
mod ordering;
mod purity;
mod warm;

use crate::model::{FileOrigin, SourceFile, Workspace};
use std::fmt;
use std::path::Path;

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the scan root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// How a rule is driven.
pub enum Run {
    /// Called once per scanned file.
    PerFile(fn(&Workspace, &SourceFile, &mut Vec<Violation>)),
    /// Called once with the whole workspace.
    Workspace(fn(&Workspace, &mut Vec<Violation>)),
    /// Enforced by the waiver-ledger driver, not a scan pass.
    Ledger,
}

/// One registered rule: id, documentation, and its check function.
pub struct Rule {
    /// Stable machine id (used in diagnostics and the waiver ledger).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// Why the rule exists — the contract it protects.
    pub intent: &'static str,
    /// When (if ever) a waiver is acceptable.
    pub waiver: &'static str,
    /// The check function.
    pub run: Run,
}

/// Every rule, in documentation order. `explain` and DESIGN.md §6.2
/// follow this order.
pub fn registry() -> &'static [Rule] {
    &RULES
}

static RULES: [Rule; 17] = [
    Rule {
        id: "no-partial-cmp-unwrap",
        summary: "distance orderings use f64::total_cmp, never partial_cmp().unwrap()",
        scope: "all scanned code, including tests/, examples/ and #[cfg(test)] modules",
        intent: "partial_cmp on floats returns None for NaN, so .unwrap()/.expect() panics \
                 far from the data that caused it. Distances are ordered with f64::total_cmp, \
                 which is total and NaN-safe. Manual `fn partial_cmp` implementations (Ord \
                 plumbing) are exempt.",
        waiver: "never waived — total_cmp is always available and strictly better.",
        run: Run::PerFile(ordering::no_partial_cmp_unwrap),
    },
    Rule {
        id: "no-float-eq-in-kernels",
        summary: "no ==/!= on float-looking operands in the dominance kernels",
        scope: "crates/core/src/ops, crates/geom/src/dominance.rs, crates/core/src/nnc.rs, \
                crates/core/src/knnc.rs (test modules exempt)",
        intent: "exact float equality in a dominance kernel silently changes the operators' \
                 tie semantics, or makes a heap's Eq disagree with its Ord. Detection is \
                 heuristic (no type information): a comparison is flagged when either operand \
                 contains a float literal, an f64/f32 mention, or a distance-producing call.",
        waiver: "acceptable only for a comparison proven to be over exact sentinel values \
                 (e.g. a ±∞ bound initialisation); state the proof in the reason.",
        run: Run::PerFile(ordering::no_float_eq_in_kernels),
    },
    Rule {
        id: "doc-cites-paper",
        summary: "every pub fn in core::ops cites the paper construct it implements",
        scope: "crates/core/src/ops (test modules and crate-internal pub(crate)/pub(in …) \
                fns exempt); macro-generated pub fns are checked at the macro definition \
                and at every invocation",
        intent: "the operators are only 'optimal' relative to the paper's definitions, so \
                 each public entry point must name the Definition/Theorem/Lemma/Algorithm/§ \
                 it implements. A macro_rules! body generating `pub fn $name` must forward \
                 doc attributes ($(#[$doc])*), and each invocation must pass a citing doc \
                 comment — diagnostics attach to the macro definition or invocation site, \
                 which is where the fix goes.",
        waiver: "never waived — write the citation.",
        run: Run::PerFile(docs::doc_cites_paper),
    },
    Rule {
        id: "no-println-in-libs",
        summary: "library crates never print",
        scope: "library src/ trees (bench/cli leaves, examples and tests exempt)",
        intent: "reporting belongs to the bench/cli leaves; a library that prints cannot be \
                 embedded in a server or a test harness without polluting its output.",
        waiver: "never waived — return data and let the caller report.",
        run: Run::PerFile(hygiene::no_println_in_libs),
    },
    Rule {
        id: "no-panic-allow-in-libs",
        summary: "only bench/cli leaves may opt out of the panic-family lints",
        scope: "library src/ trees",
        intent: "the workspace denies clippy::unwrap_used/expect_used/panic; a crate-level \
                 #![allow(..)] of them in a library crate silently defeats the whole gate.",
        waiver: "never waived — scoped #[allow] on a documented #[cold] constructor is the \
                 sanctioned escape hatch, not a crate-level allow.",
        run: Run::PerFile(hygiene::no_panic_allow_in_libs),
    },
    Rule {
        id: "no-rc-in-core",
        summary: "no Rc/std::rc in osd-core — the batch executor shares it across threads",
        scope: "crates/core/src (test modules exempt)",
        intent: "QueryEngine::run_batch shares osd-core types across scoped worker threads; \
                 Rc is !Send and would only be caught at the far-away compile-time Send+Sync \
                 assertions. Shared ownership in core uses Arc.",
        waiver: "never waived.",
        run: Run::PerFile(hygiene::no_rc_in_core),
    },
    Rule {
        id: "no-raw-cow-outside-epoch",
        summary: "Arc::make_mut copy-on-write splices happen only in uncertain::epoch",
        scope: "library src/ trees except crates/uncertain/src/epoch.rs (test modules, \
                bench/cli leaves and examples exempt)",
        intent: "the epoch module pairs every store splice with an epoch bump and a \
                 change-log append; a raw `Arc::make_mut` anywhere else mutates a shared \
                 snapshot behind the backs of pinned readers and standing ContinuousNnc \
                 handles, which repair incrementally from that log.",
        waiver: "never waived — add an epoch::* builder instead.",
        run: Run::PerFile(hygiene::no_raw_cow_outside_epoch),
    },
    Rule {
        id: "no-owned-points-in-hot-paths",
        summary: "hot query paths borrow rows from the columnar store, never gather owned copies",
        scope: "crates/core/src/ops, crates/core/src/nnc.rs, crates/core/src/knnc.rs \
                (test modules exempt)",
        intent: ".points() / .to_vec() in a dominance kernel or NNC/k-NNC traversal allocates \
                 per dominance check and silently reintroduces the per-check heap traffic the \
                 flat SoA layout removed (PR 3).",
        waiver: "acceptable only on a cold error/reporting path; name the path in the reason.",
        run: Run::PerFile(hotpath::no_owned_points_in_hot_paths),
    },
    Rule {
        id: "no-ad-hoc-timing",
        summary: "no raw Instant/SystemTime in the instrumented library crates",
        scope: "crates/core/src, crates/geom/src, crates/rtree/src (any mention), plus \
                crates/obs/src itself (std::time paths / ::now() calls; the Stopwatch shim \
                in crates/obs/src/lib.rs is the one sanctioned clock; test modules exempt)",
        intent: "wall-clock access goes through osd-obs (Stopwatch/PhaseTimer/Span/QueryTrace) \
                 so the obs-disabled build is clock-free by construction, and within osd-obs \
                 through the single Stopwatch shim so the timers and the tracer share one \
                 auditable time source (DESIGN §6.2).",
        waiver: "never waived — add an osd-obs primitive instead.",
        run: Run::PerFile(hotpath::no_ad_hoc_timing),
    },
    Rule {
        id: "no-alloc-in-kernels",
        summary: "allocation idioms are banned inside the allocation-free kernel regions",
        scope: "crates/geom/src/kernels.rs (whole file) and `// alloc-free: begin/end` \
                regions of crates/core/src/ops/psd.rs (test modules exempt)",
        intent: "the blocked distance kernels and the exact-network dominance loop reuse \
                 caller scratch buffers; Vec::new / vec![ / .to_vec( / .collect( inside them \
                 silently reintroduces per-call heap traffic (PR 5's contract).",
        waiver: "acceptable only for a provably once-per-build allocation (e.g. a lazily \
                 initialised table); state the amortisation argument in the reason.",
        run: Run::PerFile(hotpath::no_alloc_in_kernels),
    },
    Rule {
        id: "no-per-shard-alloc-in-descent",
        summary: "no allocation idioms inside the merged-forest node-expansion regions",
        scope: "`// per-shard descent: begin/end` regions of crates/core/src/nnc.rs and \
                crates/core/src/knnc.rs (test modules exempt)",
        intent: "the merged-forest heap expansion runs once per visited node per shard; \
                 Vec::new / vec![ / .to_vec( / .collect( there scales heap traffic with \
                 shard count × node visits and silently erases the shared-bound advantage \
                 the sharded index exists to deliver (PR 7's contract).",
        waiver: "acceptable only on a cold error path or a provably once-per-query \
                 allocation hoisted out of the loop on the next line; state which in the \
                 reason.",
        run: Run::PerFile(hotpath::no_per_shard_alloc_in_descent),
    },
    Rule {
        id: "no-warm-bypass",
        summary: "hot query paths never construct level snapshots or bound tables directly",
        scope: "crates/core/src/ops, crates/core/src/nnc.rs, crates/core/src/knnc.rs \
                (test modules exempt; core::cache and core::warm own the constructors)",
        intent: "level snapshots, group MBRs and bound-distribution tables are built by \
                 the shared constructors in core::cache and promoted to snapshot lifetime \
                 by core::warm. A `LevelSnapshot { .. }`/`LevelGroups { .. }` literal or a \
                 direct build_level_snapshot/build_bounds_* call in a hot path bypasses \
                 both the legacy hit/miss accounting and the epoch-keyed invalidation \
                 protocol — a stale table could survive a publish unnoticed. Bounds flow \
                 through CheckCtx's DominanceCache, which consults the warm view.",
        waiver: "never waived — add an accessor to DominanceCache instead.",
        run: Run::PerFile(warm::no_warm_bypass),
    },
    Rule {
        id: "crate-layering",
        summary: "crate dependencies and osd_* imports must follow the layering DAG",
        scope: "every Cargo.toml [dependencies] section and every osd_* path in scanned \
                source (test code may additionally use dev-dependencies)",
        intent: "the workspace layers as geom/flow/obs → rtree/uncertain → \
                 datagen/nnfuncs/nncore → core → cli/bench/facade. A library crate reaching \
                 a leaf (cli/bench) or skipping upward (geom importing core) creates cycles \
                 the build may tolerate today and a refactor breaks tomorrow; the DAG is \
                 enforced on both the manifests and the import graph.",
        waiver: "acceptable only during a staged refactor that temporarily inverts an edge; \
                 the waiver must name the PR that removes it.",
        run: Run::Workspace(layering::crate_layering),
    },
    Rule {
        id: "determinism",
        summary: "no unordered-iteration containers or thread-identity access in \
                  result-affecting crates",
        scope: "crates/geom/src, crates/rtree/src, crates/uncertain/src, crates/core/src \
                (test modules exempt)",
        intent: "Stats::merge and the 1-vs-N-thread batch executor are bit-identical by \
                 contract; HashMap/HashSet iteration order and thread-identity reads \
                 (thread::current, ThreadId, RandomState) vary run to run and would leak \
                 nondeterminism into results before `osd serve` pours concurrency on top. \
                 Use BTreeMap/BTreeSet or a sorted Vec.",
        waiver: "acceptable when iteration order provably never escapes (e.g. a count-only \
                 aggregation); the reason must state why order cannot reach results.",
        run: Run::PerFile(determinism::determinism),
    },
    Rule {
        id: "obs-feature-purity",
        summary: "#[cfg(feature = \"obs\")] code in core only touches osd-obs state",
        scope: "crates/core/src, tokens under #[cfg(feature = \"obs\")]",
        intent: "the obs-off build must compile to the uninstrumented pipeline \
                 (tests/obs_purity.rs pins this dynamically; this rule enforces it \
                 statically). Obs-gated code may read pipeline state and write obs state, \
                 but must not call into result-affecting crates (osd_geom/osd_rtree/\
                 osd_flow/osd_uncertain) or assign non-obs places.",
        waiver: "acceptable for a read-only helper call proven side-effect-free; the reason \
                 must name the helper and why it cannot affect results.",
        run: Run::PerFile(purity::obs_feature_purity),
    },
    Rule {
        id: "manifest-hygiene",
        summary: "every scanned crate is known to the layering map",
        scope: "Cargo.toml of every workspace member",
        intent: "a new crate that is not in the layering map silently escapes the DAG; \
                 adding a crate requires declaring its layer here and in DESIGN.md §6.2.",
        waiver: "never waived — extend the map.",
        run: Run::Workspace(layering::manifest_hygiene),
    },
    Rule {
        id: "waiver-ledger",
        summary: "waivers live in xtask.waivers.toml and must be current and used",
        scope: "xtask.waivers.toml at the workspace root",
        intent: "suppressions are centralised in one reviewed ledger instead of ad-hoc \
                 inline allows. Every entry names a rule, a file (optionally a line span), \
                 a written reason, and optionally an expiry date. `check` fails on a \
                 malformed entry, an expired entry, or an entry that no longer suppresses \
                 anything — so the ledger can only shrink unless a human renews it.",
        waiver: "not applicable — this rule polices the ledger itself.",
        run: Run::Ledger,
    },
];

/// Looks up a rule by id.
pub fn find(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Runs every scan rule over the workspace. Waiver handling happens in
/// the driver, not here.
pub fn run_all(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in &RULES {
        match rule.run {
            Run::PerFile(f) => {
                for file in &ws.files {
                    f(ws, file, &mut out);
                }
            }
            Run::Workspace(f) => f(ws, &mut out),
            Run::Ledger => {}
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Pushes a diagnostic for `file`.
pub(crate) fn push(
    out: &mut Vec<Violation>,
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    msg: String,
) {
    out.push(Violation {
        path: file.path.display().to_string(),
        line,
        rule,
        msg,
    });
}

/// Whether `name` is a library crate (the leaves — cli, bench — and the
/// analyzer itself are not).
pub(crate) fn is_lib_crate(name: &str) -> bool {
    name == "osd" || (name.starts_with("osd-") && !matches!(name, "osd-cli" | "osd-bench"))
}

/// Whether `file` is shipping library code (a lib crate's `src/` tree).
pub(crate) fn in_lib_src(file: &SourceFile) -> bool {
    file.origin == FileOrigin::LibSrc && is_lib_crate(&file.crate_name)
}

/// The dominance kernels where exact float comparison is banned.
pub(crate) fn is_kernel(path: &Path) -> bool {
    const DIRS: &[&str] = &["crates/core/src/ops"];
    const FILES: &[&str] = &[
        "crates/geom/src/dominance.rs",
        "crates/core/src/nnc.rs",
        "crates/core/src/knnc.rs",
    ];
    DIRS.iter().any(|d| path.starts_with(d)) || FILES.iter().any(|f| Path::new(f) == path)
}

/// Hot query paths that must borrow rows from the columnar store.
pub(crate) fn is_hot_path(path: &Path) -> bool {
    const DIRS: &[&str] = &["crates/core/src/ops"];
    const FILES: &[&str] = &["crates/core/src/nnc.rs", "crates/core/src/knnc.rs"];
    DIRS.iter().any(|d| path.starts_with(d)) || FILES.iter().any(|f| Path::new(f) == path)
}

/// In sig-token space: the position of the closing delimiter matching the
/// opening one at `open_p`, or `None` if unbalanced.
pub(crate) fn matching_close(
    file: &SourceFile,
    open_p: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i64;
    for p in open_p..file.sig.len() {
        let t = file.sig_tok(p)?;
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(p);
            }
        }
    }
    None
}

/// Shared helpers for rule unit tests: parse one source string at a
/// virtual path and run the full registry over it.
#[cfg(test)]
pub(crate) mod testutil {
    use super::{run_all, Violation};
    use crate::model::{FileOrigin, SourceFile, Workspace};
    use std::path::PathBuf;

    /// Runs every rule over `src` as if it lived at `path`.
    pub(crate) fn check_src(path: &str, src: &str) -> Vec<Violation> {
        let origin = if path.contains("/tests/") || path.starts_with("tests/") {
            FileOrigin::TestDir
        } else if path.contains("/examples/") || path.starts_with("examples/") {
            FileOrigin::Example
        } else {
            FileOrigin::LibSrc
        };
        let file = SourceFile::parse(PathBuf::from(path), origin, crate_of(path), src);
        let ws = Workspace {
            root: PathBuf::from("."),
            files: vec![file],
            manifests: Vec::new(),
        };
        run_all(&ws)
    }

    /// Maps a virtual path to its crate's package name.
    pub(crate) fn crate_of(path: &str) -> &str {
        let Some(rest) = path.strip_prefix("crates/") else {
            return "osd";
        };
        match rest.split('/').next() {
            Some("geom") => "osd-geom",
            Some("rtree") => "osd-rtree",
            Some("flow") => "osd-flow",
            Some("uncertain") => "osd-uncertain",
            Some("nncore") => "osd-nncore",
            Some("nnfuncs") => "osd-nnfuncs",
            Some("datagen") => "osd-datagen",
            Some("core") => "osd-core",
            Some("obs") => "osd-obs",
            Some("cli") => "osd-cli",
            Some("bench") => "osd-bench",
            _ => "osd",
        }
    }

    /// The rule ids of a diagnostic list, in order.
    pub(crate) fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }
}
