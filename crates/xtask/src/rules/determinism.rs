//! `determinism`: no unordered-iteration containers or thread-identity
//! access in the crates whose output is bit-identical by contract.

use super::{push, Violation};
use crate::model::{SourceFile, Workspace};

/// Crates whose results must not depend on iteration order or thread
/// identity: the geometry/index/model layers and the query engine.
const SCOPED_DIRS: &[&str] = &[
    "crates/geom/src",
    "crates/rtree/src",
    "crates/uncertain/src",
    "crates/core/src",
];

pub(super) fn determinism(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    if !SCOPED_DIRS.iter().any(|d| file.path.starts_with(d)) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        let line = t.line;
        let msg = if t.is_ident("HashMap") || t.is_ident("HashSet") {
            Some(format!(
                "`{}` iterates in random order; use BTreeMap/BTreeSet or a sorted Vec so \
                 Stats::merge and the batch executor stay bit-identical",
                t.text
            ))
        } else if t.is_ident("RandomState") {
            Some(
                "`RandomState` seeds per-process hash order; results must not depend on it"
                    .to_string(),
            )
        } else if t.is_ident("ThreadId") {
            Some("`ThreadId` leaks thread identity into a result-affecting crate".to_string())
        } else if t.is_ident("thread_rng") {
            Some("`thread_rng` is seeded per thread; use the crate's seeded Rng".to_string())
        } else if t.is_ident("thread")
            && file.sig_tok(p + 1).is_some_and(|t| t.is_punct("::"))
            && file.sig_tok(p + 2).is_some_and(|t| t.is_ident("current"))
        {
            Some(
                "`thread::current()` reads thread identity; 1-vs-N-thread runs must be \
                  bit-identical"
                    .to_string(),
            )
        } else {
            None
        };
        if let Some(msg) = msg {
            push(out, file, line, "determinism", msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{check_src, rules};

    #[test]
    fn flags_hash_containers_in_scoped_crates() {
        let v = check_src(
            "crates/geom/src/grid.rs",
            "use std::collections::HashMap;\nfn f() { let _m: HashMap<u32, f64> = HashMap::new(); }\n",
        );
        assert!(rules(&v).iter().all(|r| *r == "determinism"));
        assert_eq!(v.len(), 3, "use + type + ctor each flag: {v:?}");
    }

    #[test]
    fn btree_and_out_of_scope_crates_are_fine() {
        assert!(check_src(
            "crates/geom/src/grid.rs",
            "use std::collections::BTreeMap;\nfn f() { let _m: BTreeMap<u32, f64> = BTreeMap::new(); }\n"
        )
        .is_empty());
        assert!(check_src(
            "crates/nnfuncs/src/lib.rs",
            "use std::collections::HashMap;\n"
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_hash_use_is_exempt() {
        assert!(check_src(
            "crates/uncertain/src/world.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_thread_identity_reads() {
        let v = check_src(
            "crates/core/src/executor.rs",
            "fn f() { let _id = std::thread::current().id(); }\n",
        );
        assert_eq!(rules(&v), vec!["determinism"]);
        // Plain scoped-thread spawning is fine.
        assert!(check_src(
            "crates/core/src/executor.rs",
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n"
        )
        .is_empty());
    }

    #[test]
    fn string_mentions_do_not_flag() {
        assert!(check_src(
            "crates/core/src/report.rs",
            "fn f() -> &'static str { \"HashMap thread::current\" }\n"
        )
        .is_empty());
    }
}
