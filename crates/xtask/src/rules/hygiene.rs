//! Library-hygiene rules: `no-println-in-libs`, `no-panic-allow-in-libs`,
//! `no-rc-in-core` and `no-raw-cow-outside-epoch`.

use super::{in_lib_src, matching_close, push, Violation};
use crate::model::{SourceFile, Workspace};

/// Library crates never print — reporting belongs to the bench/cli
/// leaves. Token-level: the macro name must be a whole identifier
/// followed by `!`, so `println` inside a string or a name like
/// `my_println` can never match.
pub(super) fn no_println_in_libs(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    const BANNED: &[&str] = &["println", "print", "eprintln", "eprint"];
    if !in_lib_src(file) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        if BANNED.iter().any(|m| t.is_ident(m))
            && file.sig_tok(p + 1).is_some_and(|n| n.is_punct("!"))
        {
            push(
                out,
                file,
                t.line,
                "no-println-in-libs",
                format!(
                    "`{}!` in a library crate; return data and let bench/cli report it",
                    t.text
                ),
            );
        }
    }
}

/// Only the bench/cli/example leaves may opt out of the workspace
/// panic-family lints; a crate-level `#![allow(..)]` of them in a library
/// crate defeats the whole gate.
pub(super) fn no_panic_allow_in_libs(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    const GATED: &[&str] = &["unwrap_used", "expect_used", "panic"];
    if !in_lib_src(file) {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        // `#` `!` `[` `allow` `(` … `)` `]`
        let is_seq = file.sig_tok(p).is_some_and(|t| t.is_punct("#"))
            && file.sig_tok(p + 1).is_some_and(|t| t.is_punct("!"))
            && file.sig_tok(p + 2).is_some_and(|t| t.is_punct("["))
            && file.sig_tok(p + 3).is_some_and(|t| t.is_ident("allow"));
        if !is_seq {
            continue;
        }
        let Some(close) = matching_close(file, p + 2, "[", "]") else {
            continue;
        };
        for q in p + 4..close {
            let lint = file
                .sig_tok(q)
                .filter(|t| t.is_ident("clippy"))
                .and_then(|_| file.sig_tok(q + 1).filter(|t| t.is_punct("::")))
                .and_then(|_| file.sig_tok(q + 2))
                .filter(|t| GATED.iter().any(|g| t.is_ident(g)));
            if let Some(l) = lint {
                let name = l.text.clone();
                let line = file.sig_tok(p).map_or(1, |t| t.line);
                push(
                    out,
                    file,
                    line,
                    "no-panic-allow-in-libs",
                    format!(
                        "crate-level `#![allow(clippy::{name})]` in a library crate; only \
                         bench/cli leaves may opt out"
                    ),
                );
            }
        }
    }
}

/// No `Rc` / `std::rc` anywhere in `osd-core`: the parallel batch
/// executor shares the crate's types across worker threads, so shared
/// ownership there must be `Arc`.
pub(super) fn no_rc_in_core(_ws: &Workspace, file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.path.starts_with("crates/core/src") {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        let std_rc = t.is_ident("rc")
            && p >= 2
            && file.sig_tok(p - 1).is_some_and(|t| t.is_punct("::"))
            && file.sig_tok(p - 2).is_some_and(|t| t.is_ident("std"));
        if t.is_ident("Rc") || std_rc {
            push(
                out,
                file,
                t.line,
                "no-rc-in-core",
                "`Rc`/`std::rc` in osd-core; the batch executor shares this crate across \
                 threads — use `Arc`"
                    .into(),
            );
        }
    }
}

/// Copy-on-write splices of the instance store happen only inside
/// `uncertain::epoch` — the module that pairs every splice with an epoch
/// bump and a change-log append. Token-level: the triple `Arc` `::`
/// `make_mut` anywhere else in library code is a mutation the published
/// snapshot chain cannot see.
pub(super) fn no_raw_cow_outside_epoch(
    _ws: &Workspace,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    if !in_lib_src(file) || file.path == std::path::Path::new("crates/uncertain/src/epoch.rs") {
        return;
    }
    for p in 0..file.sig.len() {
        if file.is_test_code(p) {
            continue;
        }
        let Some(t) = file.sig_tok(p) else { break };
        if t.is_ident("Arc")
            && file.sig_tok(p + 1).is_some_and(|n| n.is_punct("::"))
            && file.sig_tok(p + 2).is_some_and(|n| n.is_ident("make_mut"))
        {
            push(
                out,
                file,
                t.line,
                "no-raw-cow-outside-epoch",
                "`Arc::make_mut` outside uncertain::epoch; route the splice through \
                 epoch::append/remove/replace so the epoch log records it"
                    .into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{check_src, rules};

    #[test]
    fn flags_println_but_not_in_strings_or_tests() {
        let v = check_src("crates/flow/src/lib.rs", "fn f() { println!(\"x\"); }\n");
        assert_eq!(rules(&v), vec!["no-println-in-libs"]);
        let ok = "fn f() { let _ = \"println!\"; }\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"debug\"); }\n}\n";
        assert!(check_src("crates/flow/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn println_split_across_lines_is_still_flagged() {
        let v = check_src(
            "crates/flow/src/lib.rs",
            "fn f() {\n    println\n        !(\"x\");\n}\n",
        );
        assert_eq!(rules(&v), vec!["no-println-in-libs"]);
    }

    #[test]
    fn println_fine_in_cli_and_examples() {
        assert!(check_src("crates/cli/src/main.rs", "fn f() { println!(\"x\"); }\n").is_empty());
        assert!(check_src("examples/quickstart.rs", "fn f() { println!(\"x\"); }\n").is_empty());
    }

    #[test]
    fn flags_crate_level_panic_allow() {
        let v = check_src(
            "crates/rtree/src/lib.rs",
            "#![allow(clippy::unwrap_used)]\nfn f() {}\n",
        );
        assert_eq!(rules(&v), vec!["no-panic-allow-in-libs"]);
        assert!(check_src(
            "crates/rtree/src/lib.rs",
            "#![allow(clippy::module_name_repetitions)]\nfn f() {}\n"
        )
        .is_empty());
        // `clippy::panic` must not also match `panic_in_result_fn`.
        assert!(check_src(
            "crates/rtree/src/lib.rs",
            "#![allow(clippy::panic_in_result_fn)]\nfn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn multiline_allow_attribute_is_flagged() {
        let v = check_src(
            "crates/rtree/src/lib.rs",
            "#![allow(\n    clippy::module_name_repetitions,\n    clippy::expect_used,\n)]\nfn f() {}\n",
        );
        assert_eq!(rules(&v), vec!["no-panic-allow-in-libs"]);
    }

    #[test]
    fn flags_rc_in_core_but_not_arc() {
        let v = check_src(
            "crates/core/src/cache.rs",
            "use std::rc::Rc;\nfn f() { let _x: Rc<u8> = Rc::new(1); }\n",
        );
        assert!(rules(&v).iter().all(|r| *r == "no-rc-in-core"));
        // Token-level: `std::rc` and each `Rc` mention flag individually
        // (two on the use line, two in the body).
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(check_src(
            "crates/core/src/cache.rs",
            "use std::sync::Arc;\nfn f() { let _x: Arc<u8> = Arc::new(1); }\nfn g(marc: usize) -> usize { marc }\n",
        )
        .is_empty());
        assert!(check_src("crates/rtree/src/lib.rs", "use std::rc::Rc;\n").is_empty());
        assert!(check_src(
            "crates/core/src/cache.rs",
            "#[cfg(test)]\nmod tests {\n    use std::rc::Rc;\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn flags_raw_cow_outside_epoch_only() {
        let bad = "fn f(s: &mut Arc<InstanceStore>) { Arc::make_mut(s).push(1.0); }\n";
        let v = check_src("crates/uncertain/src/store.rs", bad);
        assert_eq!(rules(&v), vec!["no-raw-cow-outside-epoch"]);
        // The sanctioned site, the leaves, and test code are exempt.
        assert!(check_src("crates/uncertain/src/epoch.rs", bad).is_empty());
        assert!(check_src("crates/cli/src/commands.rs", bad).is_empty());
        assert!(check_src(
            "crates/core/src/db.rs",
            "#[cfg(test)]\nmod tests {\n    fn g(s: &mut Arc<u8>) { Arc::make_mut(s); }\n}\n",
        )
        .is_empty());
        // `make_mut` on something other than `Arc` is out of scope.
        assert!(check_src(
            "crates/core/src/db.rs",
            "fn f(s: &mut Cow<str>) { Cow::make_mut(s); s.make_mut(); }\n",
        )
        .is_empty());
    }
}
