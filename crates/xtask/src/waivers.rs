//! The waiver ledger: `xtask.waivers.toml` at the workspace root.
//!
//! Suppressions are centralised in one reviewed file instead of ad-hoc
//! inline allows. Every entry names a rule, a path, a written reason, and
//! optionally a line span and an expiry date:
//!
//! ```toml
//! [[waiver]]
//! rule = "no-float-eq-in-kernels"
//! path = "crates/core/src/ops/ssd.rs"
//! lines = "40-55"            # optional: "N" or "N-M"; omit for whole file
//! reason = "comparison over the ±inf sentinel bounds, proven exact"
//! expires = "2026-12-31"     # optional ISO date; omit for permanent
//! ```
//!
//! `check` fails on a malformed entry, an **expired** entry (which also
//! stops suppressing, forcing renewal), and an **unused** entry (one that
//! suppresses nothing) — the ledger can only shrink unless a human renews
//! it. All ledger diagnostics carry the rule id `waiver-ledger`.

use crate::rules::{self, Violation};
use std::time::{SystemTime, UNIX_EPOCH};

/// One parsed ledger entry.
#[derive(Debug)]
pub struct Waiver {
    /// Rule id this entry suppresses.
    pub rule: String,
    /// Path (relative to the scan root) the waiver applies to.
    pub path: String,
    /// Optional inclusive 1-based line span.
    pub lines: Option<(usize, usize)>,
    /// Written justification (required).
    pub reason: String,
    /// Optional ISO `YYYY-MM-DD` expiry; the waiver is valid through that
    /// date.
    pub expires: Option<String>,
    /// Line of the `[[waiver]]` header in the ledger, for diagnostics.
    pub ledger_line: usize,
}

/// The parsed ledger.
#[derive(Debug, Default)]
pub struct Ledger {
    /// Entries in file order.
    pub waivers: Vec<Waiver>,
}

/// Parses ledger text. Malformed entries become `waiver-ledger`
/// diagnostics anchored at `ledger_path`; well-formed entries parse into
/// the returned [`Ledger`].
pub fn parse(ledger_path: &str, text: &str) -> (Ledger, Vec<Violation>) {
    let mut ledger = Ledger::default();
    let mut diags = Vec::new();
    let mut current: Option<Waiver> = None;
    let bad = |diags: &mut Vec<Violation>, line: usize, msg: String| {
        diags.push(Violation {
            path: ledger_path.to_string(),
            line,
            rule: "waiver-ledger",
            msg,
        });
    };
    let finish = |w: Option<Waiver>, diags: &mut Vec<Violation>, ledger: &mut Ledger| {
        let Some(w) = w else { return };
        if w.rule.is_empty() || w.path.is_empty() || w.reason.is_empty() {
            bad(
                diags,
                w.ledger_line,
                "waiver entry is missing a required key (rule, path, reason)".to_string(),
            );
            return;
        }
        if rules::find(&w.rule).is_none() {
            bad(
                diags,
                w.ledger_line,
                format!("waiver names unknown rule `{}`", w.rule),
            );
            return;
        }
        ledger.waivers.push(w);
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            finish(current.take(), &mut diags, &mut ledger);
            current = Some(Waiver {
                rule: String::new(),
                path: String::new(),
                lines: None,
                reason: String::new(),
                expires: None,
                ledger_line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            bad(
                &mut diags,
                lineno,
                format!("unparseable ledger line: `{line}`"),
            );
            continue;
        };
        // Strip a trailing end-of-line comment outside the quoted value.
        let value = value.trim();
        let value = value
            .rfind('"')
            .map_or(value, |q| &value[..=q])
            .trim()
            .trim_matches('"')
            .to_string();
        let Some(w) = current.as_mut() else {
            bad(
                &mut diags,
                lineno,
                "key outside a [[waiver]] table".to_string(),
            );
            continue;
        };
        match key.trim() {
            "rule" => w.rule = value,
            "path" => w.path = value,
            "reason" => w.reason = value,
            "expires" => {
                if valid_date(&value) {
                    w.expires = Some(value);
                } else {
                    bad(
                        &mut diags,
                        lineno,
                        format!("`expires = \"{value}\"` is not an ISO YYYY-MM-DD date"),
                    );
                }
            }
            "lines" => match parse_span(&value) {
                Some(span) => w.lines = Some(span),
                None => bad(
                    &mut diags,
                    lineno,
                    format!("`lines = \"{value}\"` is not \"N\" or \"N-M\""),
                ),
            },
            other => bad(&mut diags, lineno, format!("unknown waiver key `{other}`")),
        }
    }
    finish(current.take(), &mut diags, &mut ledger);
    (ledger, diags)
}

fn parse_span(value: &str) -> Option<(usize, usize)> {
    if let Some((a, b)) = value.split_once('-') {
        let (a, b) = (a.trim().parse().ok()?, b.trim().parse().ok()?);
        (a <= b && a > 0).then_some((a, b))
    } else {
        let n: usize = value.trim().parse().ok()?;
        (n > 0).then_some((n, n))
    }
}

fn valid_date(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return false;
    }
    let digits = |r: std::ops::Range<usize>| b[r].iter().all(u8::is_ascii_digit);
    if !(digits(0..4) && digits(5..7) && digits(8..10)) {
        return false;
    }
    let num = |r: std::ops::Range<usize>| s[r].parse::<u32>().unwrap_or(0);
    (1..=12).contains(&num(5..7)) && (1..=31).contains(&num(8..10))
}

/// Applies the ledger to a diagnostic list. Returns the surviving
/// diagnostics (suppressed ones removed, ledger diagnostics appended) and
/// the number of entries that suppressed something. `today` is an ISO
/// date; entries with `expires < today` are expired — they stop
/// suppressing and produce a diagnostic.
pub fn apply(
    ledger: &Ledger,
    ledger_path: &str,
    today: &str,
    diags: Vec<Violation>,
) -> (Vec<Violation>, usize) {
    let mut used = vec![false; ledger.waivers.len()];
    let expired: Vec<bool> = ledger
        .waivers
        .iter()
        .map(|w| w.expires.as_deref().is_some_and(|e| e < today))
        .collect();
    let mut kept: Vec<Violation> = Vec::new();
    for v in diags {
        let hit = ledger.waivers.iter().enumerate().find(|(i, w)| {
            !expired[*i]
                && w.rule == v.rule
                && w.path == v.path
                && w.lines.is_none_or(|(a, b)| a <= v.line && v.line <= b)
        });
        match hit {
            Some((i, _)) => used[i] = true,
            None => kept.push(v),
        }
    }
    let used_count = used.iter().filter(|u| **u).count();
    for (i, w) in ledger.waivers.iter().enumerate() {
        if expired[i] {
            kept.push(Violation {
                path: ledger_path.to_string(),
                line: w.ledger_line,
                rule: "waiver-ledger",
                msg: format!(
                    "waiver for `{}` on {} expired {}; renew it with a fresh review or \
                     fix the code",
                    w.rule,
                    w.path,
                    w.expires.as_deref().unwrap_or("")
                ),
            });
        } else if !used[i] {
            kept.push(Violation {
                path: ledger_path.to_string(),
                line: w.ledger_line,
                rule: "waiver-ledger",
                msg: format!(
                    "waiver for `{}` on {} suppresses nothing; delete the stale entry",
                    w.rule, w.path
                ),
            });
        }
    }
    (kept, used_count)
}

/// Today's UTC date as ISO `YYYY-MM-DD`, derived from the system clock
/// with Howard Hinnant's civil-from-days algorithm (std-only).
pub fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = i64::try_from(secs / 86_400).unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    (y, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::{apply, civil_from_days, parse, valid_date};
    use crate::rules::Violation;

    const LEDGER: &str = "xtask.waivers.toml";

    fn violation(path: &str, line: usize, rule: &'static str) -> Violation {
        Violation {
            path: path.to_string(),
            line,
            rule,
            msg: "x".to_string(),
        }
    }

    #[test]
    fn parses_full_entry() {
        let (l, d) = parse(
            LEDGER,
            "# comment\n[[waiver]]\nrule = \"no-println-in-libs\"\npath = \"crates/flow/src/lib.rs\"\nlines = \"3-9\"\nreason = \"staged refactor\"\nexpires = \"2027-01-31\"\n",
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(l.waivers.len(), 1);
        assert_eq!(l.waivers[0].lines, Some((3, 9)));
        assert_eq!(l.waivers[0].expires.as_deref(), Some("2027-01-31"));
    }

    #[test]
    fn rejects_unknown_rule_and_missing_reason() {
        let (l, d) = parse(
            LEDGER,
            "[[waiver]]\nrule = \"no-such-rule\"\npath = \"x.rs\"\nreason = \"r\"\n[[waiver]]\nrule = \"no-println-in-libs\"\npath = \"x.rs\"\n",
        );
        assert!(l.waivers.is_empty());
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].msg.contains("unknown rule"));
        assert!(d[1].msg.contains("missing a required key"));
    }

    #[test]
    fn rejects_bad_dates_and_spans() {
        let (_, d) = parse(
            LEDGER,
            "[[waiver]]\nrule = \"no-println-in-libs\"\npath = \"x.rs\"\nreason = \"r\"\nexpires = \"31/01/2027\"\nlines = \"9-3\"\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn active_waiver_suppresses_and_counts_used() {
        let (l, d) = parse(
            LEDGER,
            "[[waiver]]\nrule = \"no-println-in-libs\"\npath = \"crates/flow/src/lib.rs\"\nreason = \"r\"\nexpires = \"2026-12-31\"\n",
        );
        assert!(d.is_empty());
        let diags = vec![
            violation("crates/flow/src/lib.rs", 7, "no-println-in-libs"),
            violation("crates/flow/src/lib.rs", 7, "determinism"),
        ];
        let (kept, used) = apply(&l, LEDGER, "2026-08-08", diags);
        assert_eq!(used, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "determinism");
    }

    #[test]
    fn expired_waiver_stops_suppressing_and_fails() {
        let (l, _) = parse(
            LEDGER,
            "[[waiver]]\nrule = \"no-println-in-libs\"\npath = \"crates/flow/src/lib.rs\"\nreason = \"r\"\nexpires = \"2026-01-01\"\n",
        );
        let diags = vec![violation("crates/flow/src/lib.rs", 7, "no-println-in-libs")];
        let (kept, used) = apply(&l, LEDGER, "2026-08-08", diags);
        assert_eq!(used, 0);
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(kept.iter().any(|v| v.msg.contains("expired")));
    }

    #[test]
    fn unused_waiver_fails() {
        let (l, _) = parse(
            LEDGER,
            "[[waiver]]\nrule = \"no-println-in-libs\"\npath = \"crates/flow/src/lib.rs\"\nreason = \"r\"\n",
        );
        let (kept, used) = apply(&l, LEDGER, "2026-08-08", Vec::new());
        assert_eq!(used, 0);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].msg.contains("suppresses nothing"));
    }

    #[test]
    fn span_bounds_are_inclusive() {
        let (l, _) = parse(
            LEDGER,
            "[[waiver]]\nrule = \"determinism\"\npath = \"a.rs\"\nlines = \"5-6\"\nreason = \"r\"\n",
        );
        let diags = vec![
            violation("a.rs", 4, "determinism"),
            violation("a.rs", 5, "determinism"),
            violation("a.rs", 6, "determinism"),
            violation("a.rs", 7, "determinism"),
        ];
        let (kept, used) = apply(&l, LEDGER, "2026-08-08", diags);
        assert_eq!(used, 1);
        let lines: Vec<usize> = kept.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![4, 7]);
    }

    #[test]
    fn civil_date_math() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
        assert!(valid_date("2026-02-28"));
        assert!(!valid_date("2026-13-01"));
        assert!(!valid_date("2026-2-28"));
    }
}
