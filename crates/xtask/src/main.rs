//! `xtask` — repo-specific developer tooling.
//!
//! The only subcommand today is `check`, a std-only source scanner that
//! enforces rules the stock lint stack cannot express (see
//! `DESIGN.md`, "Static analysis & invariants"):
//!
//! 1. **`no-partial-cmp-unwrap`** — distance orderings must use
//!    `f64::total_cmp`, never `partial_cmp(..).unwrap()` /
//!    `partial_cmp(..).expect(..)`, which panic on NaN.
//! 2. **`no-float-eq-in-kernels`** — no `==` / `!=` on floating-point
//!    values inside the dominance kernels (`geom::dominance`,
//!    `core::ops`, and the `core::nnc` / `core::knnc` traversal heaps):
//!    exact float equality there silently changes the operators' tie
//!    semantics, or makes a heap's `Eq` disagree with its `Ord`.
//! 3. **`doc-cites-paper`** — every `pub fn` in `core::ops` must carry a
//!    doc comment citing the paper construct it implements (a
//!    Definition / Theorem / Lemma / Algorithm / § reference).
//! 4. **`no-println-in-libs`** — library crates never print; reporting
//!    belongs to the bench/cli leaves.
//! 5. **`no-panic-allow-in-libs`** — only the bench/cli/example leaves
//!    may opt out of the workspace panic-family lints with crate-level
//!    `#![allow(..)]`; library crates may not.
//! 6. **`no-rc-in-core`** — no `Rc` / `std::rc` anywhere in `osd-core`:
//!    the parallel batch executor shares the crate's types across worker
//!    threads, so shared ownership there must be `Arc`.
//! 7. **`no-owned-points-in-hot-paths`** — the dominance kernels and the
//!    NNC/k-NNC traversals borrow rows from the columnar instance store;
//!    `.points()` / `.to_vec(` there allocates per dominance check.
//! 8. **`no-ad-hoc-timing`** — no raw `Instant` / `SystemTime` in
//!    `osd-core` / `osd-geom` / `osd-rtree`: wall-clock access goes
//!    through `osd-obs` (`Stopwatch` / `PhaseTimer` / `Span`), so the
//!    obs-disabled build is clock-free by construction.
//!
//! Diagnostics are `file:line: [rule] message` lines on stdout; the exit
//! status is nonzero iff any violation was found.
//!
//! ```text
//! cargo run -p xtask -- check [--root <path>]
//! ```

mod checks;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: cargo run -p xtask -- check [--root <path>]");
        return ExitCode::FAILURE;
    };
    if cmd != "check" {
        eprintln!("unknown subcommand `{cmd}`; expected `check`");
        return ExitCode::FAILURE;
    }
    let mut root = PathBuf::from(".");
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // A wrong --root would otherwise scan zero files and "pass".
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "xtask check: `{}` is not a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    match checks::run_all(&root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("xtask check: ok");
                ExitCode::SUCCESS
            } else {
                println!("xtask check: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask check: {e}");
            ExitCode::FAILURE
        }
    }
}
