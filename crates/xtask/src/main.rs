//! `xtask` — repo-specific developer tooling.
//!
//! ```text
//! cargo run -p xtask -- check [--root <path>] [--format human|json]
//! cargo run -p xtask -- explain <rule>
//! cargo run -p xtask -- list
//! ```
//!
//! `check` lexes every scanned source file into a Rust token stream and
//! runs the full rule registry over it (see `xtask::rules` or DESIGN.md
//! §6.2 for the rules and their intent). Diagnostics print as
//! `file:line: [rule] message` lines (or one JSON object with
//! `--format json`); the exit status is nonzero iff any diagnostic
//! survives the waiver ledger. `explain <rule>` prints a rule's scope,
//! intent and waiver policy straight from the registry.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{driver, rules};

const USAGE: &str = "usage: cargo run -p xtask -- <command>\n\
commands:\n  \
  check [--root <path>] [--format human|json] [--explain <rule>]\n  \
  explain <rule>\n  \
  list";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "check" => run_check(args),
        "explain" => match args.next() {
            Some(rule) => explain(&rule),
            None => {
                eprintln!("explain needs a rule id; `list` shows them all");
                ExitCode::FAILURE
            }
        },
        "list" => {
            for rule in rules::registry() {
                println!("{:<28} {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_check(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--format" => match args.next().as_deref() {
                Some("human") => json = false,
                Some("json") => json = true,
                _ => {
                    eprintln!("--format needs `human` or `json`");
                    return ExitCode::FAILURE;
                }
            },
            "--explain" => {
                return match args.next() {
                    Some(rule) => explain(&rule),
                    None => {
                        eprintln!("--explain needs a rule id; `list` shows them all");
                        ExitCode::FAILURE
                    }
                };
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    // A wrong --root would otherwise scan zero files and "pass".
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "xtask check: `{}` is not a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    match driver::run_check(&root) {
        Ok(report) => {
            if json {
                print!("{}", driver::render_json(&report));
            } else {
                print!("{}", driver::render_human(&report));
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn explain(rule_id: &str) -> ExitCode {
    match rules::find(rule_id) {
        Some(rule) => {
            print!("{}", driver::render_explain(rule));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "unknown rule `{rule_id}`; `list` shows all {}",
                rules::registry().len()
            );
            ExitCode::FAILURE
        }
    }
}
