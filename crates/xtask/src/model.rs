//! The source model the rules run against: token streams with structural
//! context, plus the workspace view (scanned files + parsed manifests)
//! that the cross-crate rules need.
//!
//! A [`SourceFile`] is a lexed token stream with a parallel flags vector
//! marking, for every token, whether it sits inside a `#[cfg(test)]`
//! item, a `#[cfg(feature = "obs")]` item, or a `macro_rules!` body, and
//! a record of the `mod` path at every point. A [`Workspace`] bundles all
//! scanned files with the parsed `Cargo.toml` manifests so rules can
//! reason across crate boundaries (the layering DAG, dev-dependency
//! allowances for test code).

use crate::lexer::{lex, Kind, Token};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Token flag: inside a `#[cfg(test)]`-gated item.
pub const IN_TEST: u8 = 1;
/// Token flag: inside a `#[cfg(feature = "obs")]`-gated item or block.
pub const IN_OBS_CFG: u8 = 2;
/// Token flag: inside a `macro_rules! { … }` definition body.
pub const IN_MACRO_DEF: u8 = 4;

/// Where a scanned file lives, which decides the rule set applied to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileOrigin {
    /// A library `src/` tree (root facade or `crates/*/src`).
    LibSrc,
    /// An integration-test tree (`tests/` or `crates/*/tests`).
    TestDir,
    /// An example (`examples/` or `crates/*/examples`).
    Example,
}

/// A module-path region: tokens `start..end` live in module `path`.
#[derive(Debug)]
pub struct ModSpan {
    /// First token index of the module body.
    pub start: usize,
    /// One past the last token index of the module body.
    pub end: usize,
    /// Full `::`-joined module path from the crate root.
    pub path: String,
}

/// A lexed and structurally annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scan root.
    pub path: PathBuf,
    /// Which tree the file was found in.
    pub origin: FileOrigin,
    /// The package (Cargo) name of the owning crate, e.g. `osd-core`.
    pub crate_name: String,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-token context flags (`IN_TEST` / `IN_OBS_CFG` / `IN_MACRO_DEF`).
    pub flags: Vec<u8>,
    /// Indices of the significant (non-comment) tokens, in order.
    pub sig: Vec<usize>,
    /// Module-path spans, innermost-last for nested modules.
    pub mods: Vec<ModSpan>,
}

impl SourceFile {
    /// Lexes and annotates `text` as the file `path`.
    pub fn parse(path: PathBuf, origin: FileOrigin, crate_name: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let (flags, mods) = annotate(&tokens);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        SourceFile {
            path,
            origin,
            crate_name: crate_name.to_string(),
            tokens,
            flags,
            sig,
            mods,
        }
    }

    /// The significant token at sig-position `p`, if any.
    pub fn sig_tok(&self, p: usize) -> Option<&Token> {
        self.sig.get(p).map(|&i| &self.tokens[i])
    }

    /// The context flags of the significant token at sig-position `p`.
    pub fn sig_flags(&self, p: usize) -> u8 {
        self.sig.get(p).map_or(0, |&i| self.flags[i])
    }

    /// The innermost module path containing token index `idx`, or `""`
    /// for the crate root.
    pub fn module_path(&self, idx: usize) -> &str {
        self.mods
            .iter()
            .rfind(|m| m.start <= idx && idx < m.end)
            .map_or("", |m| m.path.as_str())
    }

    /// Whether the token at sig-position `p` is exempt as test code: in a
    /// `#[cfg(test)]` item, or anywhere in an integration-test file.
    pub fn is_test_code(&self, p: usize) -> bool {
        self.origin == FileOrigin::TestDir || self.sig_flags(p) & IN_TEST != 0
    }
}

/// Computes per-token context flags and module spans.
fn annotate(tokens: &[Token]) -> (Vec<u8>, Vec<ModSpan>) {
    struct Region {
        floor: i64,
        flag: u8,
    }
    let mut flags = vec![0u8; tokens.len()];
    let mut mods: Vec<ModSpan> = Vec::new();
    let mut open_mods: Vec<(i64, usize, String)> = Vec::new(); // (floor, start, path)
    let mut path_stack: Vec<String> = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending: u8 = 0;
    let mut pending_depth: i64 = 0;
    let mut pending_mod: Option<String> = None;
    let mut pending_macro = false;

    let mut i = 0;
    while i < tokens.len() {
        let active = regions.iter().fold(pending, |a, r| a | r.flag);
        flags[i] = active;
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        // Outer attribute: `#[ … ]` (also tolerate inner `#![ … ]`).
        if t.is_punct("#") {
            let mut j = i + 1;
            while tokens.get(j).is_some_and(Token::is_comment) {
                j += 1;
            }
            let inner = tokens.get(j).is_some_and(|t| t.is_punct("!"));
            if inner {
                j += 1;
                while tokens.get(j).is_some_and(Token::is_comment) {
                    j += 1;
                }
            }
            if tokens.get(j).is_some_and(|t| t.is_punct("[")) {
                let close = matching_bracket(tokens, j);
                let body = &tokens[j + 1..close.min(tokens.len())];
                if !inner {
                    pending |= cfg_flags(body);
                    pending_depth = depth;
                }
                for k in i..close.min(tokens.len()) + 1 {
                    if let Some(f) = flags.get_mut(k) {
                        *f = active;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        match (t.kind, t.text.as_str()) {
            (Kind::Ident, "mod") => {
                if let Some(name) = next_sig(tokens, i + 1)
                    .filter(|&n| tokens[n].kind == Kind::Ident)
                    .filter(|&n| next_sig(tokens, n + 1).is_some_and(|b| tokens[b].is_punct("{")))
                {
                    pending_mod = Some(tokens[name].text.clone());
                }
            }
            (Kind::Ident, "macro_rules") => {
                pending_macro = true;
            }
            (Kind::Punct, "{") => {
                depth += 1;
                if pending != 0 {
                    regions.push(Region {
                        floor: depth - 1,
                        flag: pending,
                    });
                    pending = 0;
                }
                if pending_macro {
                    regions.push(Region {
                        floor: depth - 1,
                        flag: IN_MACRO_DEF,
                    });
                    pending_macro = false;
                }
                if let Some(name) = pending_mod.take() {
                    path_stack.push(name);
                    open_mods.push((depth - 1, i + 1, path_stack.join("::")));
                }
            }
            (Kind::Punct, "}") => {
                depth -= 1;
                regions.retain(|r| r.floor < depth);
                while open_mods.last().is_some_and(|(f, _, _)| *f >= depth) {
                    if let Some((_, start, path)) = open_mods.pop() {
                        path_stack.pop();
                        mods.push(ModSpan {
                            start,
                            end: i,
                            path,
                        });
                    }
                }
            }
            (Kind::Punct, ";") => {
                // An attribute-carrying item without a body (`mod x;`,
                // `use …;`) ends at the first `;` back at its depth.
                if pending != 0 && depth == pending_depth {
                    pending = 0;
                }
                pending_mod = None;
            }
            _ => {}
        }
        i += 1;
    }
    mods.sort_by_key(|m| m.start);
    (flags, mods)
}

/// The index of the `]` matching the `[` at `open` (token index), or the
/// stream length if unbalanced.
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len()
}

/// The next non-comment token index at or after `from`.
fn next_sig(tokens: &[Token], from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&k| !tokens[k].is_comment())
}

/// Flags contributed by one attribute body: `cfg(test)` and
/// `cfg(feature = "obs")` (also matched inside `cfg(all(…))` / `any(…)`).
fn cfg_flags(body: &[Token]) -> u8 {
    if !body.first().is_some_and(|t| t.is_ident("cfg")) {
        return 0;
    }
    let mut flags = 0;
    for (k, t) in body.iter().enumerate() {
        if t.is_ident("test") {
            flags |= IN_TEST;
        }
        if t.is_ident("feature")
            && body.get(k + 1).is_some_and(|t| t.is_punct("="))
            && body
                .get(k + 2)
                .is_some_and(|t| t.kind == Kind::Str && t.text == "\"obs\"")
        {
            flags |= IN_OBS_CFG;
        }
    }
    flags
}

/// One parsed dependency entry.
#[derive(Debug)]
pub struct Dep {
    /// Package name as written on the left-hand side.
    pub name: String,
    /// 1-based line in the manifest.
    pub line: usize,
}

/// A minimally parsed `Cargo.toml` (package name + dependency names with
/// line numbers — all the layering rule needs).
#[derive(Debug)]
pub struct Manifest {
    /// Manifest path relative to the scan root.
    pub path: PathBuf,
    /// `package.name`, e.g. `osd-core`.
    pub name: String,
    /// `[dependencies]` entries.
    pub deps: Vec<Dep>,
    /// `[dev-dependencies]` entries.
    pub dev_deps: Vec<Dep>,
}

impl Manifest {
    /// Parses manifest text. This is a deliberately small TOML subset:
    /// section headers, `name = "…"` under `[package]`, and the key names
    /// of dependency entries (both `foo = …` and `[dependencies.foo]`).
    pub fn parse(path: PathBuf, text: &str) -> Manifest {
        #[derive(PartialEq)]
        enum Section {
            Package,
            Deps,
            DevDeps,
            Other,
        }
        let mut section = Section::Other;
        let mut name = String::new();
        let mut deps = Vec::new();
        let mut dev_deps = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                let header = line.trim_matches(|c| c == '[' || c == ']');
                section = match header {
                    "package" => Section::Package,
                    "dependencies" => Section::Deps,
                    "dev-dependencies" => Section::DevDeps,
                    other => {
                        if let Some(dep) = other.strip_prefix("dependencies.") {
                            deps.push(Dep {
                                name: dep.to_string(),
                                line: i + 1,
                            });
                        } else if let Some(dep) = other.strip_prefix("dev-dependencies.") {
                            dev_deps.push(Dep {
                                name: dep.to_string(),
                                line: i + 1,
                            });
                        }
                        Section::Other
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            match section {
                Section::Package if key == "name" => {
                    name = value.trim().trim_matches('"').to_string();
                }
                Section::Deps => deps.push(Dep {
                    name: key.to_string(),
                    line: i + 1,
                }),
                Section::DevDeps => dev_deps.push(Dep {
                    name: key.to_string(),
                    line: i + 1,
                }),
                _ => {}
            }
        }
        Manifest {
            path,
            name,
            deps,
            dev_deps,
        }
    }
}

/// The whole scanned workspace: every source file the rules see, plus the
/// parsed manifests.
#[derive(Debug)]
pub struct Workspace {
    /// Scan root (the workspace root).
    pub root: PathBuf,
    /// All scanned files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Root manifest first, then `crates/*` manifests, sorted by path.
    pub manifests: Vec<Manifest>,
}

/// Directories under a package root that are scanned.
const PKG_TREES: &[(&str, FileOrigin)] = &[
    ("src", FileOrigin::LibSrc),
    ("tests", FileOrigin::TestDir),
    ("examples", FileOrigin::Example),
];

impl Workspace {
    /// Walks `root` and loads every Rust source under the scan roots: the
    /// root package's `src/`, `tests/` and `examples/` trees plus the same
    /// trees of every `crates/*` member. The analyzer's own crate
    /// (`crates/xtask`, which carries the seeded-violation fixture corpus)
    /// and the vendored shims are excluded.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        if let Some(m) = load_manifest(root, Path::new("Cargo.toml"))? {
            manifests.push(m);
        }
        let root_pkg = manifests
            .first()
            .map_or_else(String::new, |m| m.name.clone());
        load_package(root, Path::new(""), &root_pkg, &mut files)?;
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            members.sort();
            for member in members {
                let rel = member.strip_prefix(root).unwrap_or(&member).to_path_buf();
                if rel.ends_with("xtask") {
                    continue;
                }
                let Some(m) = load_manifest(root, &rel.join("Cargo.toml"))? else {
                    continue;
                };
                let name = m.name.clone();
                manifests.push(m);
                load_package(root, &rel, &name, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        manifests.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            manifests,
        })
    }

    /// The manifest of package `name`, if scanned.
    pub fn manifest(&self, name: &str) -> Option<&Manifest> {
        self.manifests.iter().find(|m| m.name == name)
    }
}

fn load_manifest(root: &Path, rel: &Path) -> io::Result<Option<Manifest>> {
    let abs = root.join(rel);
    if !abs.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(&abs)?;
    Ok(Some(Manifest::parse(rel.to_path_buf(), &text)))
}

fn load_package(
    root: &Path,
    pkg_rel: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for (tree, origin) in PKG_TREES {
        let dir = root.join(pkg_rel).join(tree);
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&dir, &mut paths)?;
        for abs in paths {
            let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
            let text = fs::read_to_string(&abs)?;
            out.push(SourceFile::parse(rel, *origin, crate_name, &text));
        }
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), FileOrigin::LibSrc, "osd-test", src)
    }

    fn flags_of(file: &SourceFile, ident: &str) -> u8 {
        let idx = file
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or(usize::MAX);
        file.flags[idx]
    }

    #[test]
    fn cfg_test_marks_whole_item() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { inner(); }\n}\nfn c() {}\n";
        let f = parse(src);
        assert_eq!(flags_of(&f, "a") & IN_TEST, 0);
        assert_ne!(flags_of(&f, "inner") & IN_TEST, 0);
        assert_eq!(flags_of(&f, "c") & IN_TEST, 0);
    }

    #[test]
    fn cfg_test_fn_without_mod() {
        let src = "#[cfg(test)]\nfn helper() { x(); }\nfn real() { y(); }\n";
        let f = parse(src);
        assert_ne!(flags_of(&f, "x") & IN_TEST, 0);
        assert_eq!(flags_of(&f, "y") & IN_TEST, 0);
    }

    #[test]
    fn cfg_test_use_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::rc::Rc;\nfn real() { y(); }\n";
        let f = parse(src);
        assert_ne!(flags_of(&f, "Rc") & IN_TEST, 0);
        assert_eq!(flags_of(&f, "y") & IN_TEST, 0);
    }

    #[test]
    fn cfg_obs_feature_marks_block() {
        let src = "#[cfg(feature = \"obs\")]\nfn probe() { o(); }\n#[cfg(feature = \"other\")]\nfn other() { p(); }\n";
        let f = parse(src);
        assert_ne!(flags_of(&f, "o") & IN_OBS_CFG, 0);
        assert_eq!(flags_of(&f, "p") & IN_OBS_CFG, 0);
    }

    #[test]
    fn cfg_obs_inside_all_matches() {
        let src = "#[cfg(all(feature = \"obs\", test))]\nfn probe() { o(); }\n";
        let f = parse(src);
        assert_ne!(flags_of(&f, "o") & IN_OBS_CFG, 0);
        assert_ne!(flags_of(&f, "o") & IN_TEST, 0);
    }

    #[test]
    fn macro_bodies_are_flagged() {
        let src = "macro_rules! m {\n    () => { pub fn gen() {} };\n}\nfn outside() {}\n";
        let f = parse(src);
        assert_ne!(flags_of(&f, "gen") & IN_MACRO_DEF, 0);
        assert_eq!(flags_of(&f, "outside") & IN_MACRO_DEF, 0);
    }

    #[test]
    fn module_paths_nest() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\nfn top() {}\n";
        let f = parse(src);
        let at = |ident: &str| {
            f.tokens
                .iter()
                .position(|t| t.is_ident(ident))
                .unwrap_or(usize::MAX)
        };
        assert_eq!(f.module_path(at("deep")), "outer::inner");
        assert_eq!(f.module_path(at("shallow")), "outer");
        assert_eq!(f.module_path(at("top")), "");
    }

    #[test]
    fn stacked_attributes_keep_cfg() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { q(); } }\n";
        let f = parse(src);
        assert_ne!(flags_of(&f, "q") & IN_TEST, 0);
    }

    #[test]
    fn manifest_parses_names_and_deps() {
        let m = Manifest::parse(
            PathBuf::from("crates/x/Cargo.toml"),
            "[package]\nname = \"osd-x\"\n\n[dependencies]\nosd-geom = { path = \"../geom\" }\nrand = { workspace = true }\n\n[dev-dependencies]\nproptest = { workspace = true }\n",
        );
        assert_eq!(m.name, "osd-x");
        let deps: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(deps, vec!["osd-geom", "rand"]);
        assert_eq!(m.dev_deps.len(), 1);
        assert_eq!(m.deps[0].line, 5);
    }
}
