//! The check driver: load the workspace, run every rule, apply the
//! waiver ledger, and render the report (human or JSON).

use crate::model::Workspace;
use crate::rules::{self, Violation};
use crate::waivers;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Relative path of the waiver ledger at the scan root.
pub const LEDGER_PATH: &str = "xtask.waivers.toml";

/// The outcome of one full `check` run.
#[derive(Debug)]
pub struct CheckReport {
    /// Number of Rust source files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
    /// Surviving diagnostics (waived ones removed, ledger problems added),
    /// sorted by path/line/rule.
    pub diagnostics: Vec<Violation>,
    /// Well-formed entries in the waiver ledger.
    pub waivers_total: usize,
    /// Ledger entries that suppressed at least one diagnostic.
    pub waivers_used: usize,
}

impl CheckReport {
    /// Whether the check passes.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs the full check rooted at `root`, with waiver expiry judged
/// against the system clock.
pub fn run_check(root: &Path) -> io::Result<CheckReport> {
    run_check_at(root, &waivers::today())
}

/// Runs the full check with an explicit `today` (ISO `YYYY-MM-DD`) so
/// expiry behaviour is testable deterministically.
pub fn run_check_at(root: &Path, today: &str) -> io::Result<CheckReport> {
    let ws = Workspace::load(root)?;
    let mut diags = rules::run_all(&ws);
    let ledger_file = root.join(LEDGER_PATH);
    let (total, used) = if ledger_file.is_file() {
        let text = fs::read_to_string(&ledger_file)?;
        let (ledger, mut malformed) = waivers::parse(LEDGER_PATH, &text);
        let total = ledger.waivers.len();
        let (mut kept, used) = waivers::apply(&ledger, LEDGER_PATH, today, diags);
        kept.append(&mut malformed);
        diags = kept;
        (total, used)
    } else {
        (0, 0)
    };
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(CheckReport {
        files_scanned: ws.files.len(),
        manifests_scanned: ws.manifests.len(),
        diagnostics: diags,
        waivers_total: total,
        waivers_used: used,
    })
}

/// Renders the report for terminals: one `path:line: [rule] msg` line per
/// diagnostic plus a summary.
pub fn render_human(report: &CheckReport) -> String {
    let mut out = String::new();
    for v in &report.diagnostics {
        let _ = writeln!(out, "{v}");
    }
    if report.ok() {
        let _ = writeln!(
            out,
            "xtask check: OK ({} files, {} manifests scanned; {}/{} waivers in use)",
            report.files_scanned,
            report.manifests_scanned,
            report.waivers_used,
            report.waivers_total
        );
    } else {
        let _ = writeln!(
            out,
            "xtask check: {} diagnostic(s) across {} files / {} manifests",
            report.diagnostics.len(),
            report.files_scanned,
            report.manifests_scanned
        );
    }
    out
}

/// Renders the report as a single JSON object for CI consumption.
pub fn render_json(report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"xtask-check\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        out,
        "  \"manifests_scanned\": {},",
        report.manifests_scanned
    );
    let _ = writeln!(
        out,
        "  \"waivers\": {{\"total\": {}, \"used\": {}}},",
        report.waivers_total, report.waivers_used
    );
    if report.diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": [],\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, v) in report.diagnostics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"msg\": {}}}",
                json_str(&v.path),
                v.line,
                json_str(v.rule),
                json_str(&v.msg)
            );
            out.push_str(if i + 1 < report.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
    }
    let _ = writeln!(out, "  \"ok\": {}", report.ok());
    out.push_str("}\n");
    out
}

/// JSON string literal with the required escapes (std-only, no serde).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the `explain` page for one rule.
pub fn render_explain(rule: &rules::Rule) -> String {
    let driven = match rule.run {
        rules::Run::PerFile(_) => "per-file token-stream pass",
        rules::Run::Workspace(_) => "workspace pass (all files + manifests)",
        rules::Run::Ledger => "ledger validation in the check driver",
    };
    format!(
        "{id}\n{underline}\n{summary}\n\n  scope:  {scope}\n  driven: {driven}\n\n  why:    {intent}\n\n  waiver: {waiver}\n",
        id = rule.id,
        underline = "=".repeat(rule.id.len()),
        summary = rule.summary,
        scope = rule.scope,
        intent = rule.intent,
        waiver = rule.waiver,
    )
}

#[cfg(test)]
mod tests {
    use super::{json_str, render_json, CheckReport};
    use crate::rules::Violation;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn clean_report_renders_empty_array_and_ok_true() {
        let r = CheckReport {
            files_scanned: 42,
            manifests_scanned: 12,
            diagnostics: Vec::new(),
            waivers_total: 0,
            waivers_used: 0,
        };
        let j = render_json(&r);
        assert!(j.contains("\"tool\": \"xtask-check\""));
        assert!(j.contains("\"files_scanned\": 42"));
        assert!(j.contains("\"diagnostics\": []"));
        assert!(j.contains("\"ok\": true"));
    }

    #[test]
    fn dirty_report_renders_diagnostics_and_ok_false() {
        let r = CheckReport {
            files_scanned: 1,
            manifests_scanned: 1,
            diagnostics: vec![Violation {
                path: "a.rs".to_string(),
                line: 3,
                rule: "determinism",
                msg: "said \"so\"".to_string(),
            }],
            waivers_total: 0,
            waivers_used: 0,
        };
        let j = render_json(&r);
        assert!(j.contains("\"rule\": \"determinism\""));
        assert!(j.contains("\\\"so\\\""));
        assert!(j.contains("\"ok\": false"));
    }
}
