//! Property tests for the geometry substrate: MBR distance bounds, the
//! exact MBR dominance test against a sampling oracle, convex hulls, and
//! the simplex solver.

use osd_geom::lp::{LpResult, StandardLp};
use osd_geom::{
    closer_to_all, hull_vertex_indices, mbr_dominates, mbr_dominates_strict, on_near_side,
    point_in_hull, Mbr, Point,
};
use proptest::prelude::*;

fn point2() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(vec![x, y]))
}

fn mbr2() -> impl Strategy<Value = Mbr> {
    (0.0f64..80.0, 0.0f64..80.0, 0.0f64..20.0, 0.0f64..20.0)
        .prop_map(|(x, y, w, h)| Mbr::new(vec![x, y], vec![x + w, y + h]))
}

/// Random point inside a box, parameterised by unit fractions.
fn inside(m: &Mbr, fx: f64, fy: f64) -> Point {
    Point::new(vec![
        m.lo()[0] + fx * (m.hi()[0] - m.lo()[0]),
        m.lo()[1] + fy * (m.hi()[1] - m.lo()[1]),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Point-box distance bounds actually bound distances to points inside.
    #[test]
    fn prop_mbr_point_bounds(m in mbr2(), q in point2(), fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let p = inside(&m, fx, fy);
        let d = q.dist(&p);
        prop_assert!(m.min_dist_point(&q) <= d + 1e-9);
        prop_assert!(m.max_dist_point(&q) >= d - 1e-9);
    }

    /// Box-box distance bounds bound distances between interior points.
    #[test]
    fn prop_mbr_box_bounds(
        a in mbr2(), b in mbr2(),
        fx1 in 0.0f64..1.0, fy1 in 0.0f64..1.0,
        fx2 in 0.0f64..1.0, fy2 in 0.0f64..1.0,
    ) {
        let pa = inside(&a, fx1, fy1);
        let pb = inside(&b, fx2, fy2);
        let d = pa.dist(&pb);
        prop_assert!(a.min_dist(&b) <= d + 1e-9);
        prop_assert!(a.max_dist(&b) >= d - 1e-9);
    }

    /// The exact O(d) dominance test agrees with a sampled oracle: if it
    /// claims dominance, no sampled (q, u, v) triple may contradict it; if
    /// it denies dominance, the strict variant must deny it too.
    #[test]
    fn prop_mbr_dominates_sound(
        u in mbr2(), v in mbr2(), q in mbr2(),
        samples in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0,
                                          0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 32),
    ) {
        let dominated = mbr_dominates(&u, &v, &q);
        let strictly = mbr_dominates_strict(&u, &v, &q);
        prop_assert!(!strictly || dominated, "strict must imply non-strict");
        if dominated {
            for (a, b, c, d, e, f) in samples {
                let qp = inside(&q, a, b);
                let up = inside(&u, c, d);
                let vp = inside(&v, e, f);
                prop_assert!(
                    up.dist2(&qp) <= vp.dist2(&qp) + 1e-9,
                    "sampled triple contradicts mbr_dominates"
                );
            }
        }
    }

    /// Dominance denial is witnessed: when the analytic test says no, there
    /// is a *corner* configuration violating the condition (corners achieve
    /// the extremal distances per dimension).
    #[test]
    fn prop_mbr_dominates_complete_on_corners(u in mbr2(), v in mbr2(), q in mbr2()) {
        if !mbr_dominates(&u, &v, &q) {
            // Search corner positions of q plus the per-dimension interior
            // breakpoints; one must violate maxdist ≤ mindist.
            let mut found = false;
            let mut cands_per_dim: Vec<Vec<f64>> = Vec::new();
            for i in 0..2 {
                let mut c = vec![q.lo()[i], q.hi()[i]];
                for bp in [0.5 * (u.lo()[i] + u.hi()[i]), v.lo()[i], v.hi()[i]] {
                    if bp > q.lo()[i] && bp < q.hi()[i] {
                        c.push(bp);
                    }
                }
                cands_per_dim.push(c);
            }
            for &x in &cands_per_dim[0] {
                for &y in &cands_per_dim[1] {
                    let qp = Point::new(vec![x, y]);
                    if u.max_dist2_point(&qp) > v.min_dist2_point(&qp) + 1e-12 {
                        found = true;
                    }
                }
            }
            prop_assert!(found, "no witness for ¬mbr_dominates");
        }
    }

    /// Hull vertices: every input point is inside the hull of the vertices;
    /// removing any vertex loses some point.
    #[test]
    fn prop_hull_contains_all_points(pts in prop::collection::vec(point2(), 1..24)) {
        let idx = hull_vertex_indices(&pts);
        prop_assert!(!idx.is_empty());
        let verts: Vec<Point> = idx.iter().map(|&i| pts[i].clone()).collect();
        for p in &pts {
            prop_assert!(point_in_hull(p, &verts), "point outside its own hull");
        }
        // Each reported vertex must NOT be inside the hull of the others
        // (minimality), unless it duplicates another vertex.
        for (k, &i) in idx.iter().enumerate() {
            let others: Vec<Point> = idx
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != k)
                .map(|(_, &m)| pts[m].clone())
                .collect();
            if others.iter().any(|o| *o == pts[i]) {
                continue;
            }
            if !others.is_empty() {
                prop_assert!(
                    !point_in_hull(&pts[i], &others),
                    "vertex {i} is redundant"
                );
            }
        }
    }

    /// `closer_to_all` evaluated on the hull equals evaluation on all points
    /// (the §5.1.2 half-space reduction).
    #[test]
    fn prop_hull_reduction_preserves_closer(
        qs in prop::collection::vec(point2(), 1..16),
        u in point2(),
        v in point2(),
    ) {
        let idx = hull_vertex_indices(&qs);
        let hull: Vec<Point> = idx.iter().map(|&i| qs[i].clone()).collect();
        prop_assert_eq!(closer_to_all(&u, &v, &qs), closer_to_all(&u, &v, &hull));
    }

    /// The bisector half-space test agrees with direct distance comparison.
    #[test]
    fn prop_bisector_test(q in point2(), u in point2(), v in point2()) {
        prop_assert_eq!(on_near_side(&q, &u, &v), q.dist2(&u) <= q.dist2(&v));
    }

    /// LP sanity: the returned optimum is feasible and no sampled feasible
    /// point beats it.
    #[test]
    fn prop_lp_optimal_is_feasible_and_minimal(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        b0 in 1.0f64..10.0,
        t in 0.0f64..1.0,
    ) {
        // min c·x  s.t.  x0 + x1 + s = b0, x ≥ 0  (a bounded simplex).
        let lp = StandardLp::new(
            vec![vec![1.0, 1.0, 1.0]],
            vec![b0],
            vec![c0, c1, 0.0],
        );
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                prop_assert!(x.iter().all(|&v| v >= -1e-9));
                prop_assert!((x[0] + x[1] + x[2] - b0).abs() < 1e-6);
                // Compare against a random feasible point.
                let f0 = t * b0;
                let f1 = (1.0 - t) * b0;
                let feasible_obj = c0 * f0 + c1 * f1;
                prop_assert!(objective <= feasible_obj + 1e-6);
            }
            other => prop_assert!(false, "expected optimal, got {:?}", other),
        }
    }
}
