//! The `u ⪯_Q v` relation: instance-level closeness w.r.t. a query point set.
//!
//! `u ⪯_Q v` holds iff `δ(u, q) ≤ δ(v, q)` for **every** `q ∈ Q`
//! (Definition preceding Definition 5 in the paper). Geometrically this means
//! every query point lies on `u`'s side of the bisector hyperplane between
//! `u` and `v`, so it suffices to test the vertices of `CH(Q)` (§5.1.2).

use crate::point::{dist2_slice, dist_slice, Point};

/// Returns `true` iff `δ(u, q) ≤ δ(v, q)` for every `q` in `queries`.
///
/// Callers that have already reduced the query to its convex-hull vertices
/// should pass only those — the result is identical and the scan shorter.
pub fn closer_to_all(u: &Point, v: &Point, queries: &[Point]) -> bool {
    queries.iter().all(|q| u.dist2(q) <= v.dist2(q))
}

/// Borrowed-row twin of [`closer_to_all`] for instances held in a flat
/// row-major store: `true` iff `δ(u, q) ≤ δ(v, q)` for every `q`.
pub fn closer_to_all_rows(u: &[f64], v: &[f64], queries: &[Point]) -> bool {
    queries
        .iter()
        .all(|q| dist2_slice(u, q.coords()) <= dist2_slice(v, q.coords()))
}

/// Bisector side test: `true` iff `q` is (weakly) on `u`'s side of the
/// perpendicular bisector hyperplane of segment `(u, v)`.
///
/// Equivalent to `δ(q, u) ≤ δ(q, v)` but phrased as a half-space test:
/// `(v − u) · q ≤ (|v|² − |u|²) / 2`.
pub fn on_near_side(q: &Point, u: &Point, v: &Point) -> bool {
    debug_assert_eq!(q.dim(), u.dim());
    debug_assert_eq!(q.dim(), v.dim());
    let mut lhs = 0.0;
    let mut rhs = 0.0;
    for i in 0..q.dim() {
        let (ui, vi) = (u.coord(i), v.coord(i));
        lhs += (vi - ui) * q.coord(i);
        rhs += vi * vi - ui * ui;
    }
    lhs <= 0.5 * rhs
}

/// Maps an instance into "query-distance space": the `k`-dimensional point
/// `(δ(u, q_1), …, δ(u, q_k))` for hull vertices `q_1..q_k`.
///
/// In this space `u ⪯_Q v` is plain coordinate-wise dominance, which lets the
/// peer-dominance network construction use R-tree range queries (§5.1.2).
pub fn distance_space(u: &Point, hull: &[Point]) -> Point {
    Point::new(hull.iter().map(|q| u.dist(q)).collect::<Vec<_>>())
}

/// Borrowed-row twin of [`distance_space`]: maps the coordinate row `u` to
/// `(δ(u, q_1), …, δ(u, q_k))`. Bit-identical to the [`Point`] path because
/// [`dist_slice`] folds in the same order as [`Point::dist`].
pub fn distance_space_row(u: &[f64], hull: &[Point]) -> Point {
    Point::new(
        hull.iter()
            .map(|q| dist_slice(u, q.coords()))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    #[test]
    fn closer_matches_direct_definition() {
        let u = p2(0.0, 0.0);
        let v = p2(10.0, 0.0);
        let qs = vec![p2(1.0, 1.0), p2(2.0, -1.0), p2(0.0, 3.0)];
        assert!(closer_to_all(&u, &v, &qs));
        assert!(!closer_to_all(&v, &u, &qs));
        // A query point past the midpoint flips it.
        let qs2 = vec![p2(1.0, 1.0), p2(9.0, 0.0)];
        assert!(!closer_to_all(&u, &v, &qs2));
    }

    #[test]
    fn empty_query_set_is_vacuous() {
        assert!(closer_to_all(&p2(0.0, 0.0), &p2(1.0, 1.0), &[]));
    }

    #[test]
    fn bisector_test_agrees_with_distances() {
        let u = p2(0.0, 0.0);
        let v = p2(4.0, 0.0);
        for q in [p2(1.0, 5.0), p2(2.0, 0.0), p2(3.0, -2.0), p2(-1.0, 0.0)] {
            assert_eq!(on_near_side(&q, &u, &v), q.dist2(&u) <= q.dist2(&v));
        }
    }

    #[test]
    fn row_variants_match_point_variants() {
        let hull = vec![p2(0.0, 0.0), p2(4.0, 0.0), p2(2.0, 3.0)];
        let u = p2(1.25, -0.5);
        let v = p2(5.0, 5.0);
        assert_eq!(
            closer_to_all_rows(u.coords(), v.coords(), &hull),
            closer_to_all(&u, &v, &hull)
        );
        let a = distance_space(&u, &hull);
        let b = distance_space_row(u.coords(), &hull);
        for i in 0..a.dim() {
            assert_eq!(a.coord(i).to_bits(), b.coord(i).to_bits());
        }
    }

    #[test]
    fn distance_space_dominance_equivalence() {
        let hull = vec![p2(0.0, 0.0), p2(4.0, 0.0), p2(2.0, 3.0)];
        let u = p2(1.0, 1.0);
        let v = p2(5.0, 5.0);
        let du = distance_space(&u, &hull);
        let dv = distance_space(&v, &hull);
        let coordwise = (0..du.dim()).all(|i| du.coord(i) <= dv.coord(i));
        assert_eq!(coordwise, closer_to_all(&u, &v, &hull));
    }
}
