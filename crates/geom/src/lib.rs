//! # osd-geom
//!
//! Geometry substrate for the `osd` workspace — the from-scratch primitives
//! that *Optimal Spatial Dominance* (SIGMOD 2015) builds on:
//!
//! * [`Point`] — d-dimensional instances with Euclidean distances;
//! * [`Mbr`] — minimal bounding rectangles with min/max distance bounds;
//! * [`mbr_dominates`] — the exact `O(d)` MBR-level full-spatial-dominance
//!   test (Emrich et al., reused by the paper as F⁺-SD and for cover-based
//!   validation);
//! * [`hull`] — convex-hull vertex extraction (monotone chain in 2-D, LP
//!   based in higher dimensions) plus point-in-hull tests;
//! * [`closer`] — the `u ⪯_Q v` relation and its distance-space mapping;
//! * [`lp`] — a small dense two-phase simplex solver backing the hull code;
//! * [`sphere`] — Welzl minimal enclosing balls and the hypersphere
//!   dominance filter of Long et al.
//!
//! ```
//! use osd_geom::{hull_vertices, mbr_dominates, min_enclosing_ball, Mbr, Point};
//!
//! // Convex hull: the interior point is dropped.
//! let pts = vec![
//!     Point::from([0.0, 0.0]),
//!     Point::from([4.0, 0.0]),
//!     Point::from([4.0, 4.0]),
//!     Point::from([0.0, 4.0]),
//!     Point::from([2.0, 2.0]),
//! ];
//! assert_eq!(hull_vertices(&pts).len(), 4);
//!
//! // Exact O(d) MBR dominance: U beats V for every query position in Q.
//! let u = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]);
//! let v = Mbr::new(vec![10.0, 10.0], vec![11.0, 11.0]);
//! let q = Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]);
//! assert!(mbr_dominates(&u, &v, &q));
//!
//! // Minimal enclosing ball (Welzl).
//! let ball = min_enclosing_ball(&pts);
//! assert!((ball.radius - 8f64.sqrt()).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod closer;
pub mod dominance;
pub mod hull;
pub mod kernels;
pub mod lp;
pub mod mbr;
pub mod point;
pub mod sphere;

pub use closer::{
    closer_to_all, closer_to_all_rows, distance_space, distance_space_row, on_near_side,
};
pub use dominance::{mbr_dominates, mbr_dominates_strict};
pub use hull::{hull_vertex_indices, hull_vertices, point_in_hull, point_in_hull_row};
pub use kernels::{dist2_rows_batch, max_dist2_rows, min_dist2_rows};
pub use mbr::Mbr;
pub use point::{dist2_slice, dist_slice, Point};
pub use sphere::{min_enclosing_ball, sphere_dominates_sufficient, Sphere};

// Compile-time auto-trait surface: the geometry primitives are shared
// read-only across query-engine worker threads, so losing `Send + Sync`
// (e.g. by adding an interior-mutable cache field) must fail compilation
// here, not at a distant spawn site.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Point>();
const _: () = _assert_send_sync::<Mbr>();
const _: () = _assert_send_sync::<Sphere>();
