//! Convex hull utilities.
//!
//! The peer and full spatial dominance checks only need to evaluate query
//! instances that are *vertices of the convex hull* of the query (§5.1.2 of
//! the paper): `u ⪯_Q v` constrains all of `Q` to one side of the bisector
//! hyperplane of `(u, v)`, and half-space containment of a point set is
//! decided by its hull vertices.
//!
//! * In 2-D we run Andrew's monotone chain — `O(n log n)`.
//! * In `d ≥ 3` we extract hull vertices with an LP test per point
//!   (a point is a hull vertex iff it is not a convex combination of the
//!   others) — `O(n · LP)`, fine for query objects with tens of instances.
//! * In 1-D the hull is the min/max pair.

use crate::lp::{LpResult, StandardLp};
use crate::point::Point;

/// Returns the indices of the convex-hull vertices of `points`.
///
/// Duplicate points contribute a single representative. Interior and
/// non-vertex boundary points are excluded. The result is unordered for
/// `d ≠ 2`; for `d = 2` it is in counter-clockwise order.
///
/// # Panics
/// Panics if `points` is empty or dimensionalities are inconsistent.
pub fn hull_vertex_indices(points: &[Point]) -> Vec<usize> {
    assert!(!points.is_empty(), "hull of an empty set");
    let d = points[0].dim();
    assert!(points.iter().all(|p| p.dim() == d), "mixed dimensionality");
    match d {
        1 => hull_1d(points),
        2 => monotone_chain(points),
        _ => hull_lp(points),
    }
}

/// Convenience wrapper returning the hull vertices themselves.
pub fn hull_vertices(points: &[Point]) -> Vec<Point> {
    hull_vertex_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Tests whether `p` lies inside (or on the boundary of) the convex hull of
/// `points`, via LP feasibility of `Σ λ_i x_i = p, Σ λ_i = 1, λ ≥ 0`.
///
/// Works in any dimension. Returns `false` for an empty `points` slice.
pub fn point_in_hull(p: &Point, points: &[Point]) -> bool {
    point_in_hull_row(p.coords(), points)
}

/// Borrowed-row twin of [`point_in_hull`]: tests whether the coordinate row
/// `p` lies inside (or on the boundary of) the convex hull of `points`.
pub fn point_in_hull_row(p: &[f64], points: &[Point]) -> bool {
    if points.is_empty() {
        return false;
    }
    let d = p.len();
    let n = points.len();
    let mut a = Vec::with_capacity(d + 1);
    for i in 0..d {
        a.push(points.iter().map(|x| x.coord(i)).collect::<Vec<_>>());
    }
    a.push(vec![1.0; n]);
    let mut b: Vec<f64> = p.to_vec();
    b.push(1.0);
    let lp = StandardLp::new(a, b, vec![0.0; n]);
    matches!(lp.solve(), LpResult::Optimal { .. })
}

fn hull_1d(points: &[Point]) -> Vec<usize> {
    let mut lo = 0usize;
    let mut hi = 0usize;
    for (i, p) in points.iter().enumerate() {
        if p.coord(0) < points[lo].coord(0) {
            lo = i;
        }
        if p.coord(0) > points[hi].coord(0) {
            hi = i;
        }
    }
    if lo == hi {
        vec![lo]
    } else {
        vec![lo, hi]
    }
}

/// Andrew's monotone chain in 2-D, returning vertex indices in CCW order.
fn monotone_chain(points: &[Point]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .coord(0)
            .total_cmp(&points[b].coord(0))
            .then(points[a].coord(1).total_cmp(&points[b].coord(1)))
    });
    idx.dedup_by(|&mut a, &mut b| {
        points[a].coord(0).total_cmp(&points[b].coord(0)).is_eq()
            && points[a].coord(1).total_cmp(&points[b].coord(1)).is_eq()
    });
    let n = idx.len();
    if n <= 2 {
        return idx;
    }

    let cross = |o: usize, a: usize, b: usize| -> f64 {
        let (ox, oy) = (points[o].coord(0), points[o].coord(1));
        let (ax, ay) = (points[a].coord(0), points[a].coord(1));
        let (bx, by) = (points[b].coord(0), points[b].coord(1));
        (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)
    };

    let mut hull: Vec<usize> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &i in &idx {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], i) <= 0.0 {
            hull.pop();
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], i) <= 0.0
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // last point equals the first
    hull
}

/// LP-based hull vertex extraction for `d ≥ 3`.
fn hull_lp(points: &[Point]) -> Vec<usize> {
    let mut seen: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    'outer: for i in 0..points.len() {
        // Skip exact duplicates of already-processed points.
        for &j in &seen {
            if points[i] == points[j] {
                continue 'outer;
            }
        }
        seen.push(i);
        let others: Vec<Point> = points
            .iter()
            .enumerate()
            .filter(|&(j, p)| j != i && *p != points[i])
            .map(|(_, p)| p.clone())
            .collect();
        if others.is_empty() || !point_in_hull(&points[i], &others) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    #[test]
    fn square_with_interior_point() {
        let pts = vec![
            p2(0.0, 0.0),
            p2(4.0, 0.0),
            p2(4.0, 4.0),
            p2(0.0, 4.0),
            p2(2.0, 2.0), // interior
            p2(2.0, 0.0), // on an edge, not a vertex
        ];
        let mut h = hull_vertex_indices(&pts);
        h.sort_unstable();
        assert_eq!(h, vec![0, 1, 2, 3]);
    }

    #[test]
    fn collinear_points_keep_extremes() {
        let pts = vec![p2(0.0, 0.0), p2(1.0, 1.0), p2(2.0, 2.0), p2(3.0, 3.0)];
        let mut h = hull_vertex_indices(&pts);
        h.sort_unstable();
        assert_eq!(h, vec![0, 3]);
    }

    #[test]
    fn single_and_duplicate_points() {
        let pts = vec![p2(1.0, 1.0)];
        assert_eq!(hull_vertex_indices(&pts), vec![0]);
        let dups = vec![p2(1.0, 1.0), p2(1.0, 1.0), p2(1.0, 1.0)];
        assert_eq!(hull_vertex_indices(&dups).len(), 1);
    }

    #[test]
    fn one_dimensional_hull() {
        let pts: Vec<Point> = [5.0, 1.0, 3.0, 9.0, 7.0]
            .iter()
            .map(|&x| Point::new(vec![x]))
            .collect();
        let mut h = hull_vertex_indices(&pts);
        h.sort_unstable();
        assert_eq!(h, vec![1, 3]); // min = 1.0 at idx 1, max = 9.0 at idx 3
    }

    #[test]
    fn three_dimensional_tetrahedron_plus_center() {
        let pts = vec![
            Point::new(vec![0.0, 0.0, 0.0]),
            Point::new(vec![1.0, 0.0, 0.0]),
            Point::new(vec![0.0, 1.0, 0.0]),
            Point::new(vec![0.0, 0.0, 1.0]),
            Point::new(vec![0.25, 0.25, 0.25]), // inside
        ];
        let mut h = hull_vertex_indices(&pts);
        h.sort_unstable();
        assert_eq!(h, vec![0, 1, 2, 3]);
    }

    #[test]
    fn point_in_hull_2d() {
        let square = vec![p2(0.0, 0.0), p2(2.0, 0.0), p2(2.0, 2.0), p2(0.0, 2.0)];
        assert!(point_in_hull(&p2(1.0, 1.0), &square));
        assert!(point_in_hull(&p2(0.0, 0.0), &square)); // vertex counts
        assert!(point_in_hull(&p2(1.0, 0.0), &square)); // edge counts
        assert!(!point_in_hull(&p2(3.0, 1.0), &square));
        assert!(!point_in_hull(&p2(-0.1, 1.0), &square));
    }

    #[test]
    fn point_in_hull_empty_set() {
        assert!(!point_in_hull(&p2(0.0, 0.0), &[]));
    }

    #[test]
    fn ccw_order_in_2d() {
        let pts = vec![p2(0.0, 0.0), p2(2.0, 0.0), p2(2.0, 2.0), p2(0.0, 2.0)];
        let h = hull_vertex_indices(&pts);
        // signed area of the returned polygon must be positive (CCW)
        let mut area = 0.0;
        for k in 0..h.len() {
            let a = &pts[h[k]];
            let b = &pts[h[(k + 1) % h.len()]];
            area += a.coord(0) * b.coord(1) - b.coord(0) * a.coord(1);
        }
        assert!(area > 0.0);
    }
}
