//! Blocked distance kernels over contiguous row-major coordinate blocks.
//!
//! The columnar `InstanceStore` keeps every instance of an object in one
//! flat `dim`-strided slice. These kernels exploit that layout: one call
//! evaluates a whole block of rows against a single probe point, with the
//! row loop unrolled 4-wide so the compiler can keep four independent
//! accumulator chains in flight (and auto-vectorise them) instead of
//! serialising on one.
//!
//! # Bit-identity contract
//!
//! Every kernel is bit-for-bit identical to the scalar fold it replaces:
//!
//! * each row's squared distance uses the exact left-to-right
//!   `zip`/`sum` fold of [`dist2_slice`] — unrolling happens across
//!   *rows*, never inside a row's accumulation;
//! * [`min_dist2_rows`] / [`max_dist2_rows`] fold row results in row
//!   order with the same `f64::min` / `f64::max` combiner as the
//!   `ObjectRef::min_dist` / `max_dist` scans (squared distances are sums
//!   of squares, hence never `-0.0`, so the min/max folds are unambiguous
//!   at the bit level too).
//!
//! The contract is enforced three ways: a debug assertion in
//! [`dist2_rows_batch`] re-checks every row against [`dist2_slice`], the
//! unit tests below compare bits on adversarial inputs, and the vendored
//! proptest suite (`tests/kernel_identity.rs` at the workspace root)
//! fuzzes dims 1–8 including ±0.0 and duplicated rows.
//!
//! These functions are allocation-free by design (the `no-alloc-in-kernels`
//! xtask rule keeps them that way): callers own and reuse the output
//! buffers across calls.

use crate::point::dist2_slice;

/// Asserts the common row-block preconditions shared by all kernels.
#[inline]
fn check_block(rows: &[f64], dim: usize, q: &[f64]) -> usize {
    assert!(dim > 0, "row blocks need at least one dimension");
    assert!(
        rows.len().is_multiple_of(dim),
        "row block length must be a multiple of dim"
    );
    assert!(q.len() == dim, "probe point dimensionality must match rows");
    rows.len() / dim
}

/// Squared Euclidean distance of one row to the probe — the exact
/// left-to-right fold of [`dist2_slice`], kept private so the unroll below
/// cannot drift from it.
#[inline(always)]
fn dist2_row(row: &[f64], q: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in row.iter().zip(q.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Writes `δ²(row_i, q)` for every `dim`-strided row of `rows` into `out`.
///
/// The blocked twin of mapping [`dist2_slice`] over `chunks_exact(dim)`:
/// results are bit-for-bit identical (see the module docs for the
/// contract), but the 4-wide row unroll exposes four independent
/// accumulator chains per iteration.
///
/// # Panics
/// Panics if `dim == 0`, `rows.len()` is not a multiple of `dim`,
/// `q.len() != dim`, or `out.len() != rows.len() / dim`.
pub fn dist2_rows_batch(rows: &[f64], dim: usize, q: &[f64], out: &mut [f64]) {
    let n = check_block(rows, dim, q);
    assert!(out.len() == n, "output buffer must hold one value per row");
    let mut i = 0;
    while i + 4 <= n {
        let base = i * dim;
        let r0 = &rows[base..base + dim];
        let r1 = &rows[base + dim..base + 2 * dim];
        let r2 = &rows[base + 2 * dim..base + 3 * dim];
        let r3 = &rows[base + 3 * dim..base + 4 * dim];
        out[i] = dist2_row(r0, q);
        out[i + 1] = dist2_row(r1, q);
        out[i + 2] = dist2_row(r2, q);
        out[i + 3] = dist2_row(r3, q);
        i += 4;
    }
    while i < n {
        out[i] = dist2_row(&rows[i * dim..(i + 1) * dim], q);
        i += 1;
    }
    debug_assert!(
        rows.chunks_exact(dim)
            .zip(out.iter())
            .all(|(row, d2)| d2.to_bits() == dist2_slice(row, q).to_bits()),
        "blocked kernel diverged from the scalar dist2_slice fold"
    );
}

/// Minimal squared distance from the probe to any row:
/// `min_i δ²(row_i, q)`, folded in row order with `f64::min` starting from
/// `+∞` (so an empty block yields `+∞`, matching the scalar fold).
///
/// # Panics
/// Panics if `dim == 0`, `rows.len()` is not a multiple of `dim`, or
/// `q.len() != dim`.
pub fn min_dist2_rows(rows: &[f64], dim: usize, q: &[f64]) -> f64 {
    let n = check_block(rows, dim, q);
    let mut best = f64::INFINITY;
    let mut i = 0;
    while i + 4 <= n {
        let base = i * dim;
        let d0 = dist2_row(&rows[base..base + dim], q);
        let d1 = dist2_row(&rows[base + dim..base + 2 * dim], q);
        let d2 = dist2_row(&rows[base + 2 * dim..base + 3 * dim], q);
        let d3 = dist2_row(&rows[base + 3 * dim..base + 4 * dim], q);
        best = best.min(d0).min(d1).min(d2).min(d3);
        i += 4;
    }
    while i < n {
        best = best.min(dist2_row(&rows[i * dim..(i + 1) * dim], q));
        i += 1;
    }
    best
}

/// Maximal squared distance from the probe to any row:
/// `max_i δ²(row_i, q)`, folded in row order with `f64::max` starting from
/// `0.0` (matching the scalar `fold(0.0, f64::max)` scan).
///
/// # Panics
/// Panics if `dim == 0`, `rows.len()` is not a multiple of `dim`, or
/// `q.len() != dim`.
pub fn max_dist2_rows(rows: &[f64], dim: usize, q: &[f64]) -> f64 {
    let n = check_block(rows, dim, q);
    let mut worst = 0.0f64;
    let mut i = 0;
    while i + 4 <= n {
        let base = i * dim;
        let d0 = dist2_row(&rows[base..base + dim], q);
        let d1 = dist2_row(&rows[base + dim..base + 2 * dim], q);
        let d2 = dist2_row(&rows[base + 2 * dim..base + 3 * dim], q);
        let d3 = dist2_row(&rows[base + 3 * dim..base + 4 * dim], q);
        worst = worst.max(d0).max(d1).max(d2).max(d3);
        i += 4;
    }
    while i < n {
        worst = worst.max(dist2_row(&rows[i * dim..(i + 1) * dim], q));
        i += 1;
    }
    worst
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::point::dist_slice;

    /// Deterministic awkward coordinates: mixes of tiny, huge, negative
    /// and signed-zero values that expose any re-association of the fold.
    fn awkward(n: usize, dim: usize) -> Vec<f64> {
        let menu = [
            0.1,
            -0.2,
            1e-13,
            3e7,
            -2.5,
            0.30000000000000004,
            0.0,
            -0.0,
            7.25,
            -1e-7,
        ];
        (0..n * dim)
            .map(|i| menu[(i * 7 + 3) % menu.len()])
            .collect()
    }

    #[test]
    fn batch_matches_scalar_bits_across_dims() {
        for dim in 1..=8 {
            for n in [0usize, 1, 2, 3, 4, 5, 7, 9, 16] {
                let rows = awkward(n, dim);
                let q: Vec<f64> = awkward(1, dim).iter().map(|c| c * 0.5 - 0.125).collect();
                let mut out = vec![0.0; n];
                dist2_rows_batch(&rows, dim, &q, &mut out);
                for (row, d2) in rows.chunks_exact(dim).zip(out.iter()) {
                    assert_eq!(
                        d2.to_bits(),
                        dist2_slice(row, &q).to_bits(),
                        "dim {dim}, n {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn min_max_match_scalar_folds_bitwise() {
        for dim in 1..=8 {
            for n in [1usize, 2, 3, 4, 5, 6, 8, 11] {
                let rows = awkward(n, dim);
                let q = awkward(1, dim);
                let scalar_min = rows
                    .chunks_exact(dim)
                    .map(|row| dist2_slice(row, &q))
                    .fold(f64::INFINITY, f64::min);
                let scalar_max = rows
                    .chunks_exact(dim)
                    .map(|row| dist2_slice(row, &q))
                    .fold(0.0, f64::max);
                assert_eq!(
                    min_dist2_rows(&rows, dim, &q).to_bits(),
                    scalar_min.to_bits()
                );
                assert_eq!(
                    max_dist2_rows(&rows, dim, &q).to_bits(),
                    scalar_max.to_bits()
                );
            }
        }
    }

    #[test]
    fn sqrt_of_min_matches_min_of_sqrt_bits() {
        // The scalar δ_min scan folds *square-rooted* distances; the
        // kernel square-roots the folded minimum. √ is monotone and
        // squared distances are never -0.0, so the two agree bit-for-bit.
        for dim in [1usize, 2, 3, 5] {
            let rows = awkward(9, dim);
            let q = awkward(1, dim);
            let scalar = rows
                .chunks_exact(dim)
                .map(|row| dist_slice(row, &q))
                .fold(f64::INFINITY, f64::min);
            let blocked = min_dist2_rows(&rows, dim, &q).sqrt();
            assert_eq!(blocked.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn duplicated_and_signed_zero_rows() {
        let rows = [0.0, -0.0, 0.0, -0.0, 1.0, 1.0, 1.0, 1.0];
        let q = [0.0, 0.0];
        let mut out = [0.0; 4];
        dist2_rows_batch(&rows, 2, &q, &mut out);
        assert_eq!(out[0].to_bits(), out[1].to_bits(), "duplicate rows agree");
        assert_eq!(out[0], 0.0);
        assert!(out[0].is_sign_positive(), "δ² is never -0.0");
        assert_eq!(min_dist2_rows(&rows, 2, &q), 0.0);
        assert_eq!(max_dist2_rows(&rows, 2, &q), 2.0);
    }

    #[test]
    fn empty_block_folds_to_identities() {
        assert_eq!(min_dist2_rows(&[], 3, &[0.0, 0.0, 0.0]), f64::INFINITY);
        assert_eq!(max_dist2_rows(&[], 3, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_block_rejected() {
        let mut out = [0.0; 1];
        dist2_rows_batch(&[1.0, 2.0, 3.0], 2, &[0.0, 0.0], &mut out);
    }

    #[test]
    #[should_panic(expected = "one value per row")]
    fn short_output_rejected() {
        let mut out = [0.0; 1];
        dist2_rows_batch(&[1.0, 2.0, 3.0, 4.0], 2, &[0.0, 0.0], &mut out);
    }
}
