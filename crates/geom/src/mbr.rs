//! Minimal bounding rectangles (MBRs) and box distance bounds.

use crate::point::Point;
use std::fmt;

/// An axis-aligned minimal bounding rectangle in d dimensions.
#[derive(Clone, PartialEq)]
pub struct Mbr {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Mbr {
    /// Creates an MBR from lower and upper corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality, are empty, or if
    /// `lo[i] > hi[i]` for some dimension.
    pub fn new(lo: impl Into<Box<[f64]>>, hi: impl Into<Box<[f64]>>) -> Self {
        let (lo, hi) = (lo.into(), hi.into());
        assert_eq!(lo.len(), hi.len(), "corner dimension mismatch");
        assert!(!lo.is_empty(), "an MBR needs at least one dimension");
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "MBR lower corner must not exceed upper corner"
        );
        Mbr { lo, hi }
    }

    /// The MBR of a single point (a degenerate box).
    pub fn from_point(p: &Point) -> Self {
        Mbr {
            lo: p.coords().into(),
            hi: p.coords().into(),
        }
    }

    /// The tightest MBR enclosing a non-empty set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "MBR of an empty point set");
        let mut lo: Vec<f64> = points[0].coords().to_vec();
        let mut hi = lo.clone();
        for p in &points[1..] {
            for (i, &c) in p.coords().iter().enumerate() {
                lo[i] = lo[i].min(c);
                hi[i] = hi[i].max(c);
            }
        }
        Mbr::new(lo, hi)
    }

    /// The tightest MBR enclosing a non-empty row-major coordinate block of
    /// `rows.len() / dim` points — the borrowed-slice twin of
    /// [`Mbr::from_points`], with the identical left-to-right min/max fold so
    /// the corners are bit-for-bit equal.
    ///
    /// # Panics
    /// Panics if `rows` is empty, `dim` is zero, or `rows.len()` is not a
    /// multiple of `dim`.
    pub fn from_rows(rows: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "an MBR needs at least one dimension");
        assert!(!rows.is_empty(), "MBR of an empty point set");
        assert_eq!(
            rows.len() % dim,
            0,
            "row block length must be a multiple of dim"
        );
        let mut lo: Vec<f64> = rows[..dim].to_vec();
        let mut hi = lo.clone();
        for row in rows.chunks_exact(dim).skip(1) {
            for (i, &c) in row.iter().enumerate() {
                lo[i] = lo[i].min(c);
                hi[i] = hi[i].max(c);
            }
        }
        Mbr::new(lo, hi)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Centre point of the box.
    pub fn center(&self) -> Point {
        let c: Vec<f64> = self
            .lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| 0.5 * (l + h))
            .collect();
        Point::new(c)
    }

    /// The smallest MBR containing both `self` and `other`.
    pub fn union(&self, other: &Mbr) -> Mbr {
        debug_assert_eq!(self.dim(), other.dim());
        let lo: Vec<f64> = self
            .lo
            .iter()
            .zip(other.lo.iter())
            .map(|(a, b)| a.min(*b))
            .collect();
        let hi: Vec<f64> = self
            .hi
            .iter()
            .zip(other.hi.iter())
            .map(|(a, b)| a.max(*b))
            .collect();
        Mbr::new(lo, hi)
    }

    /// Grows this MBR in place to contain `other`.
    pub fn expand(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.lo.len() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Box volume (product of edge lengths). Zero for degenerate boxes.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Half-perimeter (sum of edge lengths) — the R*-tree margin measure.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo.iter().zip(other.lo.iter()).all(|(a, b)| a <= b)
            && self.hi.iter().zip(other.hi.iter()).all(|(a, b)| a >= b)
    }

    /// Whether `self` contains the point `p`.
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        p.coords()
            .iter()
            .enumerate()
            .all(|(i, &c)| self.lo[i] <= c && c <= self.hi[i])
    }

    /// Whether `self` contains the point with coordinate row `row` — the
    /// borrowed-slice twin of [`Mbr::contains_point`].
    pub fn contains_row(&self, row: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), row.len());
        row.iter()
            .enumerate()
            .all(|(i, &c)| self.lo[i] <= c && c <= self.hi[i])
    }

    /// Whether the two boxes intersect (share at least one point).
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo.iter().zip(other.hi.iter()).all(|(l, h)| l <= h)
            && other.lo.iter().zip(self.hi.iter()).all(|(l, h)| l <= h)
    }

    /// Squared minimal distance from a point to this box (0 if inside).
    pub fn min_dist2_point(&self, p: &Point) -> f64 {
        debug_assert_eq!(self.dim(), p.dim());
        p.coords()
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = if c < self.lo[i] {
                    self.lo[i] - c
                } else if c > self.hi[i] {
                    c - self.hi[i]
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Minimal distance from a point to this box.
    #[inline]
    pub fn min_dist_point(&self, p: &Point) -> f64 {
        self.min_dist2_point(p).sqrt()
    }

    /// Squared minimal distance from a coordinate row to this box — the
    /// borrowed-slice twin of [`Mbr::min_dist2_point`] (same per-dimension
    /// fold, bit-identical results).
    pub fn min_dist2_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), row.len());
        row.iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = if c < self.lo[i] {
                    self.lo[i] - c
                } else if c > self.hi[i] {
                    c - self.hi[i]
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Minimal distance from a coordinate row to this box.
    #[inline]
    pub fn min_dist_row(&self, row: &[f64]) -> f64 {
        self.min_dist2_row(row).sqrt()
    }

    /// Squared maximal distance from a point to this box (distance to the
    /// farthest corner).
    pub fn max_dist2_point(&self, p: &Point) -> f64 {
        debug_assert_eq!(self.dim(), p.dim());
        p.coords()
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = (c - self.lo[i]).abs().max((c - self.hi[i]).abs());
                d * d
            })
            .sum()
    }

    /// Maximal distance from a point to this box.
    #[inline]
    pub fn max_dist_point(&self, p: &Point) -> f64 {
        self.max_dist2_point(p).sqrt()
    }

    /// Squared maximal distance from a coordinate row to this box — the
    /// borrowed-slice twin of [`Mbr::max_dist2_point`].
    pub fn max_dist2_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), row.len());
        row.iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = (c - self.lo[i]).abs().max((c - self.hi[i]).abs());
                d * d
            })
            .sum()
    }

    /// Maximal distance from a coordinate row to this box.
    #[inline]
    pub fn max_dist_row(&self, row: &[f64]) -> f64 {
        self.max_dist2_row(row).sqrt()
    }

    /// Squared minimal distance between two boxes (0 if they intersect).
    pub fn min_dist2(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim())
            .map(|i| {
                let d = if other.hi[i] < self.lo[i] {
                    self.lo[i] - other.hi[i]
                } else if other.lo[i] > self.hi[i] {
                    other.lo[i] - self.hi[i]
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Minimal distance between two boxes.
    #[inline]
    pub fn min_dist(&self, other: &Mbr) -> f64 {
        self.min_dist2(other).sqrt()
    }

    /// Squared maximal distance between two boxes (farthest corner pair).
    pub fn max_dist2(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim())
            .map(|i| {
                let d = (other.hi[i] - self.lo[i])
                    .abs()
                    .max((self.hi[i] - other.lo[i]).abs());
                d * d
            })
            .sum()
    }

    /// Maximal distance between two boxes.
    #[inline]
    pub fn max_dist(&self, other: &Mbr) -> f64 {
        self.max_dist2(other).sqrt()
    }
}

impl fmt::Debug for Mbr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mbr[{:?}..{:?}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::new(c.to_vec())
    }

    fn b(lo: &[f64], hi: &[f64]) -> Mbr {
        Mbr::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn from_points_is_tight() {
        let pts = vec![p(&[1.0, 5.0]), p(&[3.0, 2.0]), p(&[-1.0, 4.0])];
        let m = Mbr::from_points(&pts);
        assert_eq!(m.lo(), &[-1.0, 2.0]);
        assert_eq!(m.hi(), &[3.0, 5.0]);
        for q in &pts {
            assert!(m.contains_point(q));
        }
    }

    #[test]
    fn union_contains_both() {
        let a = b(&[0.0, 0.0], &[1.0, 1.0]);
        let c = b(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&c);
        assert!(u.contains(&a));
        assert!(u.contains(&c));
        assert_eq!(u.lo(), &[0.0, -1.0]);
        assert_eq!(u.hi(), &[3.0, 1.0]);
    }

    #[test]
    fn volume_and_margin() {
        let m = b(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(m.volume(), 6.0);
        assert_eq!(m.margin(), 5.0);
        assert_eq!(Mbr::from_point(&p(&[1.0, 1.0])).volume(), 0.0);
    }

    #[test]
    fn point_distance_inside_is_zero() {
        let m = b(&[0.0, 0.0], &[4.0, 4.0]);
        assert_eq!(m.min_dist_point(&p(&[2.0, 2.0])), 0.0);
        assert_eq!(m.min_dist_point(&p(&[6.0, 2.0])), 2.0);
        // farthest corner of the box from (2,2) is any corner: dist = sqrt(8)
        assert!((m.max_dist_point(&p(&[2.0, 2.0])) - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn box_box_distances() {
        let a = b(&[0.0, 0.0], &[1.0, 1.0]);
        let c = b(&[4.0, 0.0], &[5.0, 1.0]);
        assert_eq!(a.min_dist(&c), 3.0);
        assert!((a.max_dist(&c) - (25f64 + 1.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.min_dist(&a), 0.0);
    }

    #[test]
    fn intersects_works() {
        let a = b(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(a.intersects(&b(&[1.0, 1.0], &[3.0, 3.0])));
        assert!(a.intersects(&b(&[2.0, 2.0], &[3.0, 3.0]))); // touching counts
        assert!(!a.intersects(&b(&[2.1, 0.0], &[3.0, 1.0])));
    }

    #[test]
    #[should_panic(expected = "lower corner")]
    fn inverted_box_rejected() {
        let _ = b(&[1.0], &[0.0]);
    }

    #[test]
    fn from_rows_matches_from_points_bitwise() {
        let pts = vec![p(&[1.0, 5.0]), p(&[3.0, 2.0]), p(&[-1.0, 4.0])];
        let rows: Vec<f64> = pts.iter().flat_map(|q| q.coords().to_vec()).collect();
        let a = Mbr::from_points(&pts);
        let c = Mbr::from_rows(&rows, 2);
        assert_eq!(a, c);
        for (x, y) in a.lo().iter().zip(c.lo().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.hi().iter().zip(c.hi().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn row_kernels_match_point_kernels() {
        let m = b(&[0.0, 0.0], &[4.0, 4.0]);
        for q in [p(&[2.0, 2.0]), p(&[6.0, 2.0]), p(&[-1.5, 7.25])] {
            assert_eq!(m.contains_row(q.coords()), m.contains_point(&q));
            assert_eq!(
                m.min_dist2_row(q.coords()).to_bits(),
                m.min_dist2_point(&q).to_bits()
            );
            assert_eq!(
                m.max_dist2_row(q.coords()).to_bits(),
                m.max_dist2_point(&q).to_bits()
            );
            assert_eq!(
                m.min_dist_row(q.coords()).to_bits(),
                m.min_dist_point(&q).to_bits()
            );
            assert_eq!(
                m.max_dist_row(q.coords()).to_bits(),
                m.max_dist_point(&q).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_row_block_rejected() {
        let _ = Mbr::from_rows(&[0.0, 1.0, 2.0], 2);
    }
}
