//! Exact O(d) MBR-level full spatial dominance (the F⁺-SD kernel).
//!
//! `F-SD(U_mbr, V_mbr, Q_mbr)` holds iff for **every** point `q ∈ Q_mbr`,
//! `maxdist(q, U_mbr) ≤ mindist(q, V_mbr)` — i.e. every possible instance of
//! `U` is at least as close to every possible query instance as every
//! possible instance of `V`. This is the optimal MBR pruning criterion of
//! Emrich et al. (SIGMOD 2010, \[16\] in the paper), which the paper reuses for
//! cover-based *validation* (Theorem 4) and for the F⁺-SD baseline.
//!
//! The test is decided exactly in `O(d)`: using squared distances, the gap
//!
//! ```text
//! g(q) = maxdist²(q, U) − mindist²(q, V) = Σ_i g_i(q_i)
//! ```
//!
//! is separable per dimension. Each `g_i` is a difference of piecewise
//! quadratics whose pieces are linear or convex, so the per-dimension maximum
//! over the interval `[Q.lo_i, Q.hi_i]` is attained at one of at most five
//! candidate coordinates: the interval endpoints, the midpoint of `U`'s edge
//! (where the farthest-corner term switches), and `V`'s edge endpoints
//! (where the clamp term switches). Dominance holds iff the summed maxima
//! are `≤ 0`.

use crate::mbr::Mbr;

/// Per-dimension contribution `g_i(t) = max((t−a)², (t−b)²) − dist²(t, [c,d])`.
#[inline]
fn gap_1d(t: f64, a: f64, b: f64, c: f64, d: f64) -> f64 {
    let far = {
        let da = t - a;
        let db = t - b;
        (da * da).max(db * db)
    };
    let near = if t < c {
        let d0 = c - t;
        d0 * d0
    } else if t > d {
        let d0 = t - d;
        d0 * d0
    } else {
        0.0
    };
    far - near
}

/// Maximum of `g_i` over `t ∈ [lo, hi]`.
#[inline]
fn max_gap_1d(lo: f64, hi: f64, a: f64, b: f64, c: f64, d: f64) -> f64 {
    // Candidate maximisers: the interval ends plus every breakpoint of the
    // piecewise-quadratic pieces that falls inside the interval. On each
    // piece g is linear or convex, so the piece-wise maximum sits on a piece
    // boundary.
    let mut best = gap_1d(lo, a, b, c, d).max(gap_1d(hi, a, b, c, d));
    for bp in [0.5 * (a + b), c, d] {
        if bp > lo && bp < hi {
            best = best.max(gap_1d(bp, a, b, c, d));
        }
    }
    best
}

/// Exact MBR-level full spatial dominance:
/// returns `true` iff `maxdist(q, u) ≤ mindist(q, v)` for every `q ∈ q_mbr`.
///
/// # Panics
/// Panics in debug builds if the three boxes disagree on dimensionality.
pub fn mbr_dominates(u: &Mbr, v: &Mbr, q_mbr: &Mbr) -> bool {
    max_total_gap(u, v, q_mbr) <= 0.0
}

/// Strict MBR-level dominance: `maxdist(q, u) < mindist(q, v)` for every
/// `q ∈ q_mbr`.
///
/// Strictness guarantees every instance of `U` is *strictly* closer than
/// every instance of `V` to every query instance, which in turn guarantees
/// `U_Q ≠ V_Q` — the side condition of the strict dominance operators
/// (Definitions 2/3/5). The cover-based validation rules use this variant so
/// a validated "dominates" can never be contradicted by distribution
/// equality.
pub fn mbr_dominates_strict(u: &Mbr, v: &Mbr, q_mbr: &Mbr) -> bool {
    max_total_gap(u, v, q_mbr) < 0.0
}

fn max_total_gap(u: &Mbr, v: &Mbr, q_mbr: &Mbr) -> f64 {
    debug_assert_eq!(u.dim(), v.dim());
    debug_assert_eq!(u.dim(), q_mbr.dim());
    let mut total = 0.0;
    for i in 0..u.dim() {
        total += max_gap_1d(
            q_mbr.lo()[i],
            q_mbr.hi()[i],
            u.lo()[i],
            u.hi()[i],
            v.lo()[i],
            v.hi()[i],
        );
        // Early exit is unsound here: later dimensions may contribute
        // negative slack, so we must accumulate the full sum.
    }
    total
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::point::Point;

    #[test]
    fn strict_vs_nonstrict_on_touching_boxes() {
        // Degenerate identical point boxes: distances tie everywhere, so the
        // non-strict test passes and the strict test fails.
        let u = Mbr::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        let q = Mbr::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        assert!(mbr_dominates(&u, &u, &q));
        assert!(!mbr_dominates_strict(&u, &u, &q));
        // Clearly separated boxes pass both.
        let v = Mbr::new(vec![10.0, 10.0], vec![11.0, 11.0]);
        assert!(mbr_dominates(&u, &v, &q));
        assert!(mbr_dominates_strict(&u, &v, &q));
    }

    fn b(lo: &[f64], hi: &[f64]) -> Mbr {
        Mbr::new(lo.to_vec(), hi.to_vec())
    }

    /// Brute-force oracle: sample a dense grid of (q, u, v) corner/edge
    /// combinations. For boxes, extremal distances are attained at corners,
    /// and the separable argument means checking a fine grid of q positions
    /// with exact corner distances is a sound approximation of the oracle.
    fn oracle(u: &Mbr, v: &Mbr, q: &Mbr, steps: usize) -> bool {
        let d = u.dim();
        let mut idx = vec![0usize; d];
        loop {
            let qp: Vec<f64> = (0..d)
                .map(|i| {
                    let t = idx[i] as f64 / steps as f64;
                    q.lo()[i] + t * (q.hi()[i] - q.lo()[i])
                })
                .collect();
            let qp = Point::new(qp);
            if u.max_dist2_point(&qp) > v.min_dist2_point(&qp) + 1e-12 {
                return false;
            }
            // advance the mixed-radix counter
            let mut i = 0;
            loop {
                if i == d {
                    return true;
                }
                idx[i] += 1;
                if idx[i] <= steps {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn clear_separation_dominates() {
        let u = b(&[0.0, 0.0], &[1.0, 1.0]);
        let v = b(&[10.0, 10.0], &[11.0, 11.0]);
        let q = b(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(mbr_dominates(&u, &v, &q));
        assert!(!mbr_dominates(&v, &u, &q));
    }

    #[test]
    fn overlapping_boxes_do_not_dominate() {
        let u = b(&[0.0, 0.0], &[2.0, 2.0]);
        let v = b(&[1.0, 1.0], &[3.0, 3.0]);
        let q = b(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(!mbr_dominates(&u, &v, &q));
    }

    #[test]
    fn identical_boxes_dominate_nonstrictly_only_when_degenerate() {
        // A degenerate (point) box trivially dominates itself: distances equal.
        let u = b(&[1.0, 1.0], &[1.0, 1.0]);
        let q = b(&[0.0, 0.0], &[0.5, 0.5]);
        assert!(mbr_dominates(&u, &u, &q));
        // A non-degenerate box never F-SD-dominates itself: some corner of U
        // is farther from q than the nearest point of V=U.
        let w = b(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(!mbr_dominates(&w, &w, &q));
    }

    #[test]
    fn query_extent_matters() {
        // U is closer for queries near the origin, but a large query box
        // includes positions where V wins.
        let u = b(&[0.0, 0.0], &[1.0, 1.0]);
        let v = b(&[5.0, 0.0], &[6.0, 1.0]);
        let small_q = b(&[0.0, 0.0], &[1.0, 1.0]);
        let big_q = b(&[0.0, 0.0], &[20.0, 1.0]);
        assert!(mbr_dominates(&u, &v, &small_q));
        assert!(!mbr_dominates(&u, &v, &big_q));
    }

    #[test]
    fn matches_grid_oracle_on_handmade_cases() {
        let cases = [
            (
                b(&[0.0, 0.0], &[1.0, 2.0]),
                b(&[4.0, -1.0], &[6.0, 0.0]),
                b(&[-1.0, 0.0], &[1.0, 1.0]),
            ),
            (
                b(&[0.0, 0.0], &[3.0, 3.0]),
                b(&[2.0, 2.0], &[5.0, 5.0]),
                b(&[0.0, 0.0], &[1.0, 1.0]),
            ),
            (
                b(&[-2.0, -2.0], &[-1.0, -1.0]),
                b(&[3.0, 3.0], &[4.0, 4.0]),
                b(&[-1.0, -1.0], &[0.0, 0.0]),
            ),
        ];
        for (u, v, q) in cases {
            assert_eq!(mbr_dominates(&u, &v, &q), oracle(&u, &v, &q, 16));
        }
    }

    #[test]
    fn one_dimensional_cases() {
        let u = b(&[0.0], &[1.0]);
        let v = b(&[3.0], &[4.0]);
        assert!(mbr_dominates(&u, &v, &b(&[0.0], &[1.0])));
        // Query far to the right of both: V becomes closer.
        assert!(!mbr_dominates(&u, &v, &b(&[0.0], &[10.0])));
    }
}
