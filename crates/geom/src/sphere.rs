//! Hyperspheres: minimal enclosing balls (Welzl's algorithm) and the
//! sphere-based full-spatial-dominance filter.
//!
//! The paper notes (§4.1) that the filtering technique of Long et al.
//! (SIGMOD 2014, \[25\]) "may also be applied if objects are approximated by
//! hyperspheres". This module supplies the primitives: an exact minimal
//! enclosing ball in any dimension and a *sound* (sufficient, not tight)
//! sphere dominance test — Long et al.'s optimal test is their
//! contribution; the triangle-inequality bound below never validates a
//! false dominance, it merely validates fewer true ones.

use crate::point::Point;

/// A d-dimensional ball.
#[derive(Debug, Clone, PartialEq)]
pub struct Sphere {
    /// Centre point.
    pub center: Point,
    /// Radius (≥ 0).
    pub radius: f64,
}

impl Sphere {
    /// Whether the ball contains `p` (with a small tolerance).
    pub fn contains(&self, p: &Point) -> bool {
        self.center.dist(p) <= self.radius + 1e-9
    }

    /// Minimal distance from `q` to the ball (0 if inside).
    pub fn min_dist(&self, q: &Point) -> f64 {
        (self.center.dist(q) - self.radius).max(0.0)
    }

    /// Maximal distance from `q` to the ball.
    pub fn max_dist(&self, q: &Point) -> f64 {
        self.center.dist(q) + self.radius
    }
}

/// Computes the minimal enclosing ball of `points` with Welzl's
/// move-to-front algorithm (expected linear time).
///
/// # Panics
/// Panics if `points` is empty.
pub fn min_enclosing_ball(points: &[Point]) -> Sphere {
    assert!(!points.is_empty(), "MEB of an empty point set");
    let dim = points[0].dim();
    let mut pts: Vec<&Point> = points.iter().collect();
    welzl(&mut pts, &mut Vec::new(), dim)
}

fn welzl<'a>(pts: &mut Vec<&'a Point>, support: &mut Vec<&'a Point>, dim: usize) -> Sphere {
    if support.len() == dim + 1 {
        return ball_from_support(support, dim);
    }
    let Some(p) = pts.pop() else {
        return ball_from_support(support, dim);
    };
    let ball = welzl(pts, support, dim);
    if ball.contains(p) {
        pts.push(p);
        return ball;
    }
    support.push(p);
    let ball = welzl(pts, support, dim);
    support.pop();
    pts.push(p);
    // Move-to-front: keep boundary points near the start for later calls.
    let idx = pts.len() - 1;
    pts.swap(0, idx);
    ball
}

/// Exact circumball of ≤ d+1 support points: centre
/// `c = p0 + Σ λ_i (p_i − p0)` with `(p_i − p0)·(c − p0) = |p_i − p0|²/2`.
fn ball_from_support(support: &[&Point], dim: usize) -> Sphere {
    match support.len() {
        0 => Sphere {
            center: Point::new(vec![0.0; dim]),
            radius: 0.0,
        },
        1 => Sphere {
            center: support[0].clone(),
            radius: 0.0,
        },
        _ => {
            let p0 = support[0];
            let k = support.len() - 1;
            // Build the k×k system A λ = b with
            // A[i][j] = (p_{i+1} − p0)·(p_{j+1} − p0), b[i] = |p_{i+1} − p0|²/2.
            let diffs: Vec<Vec<f64>> = support[1..]
                .iter()
                .map(|p| {
                    p.coords()
                        .iter()
                        .zip(p0.coords())
                        .map(|(a, b)| a - b)
                        .collect()
                })
                .collect();
            let mut a = vec![vec![0.0f64; k]; k];
            let mut b = vec![0.0f64; k];
            for i in 0..k {
                for j in 0..k {
                    a[i][j] = dot(&diffs[i], &diffs[j]);
                }
                b[i] = 0.5 * dot(&diffs[i], &diffs[i]);
            }
            let lambda = solve(a, b);
            let mut center: Vec<f64> = p0.coords().to_vec();
            for (l, d) in lambda.iter().zip(diffs.iter()) {
                for (c, dc) in center.iter_mut().zip(d.iter()) {
                    *c += l * dc;
                }
            }
            let center = Point::new(center);
            let radius = support
                .iter()
                .map(|p| center.dist(p))
                .max_by(f64::total_cmp)
                .unwrap_or(0.0);
            Sphere { center, radius }
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Gaussian elimination with partial pivoting; near-singular systems
/// (degenerate support sets) zero the dependent coordinates, which keeps
/// the ball finite and the enclosing radius is re-measured afterwards.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        if a[pivot][col].abs() < 1e-12 {
            // Dependent direction: leave λ at 0.
            for row in a.iter_mut().skip(col) {
                row[col] = 0.0;
            }
            continue;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pv = a[col][col];
        for cell in a[col][col..n].iter_mut() {
            *cell /= pv;
        }
        b[col] /= pv;
        for i in 0..n {
            if i != col {
                let f = a[i][col];
                if f.abs() > 0.0 {
                    let pivot_row = a[col].clone();
                    for (cell, &p) in a[i].iter_mut().zip(pivot_row.iter()) {
                        *cell -= f * p;
                    }
                    b[i] -= f * b[col];
                }
            }
        }
    }
    b
}

/// Sufficient hypersphere dominance: every point of `u` is at least as
/// close as every point of `v` to every point of `q` whenever
///
/// ```text
/// |c_q − c_u| + r_q + r_u  ≤  |c_q − c_v| − r_q − r_v
/// ```
///
/// (triangle-inequality bound). `true` guarantees F-SD of the enclosed
/// point sets; `false` is inconclusive — the optimal decision is the
/// subject of \[25\].
pub fn sphere_dominates_sufficient(u: &Sphere, v: &Sphere, q: &Sphere) -> bool {
    let du = q.center.dist(&u.center);
    let dv = q.center.dist(&v.center);
    du + q.radius + u.radius <= dv - q.radius - v.radius
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::new(c.to_vec())
    }

    #[test]
    fn meb_of_single_and_pair() {
        let s = min_enclosing_ball(&[p(&[2.0, 3.0])]);
        assert_eq!(s.radius, 0.0);
        assert_eq!(s.center, p(&[2.0, 3.0]));
        let s = min_enclosing_ball(&[p(&[0.0, 0.0]), p(&[4.0, 0.0])]);
        assert!((s.radius - 2.0).abs() < 1e-9);
        assert!(s.center.dist(&p(&[2.0, 0.0])) < 1e-9);
    }

    #[test]
    fn meb_of_triangle() {
        // Right triangle: MEB is the circumcircle on the hypotenuse.
        let pts = [p(&[0.0, 0.0]), p(&[6.0, 0.0]), p(&[0.0, 8.0])];
        let s = min_enclosing_ball(&pts);
        assert!((s.radius - 5.0).abs() < 1e-9);
        assert!(s.center.dist(&p(&[3.0, 4.0])) < 1e-9);
        for q in &pts {
            assert!(s.contains(q));
        }
    }

    #[test]
    fn meb_contains_all_and_is_tight() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for dim in [2usize, 3, 4] {
            for _ in 0..20 {
                let pts: Vec<Point> = (0..rng.gen_range(1..20))
                    .map(|_| {
                        Point::new(
                            (0..dim)
                                .map(|_| rng.gen_range(-10.0..10.0))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                let s = min_enclosing_ball(&pts);
                for q in &pts {
                    assert!(s.contains(q), "MEB misses a point (dim {dim})");
                }
                // Tightness: radius is at least half the diameter.
                let mut diam = 0.0f64;
                for i in 0..pts.len() {
                    for j in (i + 1)..pts.len() {
                        diam = diam.max(pts[i].dist(&pts[j]));
                    }
                }
                assert!(
                    s.radius <= diam + 1e-6,
                    "radius {} exceeds diameter {diam}",
                    s.radius
                );
                assert!(s.radius >= diam / 2.0 - 1e-6, "radius below half-diameter");
            }
        }
    }

    #[test]
    fn meb_degenerate_duplicates() {
        let pts = vec![p(&[1.0, 1.0]); 5];
        let s = min_enclosing_ball(&pts);
        assert!(s.radius < 1e-9);
    }

    #[test]
    fn sphere_dominance_sound() {
        let u = Sphere {
            center: p(&[0.0, 0.0]),
            radius: 1.0,
        };
        let v = Sphere {
            center: p(&[20.0, 0.0]),
            radius: 1.0,
        };
        let q = Sphere {
            center: p(&[0.0, 3.0]),
            radius: 1.0,
        };
        assert!(sphere_dominates_sufficient(&u, &v, &q));
        assert!(!sphere_dominates_sufficient(&v, &u, &q));
        // Sample check: every (qp, up, vp) triple satisfies the distances.
        for t in 0..16 {
            let ang = t as f64;
            let qp = p(&[ang.cos() + 0.0, ang.sin() + 3.0]);
            let up = p(&[(ang * 1.7).cos(), (ang * 1.7).sin()]);
            let vp = p(&[20.0 + (ang * 2.3).cos(), (ang * 2.3).sin()]);
            assert!(up.dist(&qp) <= vp.dist(&qp));
        }
    }

    #[test]
    fn sphere_dominance_inconclusive_when_overlapping() {
        let u = Sphere {
            center: p(&[0.0, 0.0]),
            radius: 2.0,
        };
        let v = Sphere {
            center: p(&[1.0, 0.0]),
            radius: 2.0,
        };
        let q = Sphere {
            center: p(&[0.0, 1.0]),
            radius: 0.5,
        };
        assert!(!sphere_dominates_sufficient(&u, &v, &q));
    }

    #[test]
    fn min_max_dist_bounds() {
        let s = Sphere {
            center: p(&[0.0, 0.0]),
            radius: 2.0,
        };
        let q = p(&[5.0, 0.0]);
        assert!((s.min_dist(&q) - 3.0).abs() < 1e-12);
        assert!((s.max_dist(&q) - 7.0).abs() < 1e-12);
        assert_eq!(s.min_dist(&p(&[1.0, 0.0])), 0.0);
    }
}
