//! A small dense two-phase simplex solver.
//!
//! Used by the geometry layer for convex-hull membership and hull-vertex
//! tests in dimensions above two (the paper's C++ implementation delegated
//! hull computation to qhull; we build the needed primitives ourselves).
//!
//! Solves problems in standard form:
//!
//! ```text
//! minimize    c · x
//! subject to  A x = b,   x ≥ 0
//! ```
//!
//! Problem sizes in this crate are tiny (tens of variables, `d + 1`
//! constraints), so a dense tableau with Bland's anti-cycling rule is both
//! simple and fast enough.

/// Outcome of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution found: the variable assignment and objective value.
    Optimal {
        /// The optimal variable assignment.
        x: Vec<f64>,
        /// The optimal objective value `c·x`.
        objective: f64,
    },
    /// The constraint set `Ax = b, x ≥ 0` is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// A dense standard-form linear program.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Constraint matrix, row-major: `rows × cols`.
    a: Vec<Vec<f64>>,
    /// Right-hand side, one entry per row.
    b: Vec<f64>,
    /// Objective coefficients, one per column.
    c: Vec<f64>,
}

impl StandardLp {
    /// Creates a standard-form LP `min c·x  s.t.  Ax = b, x ≥ 0`.
    ///
    /// # Panics
    /// Panics if the shapes are inconsistent.
    pub fn new(a: Vec<Vec<f64>>, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.len(), b.len(), "one rhs entry per constraint row");
        for row in &a {
            assert_eq!(row.len(), c.len(), "row width must match objective");
        }
        StandardLp { a, b, c }
    }

    /// Solves the LP with the two-phase simplex method.
    pub fn solve(&self) -> LpResult {
        let m = self.a.len();
        let n = self.c.len();
        if m == 0 {
            // No constraints: optimum is 0 at x = 0 unless some c_j < 0.
            if self.c.iter().any(|&cj| cj < -EPS) {
                return LpResult::Unbounded;
            }
            return LpResult::Optimal {
                x: vec![0.0; n],
                objective: 0.0,
            };
        }

        // Tableau layout: columns [x_0..x_n | artificial_0..artificial_m | rhs].
        // Rows [constraint_0..constraint_m | objective].
        let cols = n + m + 1;
        let mut t = vec![vec![0.0; cols]; m + 1];
        for (i, row) in self.a.iter().enumerate() {
            let flip = if self.b[i] < 0.0 { -1.0 } else { 1.0 };
            for (j, &v) in row.iter().enumerate() {
                t[i][j] = flip * v;
            }
            t[i][n + i] = 1.0;
            t[i][cols - 1] = flip * self.b[i];
        }
        let mut basis: Vec<usize> = (n..n + m).collect();

        // Phase 1: minimise the sum of artificials. Expressing the objective
        // in the initial (all-artificial) basis gives reduced cost
        // `-Σ_i a_ij` for each real column and 0 for the basic artificials;
        // the rhs entry holds the negated current objective value.
        for j in 0..cols {
            let s: f64 = t[..m].iter().map(|row| row[j]).sum();
            t[m][j] = -s;
        }
        for cell in t[m][n..n + m].iter_mut() {
            *cell = 0.0;
        }
        // Entering columns are restricted to the real variables; artificial
        // variables never need to re-enter the basis.
        if !simplex(&mut t, &mut basis, n) {
            unreachable!("phase-1 objective is bounded below by 0");
        }
        if t[m][cols - 1].abs() > 1e-7 {
            return LpResult::Infeasible;
        }
        // Drive any artificial variables that remain basic out of the basis.
        for i in 0..m {
            if basis[i] >= n {
                if let Some(j) = (0..n).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j);
                }
                // If the row is all-zero over real variables it is a
                // redundant constraint; the artificial stays basic at zero,
                // which is harmless as long as it never re-enters (it cannot:
                // phase 2 restricts entering columns to the real variables).
            }
        }

        // Phase 2: install the real objective expressed in the current basis.
        t[m].iter_mut().for_each(|c| *c = 0.0);
        t[m][..n].copy_from_slice(&self.c);
        for i in 0..m {
            if basis[i] < n {
                let cb = self.c[basis[i]];
                if cb != 0.0 {
                    let row = t[i].clone();
                    for (cell, &p) in t[m].iter_mut().zip(row.iter()) {
                        *cell -= cb * p;
                    }
                }
            }
        }
        if !simplex(&mut t, &mut basis, n) {
            return LpResult::Unbounded;
        }

        let mut x = vec![0.0; n];
        for (i, &bj) in basis.iter().enumerate() {
            if bj < n {
                x[bj] = t[i][cols - 1];
            }
        }
        let objective: f64 = self.c.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
        LpResult::Optimal { x, objective }
    }
}

/// Runs simplex iterations on the tableau until optimality (`true`) or a
/// certificate of unboundedness (`false`). Only columns `< limit` may enter
/// the basis. Uses Bland's rule for anti-cycling.
fn simplex(t: &mut [Vec<f64>], basis: &mut [usize], limit: usize) -> bool {
    let m = t.len() - 1;
    let cols = t[0].len();
    loop {
        // Bland: entering column = smallest index with negative reduced cost.
        let Some(enter) = (0..limit).find(|&j| t[m][j] < -EPS) else {
            return true;
        };
        // Ratio test, Bland tie-break on smallest basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols - 1] / t[i][enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // nothing limits the entering variable
        };
        pivot(t, basis, leave, enter);
    }
}

/// Pivots the tableau so that column `enter` becomes basic in row `leave`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], leave: usize, enter: usize) {
    let pv = t[leave][enter];
    debug_assert!(pv.abs() > 1e-12, "pivot on a (near-)zero element");
    for cell in t[leave].iter_mut() {
        *cell /= pv;
    }
    let pivot_row = t[leave].clone();
    for (i, row) in t.iter_mut().enumerate() {
        if i != leave {
            let f = row[enter];
            if f != 0.0 {
                for (cell, &p) in row.iter_mut().zip(pivot_row.iter()) {
                    *cell -= f * p;
                }
            }
        }
    }
    basis[leave] = enter;
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn assert_opt(r: &LpResult, want: f64) {
        match r {
            LpResult::Optimal { objective, .. } => {
                assert!(
                    (objective - want).abs() < 1e-6,
                    "objective {objective} != {want}"
                );
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_bounded_problem() {
        // min -x - y  s.t.  x + y + s = 4, x + 3y + t = 6
        let lp = StandardLp::new(
            vec![vec![1.0, 1.0, 1.0, 0.0], vec![1.0, 3.0, 0.0, 1.0]],
            vec![4.0, 6.0],
            vec![-1.0, -1.0, 0.0, 0.0],
        );
        assert_opt(&lp.solve(), -4.0); // x=4, y=0 or x=3,y=1
    }

    #[test]
    fn infeasible_detected() {
        // x = 1 and x = 2 simultaneously.
        let lp = StandardLp::new(vec![vec![1.0], vec![1.0]], vec![1.0, 2.0], vec![0.0]);
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x  s.t.  x - y = 0  (x can grow with y)
        let lp = StandardLp::new(vec![vec![1.0, -1.0]], vec![0.0], vec![-1.0, 0.0]);
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // -x = -3  =>  x = 3; min x = 3.
        let lp = StandardLp::new(vec![vec![-1.0]], vec![-3.0], vec![1.0]);
        let r = lp.solve();
        assert_opt(&r, 3.0);
    }

    #[test]
    fn convex_combination_feasibility() {
        // Is (0.5) a convex combination of {0, 1}?  λ0*0 + λ1*1 = 0.5, Σλ = 1.
        let lp = StandardLp::new(
            vec![vec![0.0, 1.0], vec![1.0, 1.0]],
            vec![0.5, 1.0],
            vec![0.0, 0.0],
        );
        assert!(matches!(lp.solve(), LpResult::Optimal { .. }));
        // Is (2.0)?  Infeasible.
        let lp = StandardLp::new(
            vec![vec![0.0, 1.0], vec![1.0, 1.0]],
            vec![2.0, 1.0],
            vec![0.0, 0.0],
        );
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // Duplicate rows are redundant but consistent.
        let lp = StandardLp::new(
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![2.0, 2.0],
            vec![1.0, 2.0],
        );
        assert_opt(&lp.solve(), 2.0); // x=2, y=0
    }
}
