//! d-dimensional points and Euclidean distance primitives.
//!
//! The paper assumes Euclidean distance throughout (§2.1) but notes the
//! techniques extend to other metrics; we keep the point representation
//! metric-agnostic and expose squared/plain Euclidean helpers.

use std::fmt;

/// A point (instance) in d-dimensional space.
///
/// Coordinates are stored in a boxed slice: a point is created once and never
/// resized, so we save a word over `Vec` (see the type-size guidance in the
/// Rust perf book) — millions of instances are held in memory at once.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    /// Panics if `coords` is empty or contains a non-finite value.
    pub fn new(coords: impl Into<Box<[f64]>>) -> Self {
        let coords = coords.into();
        assert!(!coords.is_empty(), "a point needs at least one dimension");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Point { coords }
    }

    /// The dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The `i`-th coordinate (`p[i]` in the paper's notation).
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Squared Euclidean distance to another point.
    ///
    /// # Panics
    /// Panics in debug builds if dimensions differ.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance δ(u, v) to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Manhattan (L1) distance. The paper's techniques extend to other
    /// metrics (§2.1); the dominance operators as shipped use L2, but the
    /// metric helpers are provided for downstream distance distributions.
    pub fn dist_l1(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Chebyshev (L∞) distance.
    pub fn dist_linf(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b).abs())
            .max_by(f64::total_cmp)
            .unwrap_or(0.0)
    }

    /// Minkowski distance of order `p ≥ 1`.
    ///
    /// # Panics
    /// Panics if `p < 1` (not a metric below 1).
    pub fn dist_minkowski(&self, other: &Point, p: f64) -> f64 {
        assert!(p >= 1.0, "Minkowski order must be at least 1");
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b).abs().powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    /// Minimal Euclidean distance from this point to a non-empty set of
    /// points: `δ_min(x, S) = min_{y ∈ S} δ(x, y)`.
    ///
    /// # Panics
    /// Panics if `set` is empty.
    pub fn dist_min(&self, set: &[Point]) -> f64 {
        assert!(!set.is_empty(), "δ_min of an empty set is undefined");
        set.iter()
            .map(|y| self.dist(y))
            .min_by(f64::total_cmp)
            .unwrap_or(f64::INFINITY)
    }

    /// Maximal Euclidean distance from this point to a non-empty set of
    /// points: `δ_max(x, S) = max_{y ∈ S} δ(x, y)`.
    ///
    /// # Panics
    /// Panics if `set` is empty.
    pub fn dist_max(&self, set: &[Point]) -> f64 {
        assert!(!set.is_empty(), "δ_max of an empty set is undefined");
        set.iter()
            .map(|y| self.dist(y))
            .max_by(f64::total_cmp)
            .unwrap_or(0.0)
    }
}

/// Squared Euclidean distance between two coordinate rows.
///
/// This is the borrowed-slice twin of [`Point::dist2`] for callers that keep
/// instances in a flat row-major store: the fold order (left-to-right
/// `zip`/`sum`) is identical, so results are bit-for-bit equal to the boxed
/// representation.
///
/// # Panics
/// Panics in debug builds if the rows have different lengths.
#[inline]
pub fn dist2_slice(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance δ(a, b) between two coordinate rows — the
/// borrowed-slice twin of [`Point::dist`].
#[inline]
pub fn dist_slice(a: &[f64], b: &[f64]) -> f64 {
    dist2_slice(a, b).sqrt()
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point::new(v)
    }
}

impl<const N: usize> From<[f64; N]> for Point {
    fn from(a: [f64; N]) -> Self {
        Point::new(a.to_vec())
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::new(c.to_vec())
    }

    #[test]
    fn distance_basics() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let a = p(&[1.0, 2.0, 3.0]);
        let b = p(&[-4.0, 0.5, 9.0]);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn min_max_set_distance() {
        let x = p(&[0.0, 0.0]);
        let set = vec![p(&[1.0, 0.0]), p(&[0.0, 2.0]), p(&[3.0, 4.0])];
        assert_eq!(x.dist_min(&set), 1.0);
        assert_eq!(x.dist_max(&set), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_point_rejected() {
        let _ = Point::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = p(&[0.0, f64::NAN]);
    }

    #[test]
    fn minkowski_family_consistent() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[3.0, 4.0]);
        assert_eq!(a.dist_l1(&b), 7.0);
        assert_eq!(a.dist_linf(&b), 4.0);
        assert!((a.dist_minkowski(&b, 1.0) - 7.0).abs() < 1e-12);
        assert!((a.dist_minkowski(&b, 2.0) - 5.0).abs() < 1e-12);
        // L∞ is the p → ∞ limit; p = 64 is already close.
        assert!((a.dist_minkowski(&b, 64.0) - 4.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn minkowski_below_one_rejected() {
        let a = p(&[0.0]);
        let _ = a.dist_minkowski(&p(&[1.0]), 0.5);
    }

    #[test]
    fn slice_kernels_match_point_kernels_bitwise() {
        let a = p(&[0.1, 0.2, 0.3, 0.4]);
        let b = p(&[-1.7, 2.5, 0.30000000000000004, 1e-13]);
        assert_eq!(
            dist2_slice(a.coords(), b.coords()).to_bits(),
            a.dist2(&b).to_bits()
        );
        assert_eq!(
            dist_slice(a.coords(), b.coords()).to_bits(),
            a.dist(&b).to_bits()
        );
    }

    #[test]
    fn from_array() {
        let a: Point = [1.0, 2.0].into();
        assert_eq!(a.dim(), 2);
        assert_eq!(a.coord(1), 2.0);
    }
}
