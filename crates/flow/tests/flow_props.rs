//! Property tests for the flow substrate: Dinic against an independent
//! BFS Ford–Fulkerson oracle, flow conservation, and min-cost flow against
//! exhaustive assignment enumeration.

use osd_flow::{MaxFlow, MinCostFlow};
use proptest::prelude::*;

/// Independent max-flow oracle: Edmonds–Karp on an adjacency matrix.
fn edmonds_karp(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
    let mut cap = vec![vec![0u64; n]; n];
    for &(u, v, c) in edges {
        cap[u][v] = cap[u][v].saturating_add(c);
    }
    let mut flow = 0u64;
    loop {
        // BFS for an augmenting path.
        let mut prev = vec![usize::MAX; n];
        prev[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if prev[v] == usize::MAX && cap[u][v] > 0 {
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if prev[t] == usize::MAX {
            return flow;
        }
        // Bottleneck.
        let mut push = u64::MAX;
        let mut v = t;
        while v != s {
            let u = prev[v];
            push = push.min(cap[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = prev[v];
            cap[u][v] -= push;
            cap[v][u] += push;
            v = u;
        }
        flow += push;
    }
}

/// Brute-force assignment cost for an n×n unit-supply transportation
/// problem (n ≤ 5).
fn brute_assignment(costs: &[Vec<f64>]) -> f64 {
    let n = costs.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    fn rec(perm: &mut Vec<usize>, k: usize, costs: &[Vec<f64>], best: &mut f64) {
        if k == perm.len() {
            let c: f64 = perm.iter().enumerate().map(|(i, &j)| costs[i][j]).sum();
            if c < *best {
                *best = c;
            }
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            rec(perm, k + 1, costs, best);
            perm.swap(k, i);
        }
    }
    rec(&mut perm, 0, costs, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dinic matches Edmonds–Karp on random sparse digraphs.
    #[test]
    fn prop_dinic_matches_oracle(
        n in 4usize..10,
        raw_edges in prop::collection::vec((0usize..10, 0usize..10, 1u64..50), 1..30),
    ) {
        let edges: Vec<(usize, usize, u64)> = raw_edges
            .into_iter()
            .filter(|&(u, v, _)| u < n && v < n && u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        let (s, t) = (0, n - 1);
        let mut dinic = MaxFlow::new(n);
        for &(u, v, c) in &edges {
            dinic.add_edge(u, v, c);
        }
        let got = dinic.max_flow(s, t);
        let want = edmonds_karp(n, &edges, s, t);
        prop_assert_eq!(got, want);
    }

    /// Per-edge flows read back via handles satisfy conservation at every
    /// interior vertex and respect capacities.
    #[test]
    fn prop_flow_conservation(
        n in 4usize..9,
        raw_edges in prop::collection::vec((0usize..9, 0usize..9, 1u64..40), 1..25),
    ) {
        let edges: Vec<(usize, usize, u64)> = raw_edges
            .into_iter()
            .filter(|&(u, v, _)| u < n && v < n && u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        let (s, t) = (0, n - 1);
        let mut g = MaxFlow::new(n);
        let handles: Vec<usize> = edges.iter().map(|&(u, v, c)| g.add_edge(u, v, c)).collect();
        let total = g.max_flow(s, t);
        let mut net = vec![0i128; n];
        for (h, &(u, v, c)) in handles.iter().zip(edges.iter()) {
            let f = g.flow_on(*h);
            prop_assert!(f <= c, "capacity violated");
            net[u] -= f as i128;
            net[v] += f as i128;
        }
        for (x, &nx) in net.iter().enumerate() {
            if x != s && x != t {
                prop_assert_eq!(nx, 0, "conservation violated at {}", x);
            }
        }
        prop_assert_eq!(net[t], total as i128);
        prop_assert_eq!(net[s], -(total as i128));
    }

    /// Min-cost flow solves the assignment problem exactly.
    #[test]
    fn prop_mcmf_assignment(
        n in 2usize..5,
        raw in prop::collection::vec(0.0f64..100.0, 25),
    ) {
        let costs: Vec<Vec<f64>> = (0..n).map(|i| (0..n).map(|j| raw[i * 5 + j]).collect()).collect();
        let (s, t) = (2 * n, 2 * n + 1);
        let mut g = MinCostFlow::new(2 * n + 2);
        for (i, row) in costs.iter().enumerate() {
            g.add_edge(s, i, 1, 0.0);
            g.add_edge(n + i, t, 1, 0.0);
            for (j, &cost) in row.iter().enumerate() {
                g.add_edge(i, n + j, 1, cost);
            }
        }
        let (flow, cost) = g.min_cost_flow(s, t, n as u64);
        prop_assert_eq!(flow, n as u64);
        let want = brute_assignment(&costs);
        prop_assert!((cost - want).abs() < 1e-6, "mcmf {} vs brute {}", cost, want);
    }

    /// Sending a limit smaller than the max flow routes exactly the limit at
    /// minimal cost (monotone in the limit).
    #[test]
    fn prop_mcmf_respects_limit(limit in 1u64..5) {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 3, 1.0);
        g.add_edge(0, 2, 3, 2.0);
        g.add_edge(1, 3, 3, 1.0);
        g.add_edge(2, 3, 3, 2.0);
        let (flow, cost) = g.min_cost_flow(0, 3, limit);
        prop_assert_eq!(flow, limit.min(6));
        // First 3 units cost 2 each (cheap path), further units 4 each.
        let want = if limit <= 3 {
            2.0 * limit as f64
        } else {
            6.0 + 4.0 * (limit - 3) as f64
        };
        prop_assert!((cost - want).abs() < 1e-9);
    }
}
