//! # osd-flow
//!
//! Network-flow substrate for the `osd` workspace, built from scratch:
//!
//! * [`MaxFlow`] — Dinic's algorithm on integer (fixed-point) capacities.
//!   The P-SD dominance check reduces to max-flow (Theorem 12 of the paper):
//!   `P-SD(U, V, Q)` holds iff the `u ⪯_Q v` bipartite network carries a
//!   flow equal to the objects' total probability mass.
//! * [`MinCostFlow`] — successive-shortest-paths min-cost max-flow, backing
//!   the Earth Mover's / Netflow distance of NN-function family N3
//!   (Appendix A).
//!
//! Both solvers use exact integer capacities; probability masses are
//! quantised to fixed point by callers (see `osd-uncertain::quantize`).
//!
//! ```
//! use osd_flow::{MaxFlow, MinCostFlow};
//!
//! // Max-flow on a diamond.
//! let mut g = MaxFlow::new(4);
//! g.add_edge(0, 1, 10);
//! g.add_edge(0, 2, 10);
//! g.add_edge(1, 3, 4);
//! g.add_edge(2, 3, 9);
//! g.add_edge(1, 2, 6);
//! assert_eq!(g.max_flow(0, 3), 13);
//!
//! // Min-cost flow picks the cheap route first.
//! let mut g = MinCostFlow::new(3);
//! g.add_edge(0, 1, 5, 1.0);
//! g.add_edge(1, 2, 5, 2.0);
//! let (flow, cost) = g.min_cost_flow(0, 2, 3);
//! assert_eq!(flow, 3);
//! assert_eq!(cost, 9.0);
//! ```

#![warn(missing_docs)]

mod dinic;
mod mcmf;

pub use dinic::{Cap, MaxFlow};
pub use mcmf::MinCostFlow;
