//! Dinic's maximum-flow algorithm on integer capacities.
//!
//! The P-SD dominance check reduces to a max-flow problem (Theorem 12):
//! P-SD(U, V, Q) holds iff the bipartite network built from the `u ⪯_Q v`
//! relation carries a flow of value 1 (the total probability mass).
//! Probabilities are quantised to fixed-point integers by the caller
//! (`osd-core`), so the solver works on exact integer arithmetic and the
//! "flow value = 1" test is exact.

/// Capacity type used by the flow network.
pub type Cap = u64;

/// A directed edge of the residual network.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: Cap,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A flow network for Dinic's algorithm.
///
/// Vertices are dense indices `0..n`. Edges are added with capacities; the
/// reverse (residual) edges are managed internally.
#[derive(Debug, Clone, Default)]
pub struct MaxFlow {
    graph: Vec<Vec<Edge>>,
    /// (vertex, edge index) pairs remembering insertion order, so callers
    /// can read back per-edge flow after the run.
    handles: Vec<(usize, usize)>,
    /// BFS level labels, kept across solves so [`MaxFlow::reset`] arenas
    /// allocate nothing in steady state.
    level: Vec<i32>,
    /// DFS per-vertex edge cursors, reused like `level`.
    iter: Vec<usize>,
    /// BFS queue, reused like `level`.
    queue: std::collections::VecDeque<usize>,
}

impl MaxFlow {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        MaxFlow {
            graph: vec![Vec::new(); n],
            handles: Vec::new(),
            level: Vec::new(),
            iter: Vec::new(),
            queue: std::collections::VecDeque::new(),
        }
    }

    /// Clears the network down to `n` isolated vertices while keeping every
    /// allocation (adjacency lists, handle table, BFS/DFS scratch), so a
    /// caller solving many small networks — the per-pair P-SD checks —
    /// allocates O(1) amortised per solve instead of rebuilding the arena.
    pub fn reset(&mut self, n: usize) {
        for adj in &mut self.graph {
            adj.clear();
        }
        if self.graph.len() > n {
            self.graph.truncate(n);
        } else {
            self.graph.resize_with(n, Vec::new);
        }
        self.handles.clear();
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap`; returns a
    /// handle usable with [`MaxFlow::flow_on`] after solving.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: Cap) -> usize {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "vertex out of range"
        );
        assert_ne!(from, to, "self-loops are not allowed");
        let rev_from = self.graph[to].len();
        let idx = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            cap,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0,
            rev: idx,
        });
        self.handles.push((from, idx));
        self.handles.len() - 1
    }

    /// Computes the maximum flow from `s` to `t`, mutating the residual
    /// network in place. Returns the flow value.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> Cap {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.graph.len();
        let mut total: Cap = 0;
        // The scratch buffers live on the struct so repeated solves on a
        // [`MaxFlow::reset`] arena reuse them; they are taken out for the
        // duration of the solve because `dfs` needs `&mut self` alongside.
        let mut level = std::mem::take(&mut self.level);
        let mut iter = std::mem::take(&mut self.iter);
        let mut queue = std::mem::take(&mut self.queue);
        level.clear();
        level.resize(n, -1);
        iter.clear();
        iter.resize(n, 0);
        loop {
            // BFS: build the level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for e in &self.graph[v] {
                    if e.cap > 0 && level[e.to] < 0 {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[t] < 0 {
                break;
            }
            // DFS blocking flow.
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, Cap::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        self.level = level;
        self.iter = iter;
        self.queue = queue;
        total
    }

    fn dfs(&mut self, v: usize, t: usize, limit: Cap, level: &[i32], iter: &mut [usize]) -> Cap {
        if v == t {
            return limit;
        }
        while iter[v] < self.graph[v].len() {
            let i = iter[v];
            let (to, cap, rev) = {
                let e = &self.graph[v][i];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[v] < level[to] {
                let d = self.dfs(to, t, limit.min(cap), level, iter);
                if d > 0 {
                    self.graph[v][i].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// The flow routed over the edge `handle` after [`MaxFlow::max_flow`]:
    /// the capacity accumulated on its reverse edge.
    pub fn flow_on(&self, handle: usize) -> Cap {
        let (from, idx) = self.handles[handle];
        let e = &self.graph[from][idx];
        self.graph[e.to][e.rev].cap
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MaxFlow::new(2);
        let e = g.add_edge(0, 1, 7);
        assert_eq!(g.max_flow(0, 1), 7);
        assert_eq!(g.flow_on(e), 7);
    }

    #[test]
    fn classic_diamond() {
        // s -> a(10), s -> b(10), a -> t(4), b -> t(9), a -> b(6)
        let mut g = MaxFlow::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 2, 10);
        g.add_edge(1, 3, 4);
        g.add_edge(2, 3, 9);
        g.add_edge(1, 2, 6);
        assert_eq!(g.max_flow(0, 3), 13);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = MaxFlow::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(g.max_flow(0, 3), 0);
    }

    #[test]
    fn bipartite_perfect_matching() {
        // 3 left, 3 right; complete bipartite, unit capacities everywhere.
        let (s, t) = (6, 7);
        let mut g = MaxFlow::new(8);
        for l in 0..3 {
            g.add_edge(s, l, 1);
            g.add_edge(3 + l, t, 1);
        }
        for l in 0..3 {
            for r in 0..3 {
                g.add_edge(l, 3 + r, 1);
            }
        }
        assert_eq!(g.max_flow(s, t), 3);
    }

    #[test]
    fn bipartite_bottleneck() {
        // Two left vertices both only connect to the same right vertex.
        let (s, t) = (4, 5);
        let mut g = MaxFlow::new(6);
        g.add_edge(s, 0, 1);
        g.add_edge(s, 1, 1);
        g.add_edge(2, t, 1);
        g.add_edge(3, t, 1);
        g.add_edge(0, 2, u64::MAX / 2);
        g.add_edge(1, 2, u64::MAX / 2);
        assert_eq!(g.max_flow(s, t), 1);
    }

    #[test]
    fn reset_arena_matches_fresh_networks() {
        // One arena solving a sequence of differently-shaped networks must
        // agree with a fresh MaxFlow per network.
        type Shape = (usize, &'static [(usize, usize, Cap)], usize, usize);
        let mut arena = MaxFlow::new(0);
        let shapes: [Shape; 3] = [
            (
                4,
                &[(0, 1, 10), (0, 2, 10), (1, 3, 4), (2, 3, 9), (1, 2, 6)],
                0,
                3,
            ),
            (2, &[(0, 1, 7)], 0, 1),
            (
                6,
                &[
                    (4, 0, 1),
                    (4, 1, 1),
                    (2, 5, 1),
                    (3, 5, 1),
                    (0, 2, 8),
                    (1, 2, 8),
                ],
                4,
                5,
            ),
        ];
        for (n, edges, s, t) in shapes {
            arena.reset(n);
            assert_eq!(arena.vertex_count(), n);
            let mut fresh = MaxFlow::new(n);
            let mut arena_handles = Vec::new();
            let mut fresh_handles = Vec::new();
            for &(a, b, c) in edges {
                arena_handles.push(arena.add_edge(a, b, c));
                fresh_handles.push(fresh.add_edge(a, b, c));
            }
            assert_eq!(arena.max_flow(s, t), fresh.max_flow(s, t));
            for (ha, hf) in arena_handles.iter().zip(fresh_handles.iter()) {
                assert_eq!(arena.flow_on(*ha), fresh.flow_on(*hf));
            }
        }
    }

    #[test]
    fn reset_shrinks_and_grows() {
        let mut g = MaxFlow::new(3);
        g.add_edge(0, 1, 2);
        g.reset(5);
        assert_eq!(g.vertex_count(), 5);
        g.add_edge(0, 4, 3);
        assert_eq!(g.max_flow(0, 4), 3);
        g.reset(2);
        assert_eq!(g.vertex_count(), 2);
        g.add_edge(0, 1, 9);
        assert_eq!(g.max_flow(0, 1), 9);
    }

    #[test]
    fn flow_conservation_via_handles() {
        let mut g = MaxFlow::new(4);
        let e1 = g.add_edge(0, 1, 10);
        let e2 = g.add_edge(1, 2, 5);
        let e3 = g.add_edge(1, 3, 5);
        let e4 = g.add_edge(2, 3, 5);
        let total = g.max_flow(0, 3);
        assert_eq!(total, 10);
        assert_eq!(g.flow_on(e1), 10);
        assert_eq!(g.flow_on(e2), 5);
        assert_eq!(g.flow_on(e3), 5);
        assert_eq!(g.flow_on(e4), 5);
    }
}
