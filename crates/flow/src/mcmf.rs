//! Minimum-cost maximum-flow via successive shortest augmenting paths.
//!
//! Backs the Earth Mover's / Netflow distance (Appendix A of the paper): the
//! distance network between an object `U` and the query `Q` carries unit
//! total probability; the EMD is the minimal cost of a value-1 flow.
//!
//! Capacities are fixed-point integers (supplied by the caller), costs are
//! `f64` distances (non-negative, so no negative cycles can arise; residual
//! arcs may have negative cost, which the Bellman–Ford/SPFA search handles).

use crate::dinic::Cap;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: Cap,
    cost: f64,
    rev: usize,
}

/// A min-cost max-flow network.
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<Edge>>,
    handles: Vec<(usize, usize)>,
}

impl MinCostFlow {
    /// Creates a network with `n` vertices.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
            handles: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge with capacity `cap` and per-unit cost `cost ≥ 0`.
    /// Returns a handle for [`MinCostFlow::flow_on`].
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or negative/non-finite
    /// cost.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: Cap, cost: f64) -> usize {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "vertex out of range"
        );
        assert_ne!(from, to, "self-loops are not allowed");
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "edge cost must be finite and non-negative"
        );
        let rev_from = self.graph[to].len();
        let idx = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            cap,
            cost,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0,
            cost: -cost,
            rev: idx,
        });
        self.handles.push((from, idx));
        self.handles.len() - 1
    }

    /// Sends up to `limit` units of flow from `s` to `t` along successively
    /// cheapest paths. Returns `(flow_sent, total_cost)`.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn min_cost_flow(&mut self, s: usize, t: usize, limit: Cap) -> (Cap, f64) {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.graph.len();
        let mut flow: Cap = 0;
        let mut cost = 0.0f64;
        while flow < limit {
            // SPFA (queue-based Bellman–Ford) shortest path in the residual
            // network; residual arcs can be negative but no negative cycles
            // exist because original costs are non-negative.
            let mut dist = vec![f64::INFINITY; n];
            let mut in_queue = vec![false; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[s] = 0.0;
            let mut queue = std::collections::VecDeque::from([s]);
            in_queue[s] = true;
            while let Some(v) = queue.pop_front() {
                in_queue[v] = false;
                let dv = dist[v];
                for (i, e) in self.graph[v].iter().enumerate() {
                    if e.cap > 0 && dv + e.cost < dist[e.to] - 1e-12 {
                        dist[e.to] = dv + e.cost;
                        prev[e.to] = Some((v, i));
                        if !in_queue[e.to] {
                            in_queue[e.to] = true;
                            queue.push_back(e.to);
                        }
                    }
                }
            }
            if prev[t].is_none() {
                break; // t unreachable: max flow reached
            }
            // Find bottleneck along the path.
            let mut push = limit - flow;
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                push = push.min(self.graph[u][i].cap);
                v = u;
            }
            // Apply.
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                let rev = self.graph[u][i].rev;
                self.graph[u][i].cap -= push;
                self.graph[v][rev].cap += push;
                cost += self.graph[u][i].cost * push as f64;
                v = u;
            }
            flow += push;
        }
        (flow, cost)
    }

    /// The flow routed over the edge `handle` after the run.
    pub fn flow_on(&self, handle: usize) -> Cap {
        let (from, idx) = self.handles[handle];
        let e = &self.graph[from][idx];
        self.graph[e.to][e.rev].cap
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn chooses_cheaper_path() {
        // Two parallel 2-hop paths with different costs.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 5.0);
        g.add_edge(2, 3, 1, 5.0);
        let (f, c) = g.min_cost_flow(0, 3, 1);
        assert_eq!(f, 1);
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uses_both_paths_when_needed() {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 5.0);
        g.add_edge(2, 3, 1, 5.0);
        let (f, c) = g.min_cost_flow(0, 3, 5);
        assert_eq!(f, 2);
        assert!((c - 12.0).abs() < 1e-12);
    }

    #[test]
    fn rerouting_via_residual_edges() {
        // Greedy-first routing must be undone through residual arcs:
        // s->a->t is cheapest for one unit, but pushing two units optimally
        // requires the crossing path.
        let mut g = MinCostFlow::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 2, 0.0);
        g.add_edge(a, t, 1, 0.0);
        g.add_edge(a, b, 2, 1.0);
        g.add_edge(b, t, 2, 0.0);
        let (f, c) = g.min_cost_flow(s, t, 2);
        assert_eq!(f, 2);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assignment_problem_small() {
        // 2x2 assignment: costs [[1, 7], [3, 6.5]] with unit supplies.
        // min(1 + 6.5, 7 + 3) = 7.5.
        let (s, t) = (4, 5);
        let mut g = MinCostFlow::new(6);
        g.add_edge(s, 0, 1, 0.0);
        g.add_edge(s, 1, 1, 0.0);
        g.add_edge(2, t, 1, 0.0);
        g.add_edge(3, t, 1, 0.0);
        g.add_edge(0, 2, 1, 1.0);
        g.add_edge(0, 3, 1, 7.0);
        g.add_edge(1, 2, 1, 3.0);
        g.add_edge(1, 3, 1, 6.5);
        let (f, c) = g.min_cost_flow(s, t, 2);
        assert_eq!(f, 2);
        assert!((c - 7.5).abs() < 1e-12);
    }

    #[test]
    fn flow_on_reads_back_routed_units() {
        let mut g = MinCostFlow::new(3);
        let cheap = g.add_edge(0, 1, 4, 1.0);
        let _ = g.add_edge(1, 2, 4, 1.0);
        let (f, _) = g.min_cost_flow(0, 2, 3);
        assert_eq!(f, 3);
        assert_eq!(g.flow_on(cheap), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, -1.0);
    }
}
