//! Prepared query objects.
//!
//! A query is itself a multi-instance object. Preparing it once extracts the
//! convex-hull vertices of its instances — by the half-space argument of
//! §5.1.2 the `u ⪯_Q v` relation (and hence the F-SD and P-SD checks) only
//! depends on those — and caches the query MBR used by every MBR-level test.

use osd_geom::{hull_vertices, Mbr, Point};
use osd_uncertain::UncertainObject;
use std::sync::Arc;

/// The immutable prepared state of a query, shared by every clone of a
/// [`PreparedQuery`] — and, through them, by every worker of a parallel
/// batch run.
#[derive(Debug)]
struct QueryState {
    object: UncertainObject,
    hull: Vec<Point>,
    all_points: Vec<Point>,
    fingerprint: u64,
}

/// FNV-1a over the exact bit patterns of every instance coordinate and
/// probability, in instance order. Two queries with equal fingerprints are
/// (modulo a 64-bit hash collision, which the warm cache verifies against)
/// bit-identical, so snapshot-scoped bound tables keyed on it are safe to
/// share across equal repeated queries.
fn fingerprint_of(object: &UncertainObject) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |bits: u64| {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (bits >> shift) & 0xff;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for inst in object.instances() {
        for &c in inst.point.coords() {
            mix(c.to_bits());
        }
        mix(inst.prob.to_bits());
    }
    h
}

/// A query with its derived geometry cached.
///
/// Cloning is cheap (an `Arc` bump): the hull and point caches are computed
/// once in [`PreparedQuery::new`] and shared read-only thereafter.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    shared: Arc<QueryState>,
}

impl PreparedQuery {
    /// Prepares a query object: computes hull vertices and caches points.
    pub fn new(object: UncertainObject) -> Self {
        let all_points: Vec<Point> = object.instances().iter().map(|i| i.point.clone()).collect();
        let hull = hull_vertices(&all_points);
        let fingerprint = fingerprint_of(&object);
        PreparedQuery {
            shared: Arc::new(QueryState {
                object,
                hull,
                all_points,
                fingerprint,
            }),
        }
    }

    /// A 64-bit content fingerprint of the query (exact coordinate and
    /// probability bits, instance order significant). Used by the warm
    /// cache to key per-query bound tables.
    pub fn fingerprint(&self) -> u64 {
        self.shared.fingerprint
    }

    /// The underlying query object.
    pub fn object(&self) -> &UncertainObject {
        &self.shared.object
    }

    /// All query instance points — borrowed from the prepared state
    /// (computed once in [`PreparedQuery::new`], never re-allocated).
    pub fn instance_points(&self) -> &[Point] {
        &self.shared.all_points
    }

    /// Convex-hull vertices of the query instances.
    pub fn hull(&self) -> &[Point] {
        &self.shared.hull
    }

    /// The evaluation points for `⪯_Q` tests: hull vertices when the
    /// geometric optimisation is on, every instance otherwise. Both choices
    /// decide the relation identically (§5.1.2); the hull is just smaller.
    pub fn eval_points(&self, geometric: bool) -> &[Point] {
        if geometric {
            &self.shared.hull
        } else {
            &self.shared.all_points
        }
    }

    /// The query MBR.
    pub fn mbr(&self) -> &Mbr {
        self.shared.object.mbr()
    }

    /// Number of query instances (`|Q|`).
    pub fn len(&self) -> usize {
        self.shared.object.len()
    }

    /// Never true: the underlying object is non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl From<UncertainObject> for PreparedQuery {
    fn from(o: UncertainObject) -> Self {
        PreparedQuery::new(o)
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    #[test]
    fn hull_is_subset_of_points() {
        let q = PreparedQuery::new(UncertainObject::uniform(vec![
            p2(0.0, 0.0),
            p2(4.0, 0.0),
            p2(4.0, 4.0),
            p2(0.0, 4.0),
            p2(2.0, 2.0), // interior instance
        ]));
        assert_eq!(q.instance_points().len(), 5);
        assert_eq!(q.hull().len(), 4);
        assert_eq!(q.eval_points(true).len(), 4);
        assert_eq!(q.eval_points(false).len(), 5);
    }

    #[test]
    fn hull_reduction_preserves_closer_relation() {
        let q = PreparedQuery::new(UncertainObject::uniform(vec![
            p2(0.0, 0.0),
            p2(6.0, 0.0),
            p2(3.0, 5.0),
            p2(3.0, 2.0), // interior
        ]));
        let u = p2(-1.0, 0.0);
        let v = p2(9.0, 9.0);
        let full = osd_geom::closer_to_all(&u, &v, q.eval_points(false));
        let hull = osd_geom::closer_to_all(&u, &v, q.eval_points(true));
        assert_eq!(full, hull);
    }

    #[test]
    fn clones_share_prepared_state() {
        let q = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.0)]));
        let c = q.clone();
        assert!(std::ptr::eq(q.hull().as_ptr(), c.hull().as_ptr()));
        assert!(std::ptr::eq(
            q.instance_points().as_ptr(),
            c.instance_points().as_ptr()
        ));
    }

    #[test]
    fn fingerprint_separates_queries_and_is_stable() {
        let a = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.0)]));
        let b = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.0)]));
        let c = PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 0.0), p2(1.0, 0.5)]));
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal content, equal key");
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn single_instance_query() {
        let q = PreparedQuery::new(UncertainObject::uniform(vec![p2(1.0, 1.0)]));
        assert_eq!(q.len(), 1);
        assert_eq!(q.hull().len(), 1);
    }
}
