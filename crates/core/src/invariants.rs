//! `strict-invariants` audit helpers.
//!
//! Compiled only with the `strict-invariants` cargo feature. The
//! cover-chain audit of Theorem 2 is wired directly into
//! [`crate::ops::dominates`]; this module adds the *relational* contracts
//! that need a whole database to state:
//!
//! * [`transitivity_spot_check`] — Theorem 9: each SD operator is
//!   transitive, so `SD(u, v)` and `SD(v, w)` must imply `SD(u, w)`;
//! * [`irreflexivity_spot_check`] — no object dominates itself (the
//!   `U_Q ≠ V_Q` side condition of Definitions 2/3/5 degenerates to
//!   falsity on identical operands).
//!
//! Both are exhaustive over the database they are given — callers keep the
//! databases small (they are spot-checkers, not production paths).

use crate::config::FilterConfig;
use crate::ctx::CheckCtx;
use crate::db::Database;
use crate::index::SpatialIndex;
use crate::ops::Operator;
use crate::query::PreparedQuery;

/// Checks Theorem 9 (transitivity) exhaustively over all ordered triples
/// of `db`: whenever `u` dominates `v` and `v` dominates `w`, `u` must
/// dominate `w`. Returns the first violating triple as `(u, v, w)`.
pub fn transitivity_spot_check(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> Result<(), (usize, usize, usize)> {
    let n = db.len();
    let mut ctx = CheckCtx::new(db, query, *cfg);
    // Materialise the relation once: n² checks instead of n³.
    let mut dom = vec![vec![false; n]; n];
    for (u, row) in dom.iter_mut().enumerate() {
        for (v, cell) in row.iter_mut().enumerate() {
            if u != v {
                *cell = ctx.dominates(op, u, v);
            }
        }
    }
    for u in 0..n {
        for v in 0..n {
            if u == v || !dom[u][v] {
                continue;
            }
            for w in 0..n {
                if w != u && w != v && dom[v][w] && !dom[u][w] {
                    return Err((u, v, w));
                }
            }
        }
    }
    Ok(())
}

/// Checks that the dominance relation never relates an object to an exact
/// distributional twin of itself (insert a clone to exercise this): for
/// every pair with identical distance distributions, neither direction may
/// dominate under the strict operators. Returns the first violating pair.
pub fn irreflexivity_spot_check(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> Result<(), (usize, usize)> {
    let n = db.len();
    let mut ctx = CheckCtx::new(db, query, *cfg);
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let du = osd_uncertain::DistanceDistribution::between_ref(db.object(u), query.object());
            let dv = osd_uncertain::DistanceDistribution::between_ref(db.object(v), query.object());
            if du.approx_eq(&dv, osd_uncertain::CDF_EPS) && ctx.dominates(op, u, v) {
                return Err((u, v));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    /// A deterministic pseudo-random scatter of multi-instance objects.
    fn scatter(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 20.0
        };
        (0..n)
            .map(|_| {
                UncertainObject::uniform(
                    (0..instances)
                        .map(|_| Point::new(vec![next(), next()]))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn transitivity_holds_on_random_scatters() {
        for seed in 1..6u64 {
            let db = Database::new(scatter(8, 3, seed));
            let query =
                PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![10.0, 10.0])]));
            for op in Operator::ALL {
                assert_eq!(
                    transitivity_spot_check(&db, &query, op, &FilterConfig::all()),
                    Ok(()),
                    "op {op:?}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn twins_never_dominate_each_other() {
        let mut objects = scatter(5, 3, 42);
        // Clone of object 0 at the end: an exact distributional twin.
        objects.push(objects[0].clone());
        let db = Database::new(objects);
        let query = PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![0.0, 0.0])]));
        for op in Operator::ALL {
            assert_eq!(
                irreflexivity_spot_check(&db, &query, op, &FilterConfig::all()),
                Ok(()),
                "op {op:?}"
            );
        }
    }
}
