//! The object database: `n + 1` R-trees as in §6, over a columnar store.
//!
//! A global R-tree organises the objects' MBRs (driving the best-first NNC
//! search of Algorithm 1); each object keeps a small local R-tree over its
//! instances (fan-out 4 in the paper), supplying nearest/furthest-neighbour
//! primitives and the node partitions of the level-by-level techniques.
//!
//! Instance data lives in one flat [`InstanceStore`] snapshot behind an
//! `Arc`: the database is a thin index over it, [`Database::object`] hands
//! out zero-copy [`ObjectRef`] views, and cloning the snapshot for another
//! reader (or another thread) is a reference-count bump, never a copy of
//! the coordinates.

use crate::index::{shard_stats_of, IndexStats, SpatialIndex};
use osd_rtree::{Entry, RTree};
use osd_uncertain::{epoch, Change, EpochLog, InstanceStore, ObjectRef, UncertainObject};
use std::sync::Arc;

// `DbError` lives with the `SpatialIndex` trait (whose default mutators
// return it) and is re-exported here, its historical home.
pub use crate::index::DbError;

/// Default fan-out of the global R-tree.
pub const DEFAULT_GLOBAL_FANOUT: usize = 32;
/// Fan-out of the per-object local R-trees (matches the paper's setting).
pub const DEFAULT_LOCAL_FANOUT: usize = 4;

/// A set of multi-instance objects indexed for NN-candidate search with
/// **one** global R-tree — the flat (unsharded) [`SpatialIndex`] layout.
///
/// Instance data is held in an `Arc<InstanceStore>` snapshot; the database
/// itself only owns the index structures. For the space-partitioned
/// alternative see [`ShardedDatabase`](crate::ShardedDatabase).
///
/// Mutations go through the epoch seam (`uncertain::epoch`): every
/// insert/delete/update builds the next snapshot copy-on-write and bumps
/// the epoch. Ids are logical and never reused — a delete compacts the
/// object's rows out of the columns (later rows shift down by one) and
/// leaves a tombstone in the id space, so `len()` (id-space size) and
/// `live_len()` (row count) diverge after the first delete.
#[derive(Debug, Clone)]
pub struct FlatDatabase {
    store: Arc<InstanceStore>,
    /// Local instance trees, indexed by store row.
    local: Vec<RTree<usize>>,
    /// Global object-MBR tree; payloads are logical ids, live entries only.
    global: RTree<usize>,
    /// Logical id → store row (`None` = tombstone).
    slot: Vec<Option<usize>>,
    /// Store row → logical id.
    ext: Vec<usize>,
    /// Fan-out for local trees rebuilt on update.
    local_fanout: usize,
    /// Published-mutation log; its length is the snapshot epoch.
    epochs: EpochLog,
}

/// The historical name of [`FlatDatabase`] — the default database layout.
pub type Database = FlatDatabase;

impl FlatDatabase {
    /// Indexes `objects` with default fan-outs.
    ///
    /// A thin panicking front over [`Database::try_new`] for trusted,
    /// programmatic data; `#[track_caller]` points the panic at the caller.
    ///
    /// # Panics
    /// Panics if `objects` is empty or dimensionalities are inconsistent.
    /// Use [`Database::try_new`] for untrusted data.
    #[track_caller]
    pub fn new(objects: Vec<UncertainObject>) -> Self {
        match Self::try_new(objects) {
            Ok(db) => db,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`Database::new`] for untrusted input.
    ///
    /// # Errors
    /// Returns a [`DbError`] describing the first violated invariant.
    pub fn try_new(objects: Vec<UncertainObject>) -> Result<Self, DbError> {
        Self::try_with_fanouts(objects, DEFAULT_GLOBAL_FANOUT, DEFAULT_LOCAL_FANOUT)
    }

    /// Indexes `objects` with explicit global/local R-tree fan-outs.
    ///
    /// A thin panicking front over [`Database::try_with_fanouts`];
    /// `#[track_caller]` points the panic at the caller.
    ///
    /// # Panics
    /// Panics if `objects` is empty or dimensionalities are inconsistent.
    /// Use [`Database::try_with_fanouts`] for untrusted data.
    #[track_caller]
    pub fn with_fanouts(
        objects: Vec<UncertainObject>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Self {
        match Self::try_with_fanouts(objects, global_fanout, local_fanout) {
            Ok(db) => db,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`Database::with_fanouts`].
    ///
    /// # Errors
    /// Returns a [`DbError`] describing the first violated invariant.
    pub fn try_with_fanouts(
        objects: Vec<UncertainObject>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Result<Self, DbError> {
        if objects.is_empty() {
            return Err(DbError::Empty);
        }
        let store = InstanceStore::from_objects(&objects).map_err(|e| {
            // The store reports the mismatch; find which input tripped it.
            let object = objects
                .iter()
                .position(|o| o.dim() != objects[0].dim())
                .unwrap_or(0);
            DbError::from_store(e, object)
        })?;
        Self::from_store(Arc::new(store), global_fanout, local_fanout)
    }

    /// Indexes an existing columnar snapshot directly — no instance data is
    /// copied; the database shares the allocation with every other holder
    /// of the `Arc`.
    ///
    /// # Errors
    /// [`DbError::Empty`] if the store holds no objects.
    pub fn from_store(
        store: Arc<InstanceStore>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Result<Self, DbError> {
        if store.is_empty() {
            return Err(DbError::Empty);
        }
        let dim = store.dim();
        let local: Vec<RTree<usize>> = store
            .iter()
            .map(|o| RTree::bulk_load_rows(local_fanout, dim, o.coords()))
            .collect();
        let global_entries: Vec<Entry<usize>> = store
            .iter()
            .enumerate()
            .map(|(id, o)| Entry {
                mbr: o.mbr().clone(),
                item: id,
            })
            .collect();
        let global = RTree::bulk_load(global_fanout, global_entries);
        let n = store.len();
        Ok(FlatDatabase {
            store,
            local,
            global,
            slot: (0..n).map(Some).collect(),
            ext: (0..n).collect(),
            local_fanout,
            epochs: EpochLog::default(),
        })
    }

    /// The store row holding live object `id`.
    ///
    /// # Errors
    /// [`DbError::Dead`] if `id` is tombstoned or out of range.
    fn row_of(&self, id: usize) -> Result<usize, DbError> {
        self.slot
            .get(id)
            .copied()
            .flatten()
            .ok_or(DbError::Dead { object: id })
    }

    /// Aborts a panicking constructor with the invariant violation `e`.
    ///
    /// The panicking constructors stay the ergonomic path for trusted,
    /// programmatic data; the `try_*` variants are the fallible path. This
    /// is the single place this crate's `clippy::panic` policy is waived to
    /// honour that contract (mirroring `UncertainObject`).
    #[cold]
    #[track_caller]
    #[allow(clippy::panic)]
    pub(crate) fn invalid(e: DbError) -> ! {
        panic!("{e}")
    }

    /// Size of the logical id space (live objects + tombstones).
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// Never true: databases are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensionality of the instance space.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The columnar instance snapshot this database indexes. Cloning the
    /// `Arc` shares the allocation with zero copies.
    pub fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }

    /// Zero-copy view of live object `id`.
    ///
    /// # Panics
    /// Panics if `id` is tombstoned or out of range.
    pub fn object(&self, id: usize) -> ObjectRef<'_> {
        match self.row_of(id) {
            Ok(row) => self.store.object(row),
            Err(e) => Self::invalid(e),
        }
    }

    /// Local R-tree over the instances of live object `id` (payload =
    /// instance index).
    ///
    /// # Panics
    /// Panics if `id` is tombstoned or out of range.
    pub fn local_tree(&self, id: usize) -> &RTree<usize> {
        match self.row_of(id) {
            Ok(row) => &self.local[row],
            Err(e) => Self::invalid(e),
        }
    }

    /// The global R-tree over object MBRs (payload = object id).
    pub fn global_tree(&self) -> &RTree<usize> {
        &self.global
    }

    /// Appends a new object, indexing it incrementally (local R-tree built
    /// by bulk load, global R-tree by insertion). Returns the new object id.
    ///
    /// # Panics
    /// Panics if the object's dimensionality differs from the database's.
    /// Use [`Database::try_insert_object`] for untrusted data.
    #[track_caller]
    pub fn insert_object(&mut self, object: UncertainObject) -> usize {
        self.insert_object_with_fanout(object, DEFAULT_LOCAL_FANOUT)
    }

    /// As [`Database::insert_object`] with an explicit local fan-out.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[track_caller]
    pub fn insert_object_with_fanout(
        &mut self,
        object: UncertainObject,
        local_fanout: usize,
    ) -> usize {
        match self.try_insert_object_with_fanout(object, local_fanout) {
            Ok(id) => id,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`Database::insert_object`].
    ///
    /// # Errors
    /// [`DbError::DimensionMismatch`] if the object's dimensionality
    /// differs from the database's.
    pub fn try_insert_object(&mut self, object: UncertainObject) -> Result<usize, DbError> {
        self.try_insert_object_with_fanout(object, DEFAULT_LOCAL_FANOUT)
    }

    /// Fallible variant of [`Database::insert_object_with_fanout`].
    ///
    /// If the snapshot is currently shared (other `Arc` holders exist), the
    /// columns are cloned once before the append — copy-on-write; existing
    /// readers keep the old snapshot unchanged.
    ///
    /// # Errors
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    pub fn try_insert_object_with_fanout(
        &mut self,
        object: UncertainObject,
        local_fanout: usize,
    ) -> Result<usize, DbError> {
        let id = self.slot.len();
        let row =
            epoch::append(&mut self.store, &object).map_err(|e| DbError::from_store(e, id))?;
        debug_assert_eq!(row, self.ext.len(), "appends land at the store tail");
        let view = self.store.object(row);
        self.local.push(RTree::bulk_load_rows(
            local_fanout,
            view.dim(),
            view.coords(),
        ));
        self.global.insert(view.mbr().clone(), id);
        self.slot.push(Some(row));
        self.ext.push(id);
        self.epochs.record(Change::Inserted(id));
        Ok(id)
    }

    /// Deletes live object `id`: its rows are compacted out of the
    /// columnar snapshot (copy-on-write — pinned readers keep the old
    /// snapshot), its global-tree entry is removed with condensation, and
    /// its id is tombstoned, never to be reused.
    ///
    /// # Panics
    /// Panics if `id` is not live or the delete would empty the database.
    /// Use [`Database::try_delete_object`] for untrusted input.
    #[track_caller]
    pub fn delete_object(&mut self, id: usize) {
        if let Err(e) = self.try_delete_object(id) {
            Self::invalid(e)
        }
    }

    /// Fallible variant of [`Database::delete_object`].
    ///
    /// # Errors
    /// [`DbError::Dead`] if `id` is tombstoned or out of range;
    /// [`DbError::Empty`] when the delete would leave no live objects.
    pub fn try_delete_object(&mut self, id: usize) -> Result<(), DbError> {
        let row = self.row_of(id)?;
        if self.store.len() == 1 {
            return Err(DbError::Empty);
        }
        let mbr = self.store.object(row).mbr().clone();
        let removed = self.global.remove_item(&mbr, |&x| x == id);
        debug_assert!(removed.is_some(), "live id {id} must be in the global tree");
        epoch::remove(&mut self.store, row);
        self.local.remove(row);
        self.ext.remove(row);
        self.slot[id] = None;
        for s in self.slot.iter_mut().flatten() {
            if *s > row {
                *s -= 1;
            }
        }
        self.epochs.record(Change::Deleted(id));
        Ok(())
    }

    /// Replaces live object `id` in place (same logical id): the rows are
    /// respliced in the snapshot (copy-on-write), the local tree rebuilt,
    /// and the global-tree entry removed with condensation and
    /// re-inserted under the new MBR.
    ///
    /// # Panics
    /// Panics if `id` is not live or dimensionalities mismatch. Use
    /// [`Database::try_update_object`] for untrusted input.
    #[track_caller]
    pub fn update_object(&mut self, id: usize, object: UncertainObject) {
        if let Err(e) = self.try_update_object(id, object) {
            Self::invalid(e)
        }
    }

    /// Fallible variant of [`Database::update_object`].
    ///
    /// # Errors
    /// [`DbError::Dead`] if `id` is tombstoned or out of range;
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    pub fn try_update_object(&mut self, id: usize, object: UncertainObject) -> Result<(), DbError> {
        let row = self.row_of(id)?;
        let old_mbr = self.store.object(row).mbr().clone();
        epoch::replace(&mut self.store, row, &object).map_err(|e| DbError::from_store(e, id))?;
        let removed = self.global.remove_item(&old_mbr, |&x| x == id);
        debug_assert!(removed.is_some(), "live id {id} must be in the global tree");
        let view = self.store.object(row);
        self.local[row] = RTree::bulk_load_rows(self.local_fanout, view.dim(), view.coords());
        self.global.insert(view.mbr().clone(), id);
        self.epochs.record(Change::Updated(id));
        Ok(())
    }
}

impl SpatialIndex for FlatDatabase {
    fn len(&self) -> usize {
        self.slot.len()
    }

    fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    fn live_len(&self) -> usize {
        self.store.len()
    }

    fn is_live(&self, id: usize) -> bool {
        self.slot.get(id).copied().flatten().is_some()
    }

    fn changes_since(&self, since: u64) -> Option<Vec<Change>> {
        self.epochs.changes_since(since)
    }

    fn try_insert(&mut self, object: UncertainObject) -> Result<usize, DbError> {
        self.try_insert_object(object)
    }

    fn try_delete(&mut self, id: usize) -> Result<(), DbError> {
        self.try_delete_object(id)
    }

    fn try_update(&mut self, id: usize, object: UncertainObject) -> Result<(), DbError> {
        self.try_update_object(id, object)
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }

    fn object(&self, id: usize) -> ObjectRef<'_> {
        FlatDatabase::object(self, id)
    }

    fn local_tree(&self, id: usize) -> &RTree<usize> {
        FlatDatabase::local_tree(self, id)
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn shard_tree(&self, shard: usize) -> &RTree<usize> {
        assert_eq!(shard, 0, "a flat database has exactly one shard");
        &self.global
    }

    fn index_stats(&self) -> IndexStats {
        let stats = shard_stats_of(self, &self.global);
        IndexStats {
            objects: stats.objects,
            instances: stats.instances,
            shards: vec![stats],
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::{Mbr, Point};

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn builds_all_trees() {
        let objs = vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]),
        ];
        let db = Database::new(objs);
        assert_eq!(db.len(), 2);
        assert_eq!(db.dim(), 2);
        assert_eq!(db.local_tree(0).len(), 2);
        assert_eq!(db.local_tree(1).len(), 3);
        assert_eq!(db.global_tree().len(), 2);
    }

    #[test]
    fn local_tree_supports_nn_and_fn() {
        let db = Database::new(vec![obj(&[(0.0, 0.0), (4.0, 0.0), (9.0, 0.0)])]);
        let q = Point::new(vec![3.0, 0.0]);
        let (idx, d) = db.local_tree(0).nearest(&q).unwrap();
        assert_eq!(*idx, 1);
        assert_eq!(d, 1.0);
        let (idx, d) = db.local_tree(0).furthest(&q).unwrap();
        assert_eq!(*idx, 2);
        assert_eq!(d, 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_rejected() {
        let _ = Database::new(vec![]);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        assert_eq!(Database::try_new(vec![]).unwrap_err(), DbError::Empty);
        let mixed = vec![
            obj(&[(0.0, 0.0)]),
            UncertainObject::uniform(vec![Point::new(vec![1.0])]),
        ];
        assert_eq!(
            Database::try_new(mixed).unwrap_err(),
            DbError::DimensionMismatch {
                object: 1,
                expected: 2,
                found: 1
            }
        );
        assert!(Database::try_new(vec![obj(&[(0.0, 0.0)])]).is_ok());
    }

    #[test]
    fn db_error_display_matches_panic_contract() {
        assert!(format!("{}", DbError::Empty).contains("at least one object"));
        let e = DbError::DimensionMismatch {
            object: 7,
            expected: 2,
            found: 3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("dimensionality must match"));
        assert!(msg.contains("object 7"), "{msg}");
    }

    #[test]
    fn object_views_share_the_snapshot() {
        let db = Database::new(vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0), (6.0, 6.0)]),
        ]);
        let snapshot = Arc::clone(db.store());
        // Views index the same allocation as the snapshot clone.
        let base = snapshot.coords().as_ptr();
        assert!(std::ptr::eq(base, db.object(0).coords().as_ptr()));
        assert_eq!(db.object(1).len(), 2);
        assert_eq!(db.object(1).row(1), &[6.0, 6.0]);
    }

    #[test]
    fn from_store_reuses_the_allocation() {
        let store =
            Arc::new(InstanceStore::from_objects(&[obj(&[(0.0, 0.0), (1.0, 1.0)])]).unwrap());
        let db = Database::from_store(Arc::clone(&store), 8, 4).unwrap();
        assert!(Arc::ptr_eq(db.store(), &store));
        assert_eq!(db.local_tree(0).len(), 2);
    }

    #[test]
    fn insert_object_extends_all_indexes() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0), (1.0, 1.0)])]);
        let id = db.insert_object(obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]));
        assert_eq!(id, 1);
        assert_eq!(db.len(), 2);
        assert_eq!(db.local_tree(1).len(), 3);
        assert_eq!(db.global_tree().len(), 2);
        // The global tree can find the new object by proximity.
        let hits = db
            .global_tree()
            .range_intersecting(&Mbr::new(vec![4.0, 4.0], vec![8.0, 8.0]));
        assert!(hits.into_iter().any(|&h| h == 1));
    }

    #[test]
    fn insert_is_copy_on_write_for_shared_snapshots() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0), (1.0, 1.0)])]);
        let before = Arc::clone(db.store());
        db.insert_object(obj(&[(5.0, 5.0)]));
        // The old snapshot is untouched; the database now owns a new one.
        assert_eq!(before.len(), 1);
        assert_eq!(db.store().len(), 2);
        assert!(!Arc::ptr_eq(db.store(), &before));
    }

    #[test]
    #[should_panic(expected = "dimensionality must match")]
    fn insert_wrong_dim_rejected() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0)])]);
        db.insert_object(UncertainObject::uniform(vec![Point::new(vec![
            1.0, 2.0, 3.0,
        ])]));
    }

    #[test]
    fn delete_compacts_rows_and_tombstones_the_id() {
        let mut db = Database::new(vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0)]),
            obj(&[(9.0, 9.0), (9.5, 9.0)]),
        ]);
        db.delete_object(1);
        // Id space keeps the tombstone; the row space compacts.
        assert_eq!(db.len(), 3);
        assert_eq!(db.live_len(), 2);
        assert_eq!(db.tombstone_count(), 1);
        assert!(db.is_live(0) && !db.is_live(1) && db.is_live(2));
        db.store().validate().unwrap();
        // Survivors are addressable under their old ids, bits unchanged.
        assert_eq!(db.object(0).row(1), &[1.0, 1.0]);
        assert_eq!(db.object(2).row(0), &[9.0, 9.0]);
        assert_eq!(db.local_tree(2).len(), 2);
        // The global tree no longer serves the deleted id.
        assert_eq!(db.global_tree().len(), 2);
        let hits = db
            .global_tree()
            .range_intersecting(&Mbr::new(vec![4.0, 4.0], vec![6.0, 6.0]));
        assert!(hits.is_empty());
        // Ids are never reused: the next insert gets a fresh id.
        let id = db.insert_object(obj(&[(3.0, 3.0)]));
        assert_eq!(id, 3);
        assert!(!db.is_live(1));
    }

    #[test]
    fn update_reroutes_the_global_entry() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0), (1.0, 1.0)]), obj(&[(5.0, 5.0)])]);
        db.update_object(0, obj(&[(20.0, 20.0), (21.0, 21.0), (22.0, 20.0)]));
        assert_eq!(db.len(), 2);
        assert_eq!(db.live_len(), 2);
        db.store().validate().unwrap();
        assert_eq!(db.object(0).len(), 3);
        assert_eq!(db.object(0).row(0), &[20.0, 20.0]);
        assert_eq!(db.local_tree(0).len(), 3);
        // Neighbour bits untouched.
        assert_eq!(db.object(1).row(0), &[5.0, 5.0]);
        // The global tree serves the new MBR, not the old one.
        let hits = db
            .global_tree()
            .range_intersecting(&Mbr::new(vec![19.0, 19.0], vec![23.0, 23.0]));
        assert!(hits.into_iter().any(|&h| h == 0));
        let old = db
            .global_tree()
            .range_intersecting(&Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]));
        assert!(old.is_empty());
    }

    #[test]
    fn delete_refuses_dead_ids_and_emptying() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0)]), obj(&[(5.0, 5.0)])]);
        assert_eq!(
            db.try_delete_object(7).unwrap_err(),
            DbError::Dead { object: 7 }
        );
        db.delete_object(0);
        assert_eq!(
            db.try_delete_object(0).unwrap_err(),
            DbError::Dead { object: 0 }
        );
        assert_eq!(
            db.try_update_object(0, obj(&[(1.0, 1.0)])).unwrap_err(),
            DbError::Dead { object: 0 }
        );
        // The last live object cannot be deleted.
        assert_eq!(db.try_delete_object(1).unwrap_err(), DbError::Empty);
        assert_eq!(db.live_len(), 1);
    }

    #[test]
    fn mutations_bump_the_epoch_and_log_changes() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0)]), obj(&[(5.0, 5.0)])]);
        assert_eq!(db.epoch(), 0);
        let id = db.insert_object(obj(&[(9.0, 9.0)]));
        db.update_object(id, obj(&[(8.0, 8.0)]));
        db.delete_object(0);
        assert_eq!(db.epoch(), 3);
        assert_eq!(
            db.changes_since(0),
            Some(vec![
                Change::Inserted(2),
                Change::Updated(2),
                Change::Deleted(0)
            ])
        );
        assert_eq!(db.changes_since(3), Some(vec![]));
        assert_eq!(db.changes_since(9), None);
        // Failed mutations publish nothing.
        assert!(db.try_delete_object(0).is_err());
        assert_eq!(db.epoch(), 3);
    }

    #[test]
    fn delete_is_copy_on_write_for_shared_snapshots() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0)]), obj(&[(5.0, 5.0)])]);
        let pinned = Arc::clone(db.store());
        db.delete_object(0);
        // Pinned readers keep the pre-delete snapshot bit-for-bit.
        assert_eq!(pinned.len(), 2);
        assert_eq!(pinned.object(0).row(0), &[0.0, 0.0]);
        assert_eq!(db.store().len(), 1);
        assert!(!Arc::ptr_eq(db.store(), &pinned));
    }
}
