//! The object database: `n + 1` R-trees as in §6, over a columnar store.
//!
//! A global R-tree organises the objects' MBRs (driving the best-first NNC
//! search of Algorithm 1); each object keeps a small local R-tree over its
//! instances (fan-out 4 in the paper), supplying nearest/furthest-neighbour
//! primitives and the node partitions of the level-by-level techniques.
//!
//! Instance data lives in one flat [`InstanceStore`] snapshot behind an
//! `Arc`: the database is a thin index over it, [`Database::object`] hands
//! out zero-copy [`ObjectRef`] views, and cloning the snapshot for another
//! reader (or another thread) is a reference-count bump, never a copy of
//! the coordinates.

use crate::index::{shard_stats_of, IndexStats, SpatialIndex};
use osd_rtree::{Entry, RTree};
use osd_uncertain::{InstanceStore, ObjectRef, StoreError, UncertainObject};
use std::fmt;
use std::sync::Arc;

/// Default fan-out of the global R-tree.
pub const DEFAULT_GLOBAL_FANOUT: usize = 32;
/// Fan-out of the per-object local R-trees (matches the paper's setting).
pub const DEFAULT_LOCAL_FANOUT: usize = 4;

/// Why a [`Database`] could not be built or extended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// No objects were supplied.
    Empty,
    /// An object disagrees with the database's dimensionality.
    DimensionMismatch {
        /// Id (input position, or would-be id on insert) of the offending
        /// object.
        object: usize,
        /// Dimensionality of the database (set by the first object).
        expected: usize,
        /// Dimensionality of the offending object.
        found: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Empty => write!(f, "a database needs at least one object"),
            DbError::DimensionMismatch {
                object,
                expected,
                found,
            } => write!(
                f,
                "object {object}: dimensionality must match the database: \
                 expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Lifts a columnar-store error, attaching the id of the offending
    /// object (the store reports *what* went wrong, the database knows
    /// *which* object tripped it).
    pub fn from_store(e: StoreError, object: usize) -> Self {
        match e {
            StoreError::Empty => DbError::Empty,
            StoreError::DimensionMismatch { expected, found } => DbError::DimensionMismatch {
                object,
                expected,
                found,
            },
        }
    }
}

/// A set of multi-instance objects indexed for NN-candidate search with
/// **one** global R-tree — the flat (unsharded) [`SpatialIndex`] layout.
///
/// Instance data is held in an `Arc<InstanceStore>` snapshot; the database
/// itself only owns the index structures. For the space-partitioned
/// alternative see [`ShardedDatabase`](crate::ShardedDatabase).
#[derive(Debug)]
pub struct FlatDatabase {
    store: Arc<InstanceStore>,
    local: Vec<RTree<usize>>,
    global: RTree<usize>,
}

/// The historical name of [`FlatDatabase`] — the default database layout.
pub type Database = FlatDatabase;

impl FlatDatabase {
    /// Indexes `objects` with default fan-outs.
    ///
    /// A thin panicking front over [`Database::try_new`] for trusted,
    /// programmatic data; `#[track_caller]` points the panic at the caller.
    ///
    /// # Panics
    /// Panics if `objects` is empty or dimensionalities are inconsistent.
    /// Use [`Database::try_new`] for untrusted data.
    #[track_caller]
    pub fn new(objects: Vec<UncertainObject>) -> Self {
        match Self::try_new(objects) {
            Ok(db) => db,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`Database::new`] for untrusted input.
    ///
    /// # Errors
    /// Returns a [`DbError`] describing the first violated invariant.
    pub fn try_new(objects: Vec<UncertainObject>) -> Result<Self, DbError> {
        Self::try_with_fanouts(objects, DEFAULT_GLOBAL_FANOUT, DEFAULT_LOCAL_FANOUT)
    }

    /// Indexes `objects` with explicit global/local R-tree fan-outs.
    ///
    /// A thin panicking front over [`Database::try_with_fanouts`];
    /// `#[track_caller]` points the panic at the caller.
    ///
    /// # Panics
    /// Panics if `objects` is empty or dimensionalities are inconsistent.
    /// Use [`Database::try_with_fanouts`] for untrusted data.
    #[track_caller]
    pub fn with_fanouts(
        objects: Vec<UncertainObject>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Self {
        match Self::try_with_fanouts(objects, global_fanout, local_fanout) {
            Ok(db) => db,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`Database::with_fanouts`].
    ///
    /// # Errors
    /// Returns a [`DbError`] describing the first violated invariant.
    pub fn try_with_fanouts(
        objects: Vec<UncertainObject>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Result<Self, DbError> {
        if objects.is_empty() {
            return Err(DbError::Empty);
        }
        let store = InstanceStore::from_objects(&objects).map_err(|e| {
            // The store reports the mismatch; find which input tripped it.
            let object = objects
                .iter()
                .position(|o| o.dim() != objects[0].dim())
                .unwrap_or(0);
            DbError::from_store(e, object)
        })?;
        Self::from_store(Arc::new(store), global_fanout, local_fanout)
    }

    /// Indexes an existing columnar snapshot directly — no instance data is
    /// copied; the database shares the allocation with every other holder
    /// of the `Arc`.
    ///
    /// # Errors
    /// [`DbError::Empty`] if the store holds no objects.
    pub fn from_store(
        store: Arc<InstanceStore>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Result<Self, DbError> {
        if store.is_empty() {
            return Err(DbError::Empty);
        }
        let dim = store.dim();
        let local: Vec<RTree<usize>> = store
            .iter()
            .map(|o| RTree::bulk_load_rows(local_fanout, dim, o.coords()))
            .collect();
        let global_entries: Vec<Entry<usize>> = store
            .iter()
            .enumerate()
            .map(|(id, o)| Entry {
                mbr: o.mbr().clone(),
                item: id,
            })
            .collect();
        let global = RTree::bulk_load(global_fanout, global_entries);
        Ok(FlatDatabase {
            store,
            local,
            global,
        })
    }

    /// Aborts a panicking constructor with the invariant violation `e`.
    ///
    /// The panicking constructors stay the ergonomic path for trusted,
    /// programmatic data; the `try_*` variants are the fallible path. This
    /// is the single place this crate's `clippy::panic` policy is waived to
    /// honour that contract (mirroring `UncertainObject`).
    #[cold]
    #[track_caller]
    #[allow(clippy::panic)]
    pub(crate) fn invalid(e: DbError) -> ! {
        panic!("{e}")
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Never true: databases are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensionality of the instance space.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// The columnar instance snapshot this database indexes. Cloning the
    /// `Arc` shares the allocation with zero copies.
    pub fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }

    /// Zero-copy view of object `id`.
    pub fn object(&self, id: usize) -> ObjectRef<'_> {
        self.store.object(id)
    }

    /// Local R-tree over the instances of object `id` (payload = instance
    /// index).
    pub fn local_tree(&self, id: usize) -> &RTree<usize> {
        &self.local[id]
    }

    /// The global R-tree over object MBRs (payload = object id).
    pub fn global_tree(&self) -> &RTree<usize> {
        &self.global
    }

    /// Appends a new object, indexing it incrementally (local R-tree built
    /// by bulk load, global R-tree by insertion). Returns the new object id.
    ///
    /// # Panics
    /// Panics if the object's dimensionality differs from the database's.
    /// Use [`Database::try_insert_object`] for untrusted data.
    #[track_caller]
    pub fn insert_object(&mut self, object: UncertainObject) -> usize {
        self.insert_object_with_fanout(object, DEFAULT_LOCAL_FANOUT)
    }

    /// As [`Database::insert_object`] with an explicit local fan-out.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[track_caller]
    pub fn insert_object_with_fanout(
        &mut self,
        object: UncertainObject,
        local_fanout: usize,
    ) -> usize {
        match self.try_insert_object_with_fanout(object, local_fanout) {
            Ok(id) => id,
            Err(e) => Self::invalid(e),
        }
    }

    /// Fallible variant of [`Database::insert_object`].
    ///
    /// # Errors
    /// [`DbError::DimensionMismatch`] if the object's dimensionality
    /// differs from the database's.
    pub fn try_insert_object(&mut self, object: UncertainObject) -> Result<usize, DbError> {
        self.try_insert_object_with_fanout(object, DEFAULT_LOCAL_FANOUT)
    }

    /// Fallible variant of [`Database::insert_object_with_fanout`].
    ///
    /// If the snapshot is currently shared (other `Arc` holders exist), the
    /// columns are cloned once before the append — copy-on-write; existing
    /// readers keep the old snapshot unchanged.
    ///
    /// # Errors
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    pub fn try_insert_object_with_fanout(
        &mut self,
        object: UncertainObject,
        local_fanout: usize,
    ) -> Result<usize, DbError> {
        let would_be = self.len();
        if object.dim() != self.dim() {
            return Err(DbError::DimensionMismatch {
                object: would_be,
                expected: self.dim(),
                found: object.dim(),
            });
        }
        let store = Arc::make_mut(&mut self.store);
        let id = store
            .push_object(&object)
            .map_err(|e| DbError::from_store(e, would_be))?;
        let view = store.object(id);
        self.local.push(RTree::bulk_load_rows(
            local_fanout,
            view.dim(),
            view.coords(),
        ));
        self.global.insert(view.mbr().clone(), id);
        Ok(id)
    }
}

impl SpatialIndex for FlatDatabase {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }

    fn object(&self, id: usize) -> ObjectRef<'_> {
        self.store.object(id)
    }

    fn local_tree(&self, id: usize) -> &RTree<usize> {
        &self.local[id]
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn shard_tree(&self, shard: usize) -> &RTree<usize> {
        assert_eq!(shard, 0, "a flat database has exactly one shard");
        &self.global
    }

    fn index_stats(&self) -> IndexStats {
        let stats = shard_stats_of(self, &self.global);
        IndexStats {
            objects: stats.objects,
            instances: stats.instances,
            shards: vec![stats],
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::{Mbr, Point};

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn builds_all_trees() {
        let objs = vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]),
        ];
        let db = Database::new(objs);
        assert_eq!(db.len(), 2);
        assert_eq!(db.dim(), 2);
        assert_eq!(db.local_tree(0).len(), 2);
        assert_eq!(db.local_tree(1).len(), 3);
        assert_eq!(db.global_tree().len(), 2);
    }

    #[test]
    fn local_tree_supports_nn_and_fn() {
        let db = Database::new(vec![obj(&[(0.0, 0.0), (4.0, 0.0), (9.0, 0.0)])]);
        let q = Point::new(vec![3.0, 0.0]);
        let (idx, d) = db.local_tree(0).nearest(&q).unwrap();
        assert_eq!(*idx, 1);
        assert_eq!(d, 1.0);
        let (idx, d) = db.local_tree(0).furthest(&q).unwrap();
        assert_eq!(*idx, 2);
        assert_eq!(d, 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_rejected() {
        let _ = Database::new(vec![]);
    }

    #[test]
    fn try_new_reports_structured_errors() {
        assert_eq!(Database::try_new(vec![]).unwrap_err(), DbError::Empty);
        let mixed = vec![
            obj(&[(0.0, 0.0)]),
            UncertainObject::uniform(vec![Point::new(vec![1.0])]),
        ];
        assert_eq!(
            Database::try_new(mixed).unwrap_err(),
            DbError::DimensionMismatch {
                object: 1,
                expected: 2,
                found: 1
            }
        );
        assert!(Database::try_new(vec![obj(&[(0.0, 0.0)])]).is_ok());
    }

    #[test]
    fn db_error_display_matches_panic_contract() {
        assert!(format!("{}", DbError::Empty).contains("at least one object"));
        let e = DbError::DimensionMismatch {
            object: 7,
            expected: 2,
            found: 3,
        };
        let msg = format!("{e}");
        assert!(msg.contains("dimensionality must match"));
        assert!(msg.contains("object 7"), "{msg}");
    }

    #[test]
    fn object_views_share_the_snapshot() {
        let db = Database::new(vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0), (6.0, 6.0)]),
        ]);
        let snapshot = Arc::clone(db.store());
        // Views index the same allocation as the snapshot clone.
        let base = snapshot.coords().as_ptr();
        assert!(std::ptr::eq(base, db.object(0).coords().as_ptr()));
        assert_eq!(db.object(1).len(), 2);
        assert_eq!(db.object(1).row(1), &[6.0, 6.0]);
    }

    #[test]
    fn from_store_reuses_the_allocation() {
        let store =
            Arc::new(InstanceStore::from_objects(&[obj(&[(0.0, 0.0), (1.0, 1.0)])]).unwrap());
        let db = Database::from_store(Arc::clone(&store), 8, 4).unwrap();
        assert!(Arc::ptr_eq(db.store(), &store));
        assert_eq!(db.local_tree(0).len(), 2);
    }

    #[test]
    fn insert_object_extends_all_indexes() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0), (1.0, 1.0)])]);
        let id = db.insert_object(obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]));
        assert_eq!(id, 1);
        assert_eq!(db.len(), 2);
        assert_eq!(db.local_tree(1).len(), 3);
        assert_eq!(db.global_tree().len(), 2);
        // The global tree can find the new object by proximity.
        let hits = db
            .global_tree()
            .range_intersecting(&Mbr::new(vec![4.0, 4.0], vec![8.0, 8.0]));
        assert!(hits.into_iter().any(|&h| h == 1));
    }

    #[test]
    fn insert_is_copy_on_write_for_shared_snapshots() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0), (1.0, 1.0)])]);
        let before = Arc::clone(db.store());
        db.insert_object(obj(&[(5.0, 5.0)]));
        // The old snapshot is untouched; the database now owns a new one.
        assert_eq!(before.len(), 1);
        assert_eq!(db.store().len(), 2);
        assert!(!Arc::ptr_eq(db.store(), &before));
    }

    #[test]
    #[should_panic(expected = "dimensionality must match")]
    fn insert_wrong_dim_rejected() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0)])]);
        db.insert_object(UncertainObject::uniform(vec![Point::new(vec![
            1.0, 2.0, 3.0,
        ])]));
    }
}
