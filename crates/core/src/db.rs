//! The object database: `n + 1` R-trees as in §6.
//!
//! A global R-tree organises the objects' MBRs (driving the best-first NNC
//! search of Algorithm 1); each object keeps a small local R-tree over its
//! instances (fan-out 4 in the paper), supplying nearest/furthest-neighbour
//! primitives and the node partitions of the level-by-level techniques.

use osd_geom::Mbr;
use osd_rtree::{Entry, RTree};
use osd_uncertain::UncertainObject;

/// Default fan-out of the global R-tree.
pub const DEFAULT_GLOBAL_FANOUT: usize = 32;
/// Fan-out of the per-object local R-trees (matches the paper's setting).
pub const DEFAULT_LOCAL_FANOUT: usize = 4;

/// A set of multi-instance objects indexed for NN-candidate search.
pub struct Database {
    objects: Vec<UncertainObject>,
    local: Vec<RTree<usize>>,
    global: RTree<usize>,
}

impl Database {
    /// Indexes `objects` with default fan-outs.
    pub fn new(objects: Vec<UncertainObject>) -> Self {
        Self::with_fanouts(objects, DEFAULT_GLOBAL_FANOUT, DEFAULT_LOCAL_FANOUT)
    }

    /// Indexes `objects` with explicit global/local R-tree fan-outs.
    ///
    /// # Panics
    /// Panics if `objects` is empty or dimensionalities are inconsistent.
    pub fn with_fanouts(
        objects: Vec<UncertainObject>,
        global_fanout: usize,
        local_fanout: usize,
    ) -> Self {
        assert!(!objects.is_empty(), "a database needs at least one object");
        let dim = objects[0].dim();
        assert!(
            objects.iter().all(|o| o.dim() == dim),
            "all objects must share one dimensionality"
        );
        let local: Vec<RTree<usize>> = objects
            .iter()
            .map(|o| {
                let entries: Vec<Entry<usize>> = o
                    .instances()
                    .iter()
                    .enumerate()
                    .map(|(i, inst)| Entry {
                        mbr: Mbr::from_point(&inst.point),
                        item: i,
                    })
                    .collect();
                RTree::bulk_load(local_fanout, entries)
            })
            .collect();
        let global_entries: Vec<Entry<usize>> = objects
            .iter()
            .enumerate()
            .map(|(id, o)| Entry {
                mbr: o.mbr().clone(),
                item: id,
            })
            .collect();
        let global = RTree::bulk_load(global_fanout, global_entries);
        Database {
            objects,
            local,
            global,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Never true: databases are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensionality of the instance space.
    pub fn dim(&self) -> usize {
        self.objects[0].dim()
    }

    /// The objects.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// Object by id.
    pub fn object(&self, id: usize) -> &UncertainObject {
        &self.objects[id]
    }

    /// Local R-tree over the instances of object `id` (payload = instance
    /// index).
    pub fn local_tree(&self, id: usize) -> &RTree<usize> {
        &self.local[id]
    }

    /// The global R-tree over object MBRs (payload = object id).
    pub fn global_tree(&self) -> &RTree<usize> {
        &self.global
    }

    /// Appends a new object, indexing it incrementally (local R-tree built
    /// by bulk load, global R-tree by insertion). Returns the new object id.
    ///
    /// # Panics
    /// Panics if the object's dimensionality differs from the database's.
    pub fn insert_object(&mut self, object: UncertainObject) -> usize {
        self.insert_object_with_fanout(object, DEFAULT_LOCAL_FANOUT)
    }

    /// As [`Database::insert_object`] with an explicit local fan-out.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn insert_object_with_fanout(
        &mut self,
        object: UncertainObject,
        local_fanout: usize,
    ) -> usize {
        assert_eq!(
            object.dim(),
            self.dim(),
            "inserted object dimensionality must match the database"
        );
        let id = self.objects.len();
        let entries: Vec<Entry<usize>> = object
            .instances()
            .iter()
            .enumerate()
            .map(|(i, inst)| Entry {
                mbr: Mbr::from_point(&inst.point),
                item: i,
            })
            .collect();
        self.local.push(RTree::bulk_load(local_fanout, entries));
        self.global.insert(object.mbr().clone(), id);
        self.objects.push(object);
        id
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use osd_geom::Point;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn builds_all_trees() {
        let objs = vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]),
        ];
        let db = Database::new(objs);
        assert_eq!(db.len(), 2);
        assert_eq!(db.dim(), 2);
        assert_eq!(db.local_tree(0).len(), 2);
        assert_eq!(db.local_tree(1).len(), 3);
        assert_eq!(db.global_tree().len(), 2);
    }

    #[test]
    fn local_tree_supports_nn_and_fn() {
        let db = Database::new(vec![obj(&[(0.0, 0.0), (4.0, 0.0), (9.0, 0.0)])]);
        let q = Point::new(vec![3.0, 0.0]);
        let (idx, d) = db.local_tree(0).nearest(&q).unwrap();
        assert_eq!(*idx, 1);
        assert_eq!(d, 1.0);
        let (idx, d) = db.local_tree(0).furthest(&q).unwrap();
        assert_eq!(*idx, 2);
        assert_eq!(d, 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_rejected() {
        let _ = Database::new(vec![]);
    }

    #[test]
    fn insert_object_extends_all_indexes() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0), (1.0, 1.0)])]);
        let id = db.insert_object(obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]));
        assert_eq!(id, 1);
        assert_eq!(db.len(), 2);
        assert_eq!(db.local_tree(1).len(), 3);
        assert_eq!(db.global_tree().len(), 2);
        // The global tree can find the new object by proximity.
        let hits = db
            .global_tree()
            .range_intersecting(&Mbr::new(vec![4.0, 4.0], vec![8.0, 8.0]));
        assert!(hits.into_iter().any(|&h| h == 1));
    }

    #[test]
    #[should_panic(expected = "dimensionality must match")]
    fn insert_wrong_dim_rejected() {
        let mut db = Database::new(vec![obj(&[(0.0, 0.0)])]);
        db.insert_object(UncertainObject::uniform(vec![Point::new(vec![
            1.0, 2.0, 3.0,
        ])]));
    }
}
