//! Snapshot-scoped warm cache: cross-query reuse of snapshot-pure state.
//!
//! `core::cache` memoizes derived object state *per traversal*; everything
//! it holds that depends only on the snapshot — quantised masses, level
//! snapshots (group MBRs / masses / caps), object MBRs and the
//! per-(object, level) bound distributions of a repeated query — is
//! rebuilt from scratch by the next query. [`WarmCache`] promotes exactly
//! that subset to snapshot lifetime:
//!
//! * **Keying.** One cache is valid for one `(Arc::as_ptr(store), epoch)`
//!   pair. The cache pins its `Arc<InstanceStore>`, which both prevents
//!   pointer reuse (ABA) while the cache is alive and forces the epoch
//!   builders' `Arc::make_mut` down the clone path, so a published
//!   successor snapshot can never alias the pinned pointer.
//! * **Population.** Lock-free on read: a getter that finds its
//!   [`OnceLock`] slot empty builds the entry *off-lock* and publishes it
//!   with `set`, tolerating a lost race (the first published value wins;
//!   the loser adopts it). The query path never blocks on another
//!   builder.
//! * **Invalidation.** [`WarmPool::cache_for`] advances the cache to a
//!   newer epoch through [`EpochLog::changes_since`]: entries of objects
//!   untouched by the window are carried over (their derived state is
//!   bit-identical by construction), touched ids are evicted. When the
//!   log window is exhausted (`None`) — or the epoch regressed, i.e. the
//!   pool was fed a snapshot from a different chain — the whole cache is
//!   rebuilt, mirroring `ContinuousNnc`'s stale-window fallback.
//! * **Bit-identity.** Every entry is built by the same deterministic
//!   constructor as the cold path (`build_level_snapshot`,
//!   `build_bounds_*`, `quantize`), so a warm-served value is bit-for-bit
//!   the value the cold path would have built. Warm traffic is counted in
//!   the dedicated `warm_hits` / `warm_misses` counters; the legacy
//!   per-query `cache_hits` / `cache_misses` semantics are untouched.
//!
//! Bound distributions depend on the query as well as the snapshot, so
//! they live in per-query [`QueryBounds`] tables keyed by the query's
//! content fingerprint ([`PreparedQuery::fingerprint`]); the table is
//! resolved once per query into a [`WarmView`] and verified against the
//! full coordinate/probability bit pattern, so a 64-bit fingerprint
//! collision degrades to a private (unshared) table, never to wrong
//! bounds.
//!
//! One [`WarmPool`] must be fed snapshots of a single publish chain
//! (structurally guaranteed when the pool rides a `PublishedIndex`);
//! snapshots of unrelated indexes at coincidentally increasing epochs
//! would otherwise be taken for successors. The fallback rules above make
//! a mis-fed pool slow (full rebuilds), never wrong, as long as the two
//! chains' logs do not splice (`changes_since` of an unrelated log
//! answers `None` for a foreign epoch or describes different ids).

use crate::cache::{
    build_bounds_instance, build_bounds_whole, build_level_snapshot, BoundPair, LevelSnapshot,
};
use crate::index::SpatialIndex;
use crate::query::PreparedQuery;
use osd_geom::Mbr;
use osd_obs::{Counter, QueryMetrics};
use osd_uncertain::{quantize, touched_ids, InstanceStore};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// One lazily-published cache slot.
type Slot<T> = OnceLock<Arc<T>>;

/// Per-level slot array of one object (sized `num_levels` on first touch).
type LevelSlots<T> = Arc<[Slot<T>]>;

/// Publishes `value` into `slot`, tolerating a lost race: the first
/// published value wins and the loser adopts it. Returns the winning
/// value and whether *this* call published it (the publisher owns the
/// resident-bytes accounting).
fn publish<T>(slot: &Slot<T>, value: Arc<T>) -> (Arc<T>, bool) {
    match slot.set(Arc::clone(&value)) {
        Ok(()) => (value, true),
        Err(_) => (slot.get().map(Arc::clone).unwrap_or(value), false),
    }
}

fn empty_slots<T>(n: usize) -> Box<[Slot<T>]> {
    (0..n).map(|_| OnceLock::new()).collect()
}

/// Gets or installs the per-level slot array of one object.
fn level_slots<T>(outer: &OnceLock<LevelSlots<T>>, num_levels: usize) -> LevelSlots<T> {
    if let Some(s) = outer.get() {
        return Arc::clone(s);
    }
    let fresh: LevelSlots<T> = (0..num_levels).map(|_| OnceLock::new()).collect();
    match outer.set(Arc::clone(&fresh)) {
        Ok(()) => fresh,
        Err(_) => outer.get().map(Arc::clone).unwrap_or(fresh),
    }
}

// ---- approximate resident sizes (gauge accounting, not allocator truth) ----

fn quanta_bytes(q: &[u64]) -> u64 {
    24 + 8 * q.len() as u64
}

fn mbr_bytes(m: &Mbr) -> u64 {
    16 * m.lo().len() as u64
}

fn snapshot_bytes(s: &LevelSnapshot) -> u64 {
    let mut b = 48u64;
    for idx in 1..=s.num_levels() {
        let lg = s.level(idx);
        b += 72;
        for m in &lg.mbrs {
            b += mbr_bytes(m) + 16;
        }
    }
    b
}

fn bound_pair_bytes(p: &BoundPair) -> u64 {
    64 + 16 * (p.0.support_size() + p.1.support_size()) as u64
}

fn bound_vec_bytes(v: &[BoundPair]) -> u64 {
    24 + v.iter().map(bound_pair_bytes).sum::<u64>()
}

/// Pool-level cumulative counters, for bench / CLI reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Lookups served from an already published entry.
    pub hits: u64,
    /// Lookups that built (or raced to build) the entry.
    pub misses: u64,
    /// Entries discarded by epoch invalidation (cumulative).
    pub evictions: u64,
    /// Approximate bytes resident in the current cache.
    pub resident_bytes: u64,
    /// Epoch of the current cache.
    pub epoch: u64,
}

/// The per-query bound tables of one warm cache, keyed by query content.
///
/// `whole[id]` / `instance[id]` hold, per clamped level of the object's
/// snapshot, the §5.1.1 optimistic/pessimistic bound distributions —
/// exactly the values `DominanceCache::level_bounds_*` would build cold.
pub struct QueryBounds {
    /// Exact coordinate/probability bit pattern of the owning query, used
    /// to verify fingerprint matches (collision ⇒ private table).
    key: Vec<u64>,
    whole: Box<[OnceLock<LevelSlots<BoundPair>>]>,
    instance: Box<[OnceLock<LevelSlots<Vec<BoundPair>>>]>,
}

impl std::fmt::Debug for QueryBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBounds")
            .field("objects", &self.whole.len())
            .finish_non_exhaustive()
    }
}

impl QueryBounds {
    fn new(n: usize, key: Vec<u64>) -> Self {
        QueryBounds {
            key,
            whole: (0..n).map(|_| OnceLock::new()).collect(),
            instance: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }
}

/// The exact bit pattern of a query's instances — the collision-proof
/// identity its fingerprint abbreviates.
fn query_key(query: &PreparedQuery) -> Vec<u64> {
    let mut key = Vec::new();
    for inst in query.object().instances() {
        for &c in inst.point.coords() {
            key.push(c.to_bits());
        }
        key.push(inst.prob.to_bits());
    }
    key
}

/// A shared warm cache for one `(store pointer, epoch)` snapshot.
///
/// See the module docs for the keying / population / invalidation
/// protocol. All entry arrays are sized by the snapshot's logical id
/// space (`db.len()`, tombstones included), matching `DominanceCache`.
pub struct WarmCache {
    /// Pinned store snapshot: identity key half, ABA guard, and CoW
    /// forcing (a pinned refcount makes `Arc::make_mut` clone).
    store: Arc<InstanceStore>,
    epoch: u64,
    quanta: Box<[Slot<Vec<u64>>]>,
    levels: Box<[Slot<LevelSnapshot>]>,
    mbrs: Box<[Slot<Mbr>]>,
    bounds: Mutex<BTreeMap<u64, Arc<QueryBounds>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Cumulative over the pool's lifetime (carried across advances).
    evictions: u64,
    resident_bytes: AtomicU64,
}

impl std::fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmCache")
            .field("epoch", &self.epoch)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl WarmCache {
    /// A blank cache keyed to `db`'s current snapshot.
    fn blank(db: &dyn SpatialIndex) -> WarmCache {
        let n = db.len();
        WarmCache {
            store: Arc::clone(db.store()),
            epoch: db.epoch(),
            quanta: empty_slots(n),
            levels: empty_slots(n),
            mbrs: empty_slots(n),
            bounds: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: 0,
            resident_bytes: AtomicU64::new(0),
        }
    }

    /// Whether this cache is keyed to exactly `db`'s current snapshot.
    pub fn matches(&self, db: &dyn SpatialIndex) -> bool {
        Arc::ptr_eq(&self.store, db.store()) && self.epoch == db.epoch()
    }

    /// The epoch this cache is keyed to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative warm hits served by this cache (carried on advance).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative warm misses (entries built; carried on advance).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative entries evicted by epoch invalidation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes resident in this cache.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    fn stats(&self) -> WarmStats {
        WarmStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions,
            resident_bytes: self.resident_bytes(),
            epoch: self.epoch,
        }
    }

    fn add_bytes(&self, b: u64) {
        self.resident_bytes.fetch_add(b, Ordering::Relaxed);
    }

    fn quanta_entry(&self, db: &dyn SpatialIndex, id: usize) -> (Arc<Vec<u64>>, bool) {
        if let Some(q) = self.quanta[id].get() {
            return (Arc::clone(q), true);
        }
        let built = Arc::new(quantize(db.object(id).probs()));
        let (v, published) = publish(&self.quanta[id], built);
        if published {
            self.add_bytes(quanta_bytes(&v));
        }
        (v, false)
    }

    fn snapshot_entry(
        &self,
        db: &dyn SpatialIndex,
        id: usize,
        quanta: &[u64],
    ) -> (Arc<LevelSnapshot>, bool) {
        if let Some(s) = self.levels[id].get() {
            return (Arc::clone(s), true);
        }
        let built = Arc::new(build_level_snapshot(db, id, quanta));
        let (v, published) = publish(&self.levels[id], built);
        if published {
            self.add_bytes(snapshot_bytes(&v));
        }
        (v, false)
    }

    fn mbr_entry(&self, db: &dyn SpatialIndex, id: usize) -> (Arc<Mbr>, bool) {
        if let Some(m) = self.mbrs[id].get() {
            return (Arc::clone(m), true);
        }
        let built = Arc::new(db.object(id).mbr().clone());
        let (v, published) = publish(&self.mbrs[id], built);
        if published {
            self.add_bytes(mbr_bytes(&v));
        }
        (v, false)
    }

    /// The bound table of `query`, shared across equal repeated queries.
    /// A fingerprint collision (different content, same 64-bit key)
    /// returns a private unregistered table — correctness never rests on
    /// the hash.
    pub fn bounds_for(&self, query: &PreparedQuery) -> Arc<QueryBounds> {
        let key = query_key(query);
        let n = self.quanta.len();
        let mut map = self.bounds.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(t) = map.get(&query.fingerprint()) {
            if t.key == key {
                return Arc::clone(t);
            }
            return Arc::new(QueryBounds::new(n, key));
        }
        let t = Arc::new(QueryBounds::new(n, key));
        map.insert(query.fingerprint(), Arc::clone(&t));
        t
    }

    /// Entries currently published (used to count a full-rebuild
    /// eviction).
    fn resident_entries(&self) -> u64 {
        let mut c = 0u64;
        c += self.quanta.iter().filter(|s| s.get().is_some()).count() as u64;
        c += self.levels.iter().filter(|s| s.get().is_some()).count() as u64;
        c += self.mbrs.iter().filter(|s| s.get().is_some()).count() as u64;
        let map = self.bounds.lock().unwrap_or_else(PoisonError::into_inner);
        for qb in map.values() {
            for outer in qb.whole.iter() {
                if let Some(slots) = outer.get() {
                    c += slots.iter().filter(|s| s.get().is_some()).count() as u64;
                }
            }
            for outer in qb.instance.iter() {
                if let Some(slots) = outer.get() {
                    c += slots.iter().filter(|s| s.get().is_some()).count() as u64;
                }
            }
        }
        c
    }

    /// Advances `old` to `db`'s snapshot: incremental carry + targeted
    /// eviction when the epoch log covers the window, full rebuild
    /// otherwise.
    fn advance(old: &WarmCache, db: &dyn SpatialIndex) -> WarmCache {
        let window = if db.epoch() > old.epoch {
            db.changes_since(old.epoch)
        } else {
            // Epoch regressed (or a same-epoch snapshot with a different
            // store pointer): not a successor of ours — start over.
            None
        };
        let mut next = WarmCache::blank(db);
        next.hits = AtomicU64::new(old.hits());
        next.misses = AtomicU64::new(old.misses());
        let Some(changes) = window else {
            next.evictions = old.evictions + old.resident_entries();
            return next;
        };
        let touched = touched_ids(&changes);
        let is_touched = |id: usize| touched.binary_search(&id).is_ok();
        let n = next.quanta.len();
        let mut evicted = 0u64;
        let mut bytes = 0u64;
        // Carry the snapshot-pure per-object entries of untouched ids.
        for id in 0..old.quanta.len() {
            let keep = id < n && !is_touched(id);
            if let Some(v) = old.quanta[id].get() {
                if keep && next.quanta[id].set(Arc::clone(v)).is_ok() {
                    bytes += quanta_bytes(v);
                } else {
                    evicted += 1;
                }
            }
            if let Some(v) = old.levels[id].get() {
                if keep && next.levels[id].set(Arc::clone(v)).is_ok() {
                    bytes += snapshot_bytes(v);
                } else {
                    evicted += 1;
                }
            }
            if let Some(v) = old.mbrs[id].get() {
                if keep && next.mbrs[id].set(Arc::clone(v)).is_ok() {
                    bytes += mbr_bytes(v);
                } else {
                    evicted += 1;
                }
            }
        }
        // Carry per-query bound tables the same way: untouched objects
        // keep their whole per-level slot array (values are bit-identical
        // across the window), touched objects are dropped.
        let old_map = old.bounds.lock().unwrap_or_else(PoisonError::into_inner);
        let mut new_map = BTreeMap::new();
        for (fp, qb) in old_map.iter() {
            let carried = QueryBounds::new(n, qb.key.clone());
            let mut any = false;
            for id in 0..qb.whole.len() {
                let keep = id < n && !is_touched(id);
                if let Some(slots) = qb.whole[id].get() {
                    let filled = slots.iter().filter(|s| s.get().is_some()).count() as u64;
                    if keep && carried.whole[id].set(Arc::clone(slots)).is_ok() {
                        for s in slots.iter().flat_map(|s| s.get()) {
                            bytes += bound_pair_bytes(s);
                        }
                        any = any || filled > 0;
                    } else {
                        evicted += filled;
                    }
                }
                if let Some(slots) = qb.instance[id].get() {
                    let filled = slots.iter().filter(|s| s.get().is_some()).count() as u64;
                    if keep && carried.instance[id].set(Arc::clone(slots)).is_ok() {
                        for s in slots.iter().flat_map(|s| s.get()) {
                            bytes += bound_vec_bytes(s);
                        }
                        any = any || filled > 0;
                    } else {
                        evicted += filled;
                    }
                }
            }
            if any {
                new_map.insert(*fp, Arc::new(carried));
            }
        }
        drop(old_map);
        next.evictions = old.evictions + evicted;
        next.resident_bytes = AtomicU64::new(bytes);
        next.bounds = Mutex::new(new_map);
        next
    }
}

/// A per-query window into a [`WarmCache`]: the cache plus the query's
/// resolved bound table. Cloning is two `Arc` bumps, so a batch worker
/// can thread one view through an entire scatter-gather run.
#[derive(Debug, Clone)]
pub struct WarmView {
    cache: Arc<WarmCache>,
    bounds: Arc<QueryBounds>,
}

impl WarmView {
    /// Resolves `query`'s bound table in `cache` (once per query).
    pub fn new(cache: Arc<WarmCache>, query: &PreparedQuery) -> WarmView {
        let bounds = cache.bounds_for(query);
        WarmView { cache, bounds }
    }

    /// The underlying shared cache.
    pub fn cache(&self) -> &Arc<WarmCache> {
        &self.cache
    }

    fn tally(&self, hit: bool, metrics: &mut QueryMetrics) {
        if hit {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            metrics.incr(Counter::WarmHits);
        } else {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            metrics.incr(Counter::WarmMisses);
        }
    }

    /// Records the cache's eviction/resident gauges into `metrics`.
    pub fn record_gauges(&self, metrics: &mut QueryMetrics) {
        metrics.warm_cache(self.cache.evictions(), self.cache.resident_bytes());
    }

    /// Warm quantised masses of object `id`.
    pub fn quanta(
        &self,
        db: &dyn SpatialIndex,
        id: usize,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<u64>> {
        let (v, hit) = self.cache.quanta_entry(db, id);
        self.tally(hit, metrics);
        v
    }

    /// Warm level snapshot of object `id` (`quanta` is the caller's
    /// already-resolved quantisation — the nested legacy lookup the cold
    /// path performs anyway).
    pub fn level_snapshot(
        &self,
        db: &dyn SpatialIndex,
        id: usize,
        quanta: &[u64],
        metrics: &mut QueryMetrics,
    ) -> Arc<LevelSnapshot> {
        let (v, hit) = self.cache.snapshot_entry(db, id, quanta);
        self.tally(hit, metrics);
        v
    }

    /// Warm MBR of object `id` (the emission-time candidate MBR).
    pub fn object_mbr(
        &self,
        db: &dyn SpatialIndex,
        id: usize,
        metrics: &mut QueryMetrics,
    ) -> Arc<Mbr> {
        let (v, hit) = self.cache.mbr_entry(db, id);
        self.tally(hit, metrics);
        v
    }

    /// Warm whole-`U_Q` bound pair of object `id` at `level`.
    pub fn bounds_whole(
        &self,
        query: &PreparedQuery,
        id: usize,
        snap: &LevelSnapshot,
        level: usize,
        metrics: &mut QueryMetrics,
    ) -> Arc<BoundPair> {
        let slots = level_slots(&self.bounds.whole[id], snap.num_levels());
        let idx = snap.clamped(level);
        if let Some(b) = slots[idx].get() {
            let v = Arc::clone(b);
            self.tally(true, metrics);
            return v;
        }
        let built = Arc::new(build_bounds_whole(query, snap.level(level)));
        let (v, published) = publish(&slots[idx], built);
        if published {
            self.cache.add_bytes(bound_pair_bytes(&v));
        }
        self.tally(false, metrics);
        v
    }

    /// Warm per-`U_q` bound pairs of object `id` at `level`.
    pub fn bounds_instance(
        &self,
        query: &PreparedQuery,
        id: usize,
        snap: &LevelSnapshot,
        level: usize,
        metrics: &mut QueryMetrics,
    ) -> Arc<Vec<BoundPair>> {
        let slots = level_slots(&self.bounds.instance[id], snap.num_levels());
        let idx = snap.clamped(level);
        if let Some(b) = slots[idx].get() {
            let v = Arc::clone(b);
            self.tally(true, metrics);
            return v;
        }
        let built = Arc::new(build_bounds_instance(query, snap.level(level)));
        let (v, published) = publish(&slots[idx], built);
        if published {
            self.cache.add_bytes(bound_vec_bytes(&v));
        }
        self.tally(false, metrics);
        v
    }
}

/// The shared home of a warm cache across queries and epochs.
///
/// Holds at most one [`WarmCache`] — the one keyed to the newest snapshot
/// it has been shown. [`WarmPool::cache_for`] swaps in an advanced cache
/// when the snapshot moves; queries still running against the old
/// snapshot keep their pinned `Arc<WarmCache>` and stay consistent.
#[derive(Debug, Default)]
pub struct WarmPool {
    current: Mutex<Option<Arc<WarmCache>>>,
}

impl WarmPool {
    /// An empty pool.
    pub const fn new() -> Self {
        WarmPool {
            current: Mutex::new(None),
        }
    }

    /// The cache keyed to `db`'s current snapshot, advancing (or
    /// rebuilding — see the module docs' fallback rules) as needed.
    pub fn cache_for(&self, db: &dyn SpatialIndex) -> Arc<WarmCache> {
        let mut cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = cur.as_ref() {
            if c.matches(db) {
                return Arc::clone(c);
            }
        }
        let next = Arc::new(match cur.take() {
            Some(old) => WarmCache::advance(&old, db),
            None => WarmCache::blank(db),
        });
        *cur = Some(Arc::clone(&next));
        next
    }

    /// A per-query view: the current cache plus `query`'s bound table.
    pub fn view_for(&self, db: &dyn SpatialIndex, query: &PreparedQuery) -> WarmView {
        WarmView::new(self.cache_for(db), query)
    }

    /// Cumulative pool counters (zero if no query has warmed the pool).
    pub fn stats(&self) -> WarmStats {
        let cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        cur.as_ref().map(|c| c.stats()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::publish::PublishedIndex;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn p2(x: f64, y: f64) -> Point {
        Point::new(vec![x, y])
    }

    fn obj(x: f64) -> UncertainObject {
        UncertainObject::uniform(vec![p2(x, 0.0), p2(x + 1.0, 0.5), p2(x, 1.0)])
    }

    fn query() -> PreparedQuery {
        PreparedQuery::new(UncertainObject::uniform(vec![p2(0.0, 0.0), p2(0.5, 0.5)]))
    }

    #[test]
    fn same_snapshot_reuses_the_cache_and_its_entries() {
        let db = Database::new(vec![obj(1.0), obj(5.0)]);
        let pool = WarmPool::new();
        let q = query();
        let mut metrics = QueryMetrics::new();
        let v1 = pool.view_for(&db, &q);
        let a = v1.quanta(&db, 0, &mut metrics);
        let v2 = pool.view_for(&db, &q);
        assert!(Arc::ptr_eq(v1.cache(), v2.cache()), "same (ptr, epoch) key");
        let b = v2.quanta(&db, 0, &mut metrics);
        assert!(Arc::ptr_eq(&a, &b), "entry survives across views");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn bounds_tables_are_shared_by_equal_queries_only() {
        let db = Database::new(vec![obj(1.0)]);
        let pool = WarmPool::new();
        let q1 = query();
        let q2 = query(); // equal content, distinct allocation
        let q3 = PreparedQuery::new(UncertainObject::uniform(vec![p2(9.0, 9.0)]));
        let v1 = pool.view_for(&db, &q1);
        let v2 = pool.view_for(&db, &q2);
        let v3 = pool.view_for(&db, &q3);
        assert!(Arc::ptr_eq(&v1.bounds, &v2.bounds));
        assert!(!Arc::ptr_eq(&v1.bounds, &v3.bounds));
    }

    #[test]
    fn update_evicts_only_the_touched_object() {
        let idx = PublishedIndex::new(Database::new(vec![obj(1.0), obj(5.0)]));
        let pool = WarmPool::new();
        let q = query();
        let mut metrics = QueryMetrics::new();
        let snap0 = idx.pin();
        let v0 = pool.view_for(snap0.as_ref(), &q);
        let q0 = v0.quanta(snap0.as_ref(), 0, &mut metrics);
        let q1 = v0.quanta(snap0.as_ref(), 1, &mut metrics);
        idx.update(1, obj(7.0)).expect("update");
        let snap1 = idx.pin();
        let v1 = pool.view_for(snap1.as_ref(), &q);
        assert!(
            !Arc::ptr_eq(v0.cache(), v1.cache()),
            "stale (ptr, epoch) key must not be served"
        );
        let q0b = v1.quanta(snap1.as_ref(), 0, &mut metrics);
        assert!(Arc::ptr_eq(&q0, &q0b), "untouched object carried over");
        let q1b = v1.quanta(snap1.as_ref(), 1, &mut metrics);
        assert!(!Arc::ptr_eq(&q1, &q1b), "touched object rebuilt");
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn foreign_snapshot_forces_a_full_rebuild() {
        let a = Database::new(vec![obj(1.0)]);
        let b = Database::new(vec![obj(2.0)]); // unrelated chain, same epoch 0
        let pool = WarmPool::new();
        let q = query();
        let mut metrics = QueryMetrics::new();
        let va = pool.view_for(&a, &q);
        let _ = va.quanta(&a, 0, &mut metrics);
        let vb = pool.view_for(&b, &q);
        assert!(!Arc::ptr_eq(va.cache(), vb.cache()));
        let fresh = vb.quanta(&b, 0, &mut metrics);
        assert_eq!(fresh.len(), 3);
        assert_eq!(pool.stats().evictions, 1, "old entry counted as evicted");
    }
}
