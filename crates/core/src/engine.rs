//! The query engine: single-query and parallel batch NNC execution.
//!
//! One query's mutable state — the [`DominanceCache`] and the [`Stats`]
//! counters inside its [`CheckCtx`](crate::CheckCtx) — is private to that
//! query, while the [`Database`] and the prepared queries are shared
//! read-only. Inter-query parallelism therefore needs no locks at all:
//! [`QueryEngine::run_batch`] fans queries out over `std::thread::scope`
//! workers (std-only, per the offline dependency policy), each worker
//! builds a fresh per-query context for every query it claims, and the
//! per-query [`Stats`] merge exactly ([`Stats::merge`]) afterwards.
//!
//! Because every query runs the identical sequential Algorithm 1 against
//! an identical environment, the batch result is byte-for-byte the same
//! regardless of thread count — only wall-clock throughput changes.
//!
//! ## Warm execution and batch locality
//!
//! [`QueryEngine::with_warm`] attaches a shared [`WarmPool`]: each query
//! then resolves its snapshot-pure cache misses through the pool's
//! epoch-keyed [`WarmCache`](crate::WarmCache) instead of rebuilding them
//! privately — bit-identical results, fewer rebuilds (see `core::warm`).
//! [`QueryEngine::run_batch`] additionally dispatches queries in Morton
//! (Z-order) order of their MBR centers so that consecutively claimed
//! queries touch overlapping index regions — and therefore overlapping
//! warm entries — back to back. The schedule is deterministic and results
//! are always returned in **input order**; [`QueryEngine::with_reorder`]
//! switches the reordering off.

use crate::config::{FilterConfig, Stats};
use crate::db::Database;
use crate::index::SpatialIndex;
use crate::nnc::{
    nn_candidates, nn_candidates_scatter, nn_candidates_scatter_warm, nn_candidates_warm, NncResult,
};
use crate::ops::Operator;
use crate::query::PreparedQuery;
use crate::warm::WarmPool;
use osd_obs::{FlightRecorder, QueryMetrics};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A configured NNC executor over one database: the operator and filter
/// configuration are fixed at construction, queries are supplied per call.
#[derive(Clone, Copy)]
pub struct QueryEngine<'a> {
    db: &'a dyn SpatialIndex,
    op: Operator,
    cfg: FilterConfig,
    /// Shared snapshot-scoped cache; `None` (the default) runs every query
    /// fully cold, exactly as before the warm path existed.
    warm: Option<&'a WarmPool>,
    /// Morton-reorder batches for locality (results stay in input order).
    reorder: bool,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine with the default (full) filter configuration.
    pub fn new(db: &'a dyn SpatialIndex, op: Operator) -> Self {
        Self::with_config(db, op, FilterConfig::all())
    }

    /// Creates an engine with an explicit filter configuration.
    pub fn with_config(db: &'a dyn SpatialIndex, op: Operator, cfg: FilterConfig) -> Self {
        QueryEngine {
            db,
            op,
            cfg,
            warm: None,
            reorder: true,
        }
    }

    /// Attaches a shared [`WarmPool`]: queries resolve snapshot-pure cache
    /// misses through it (bit-identical results — see `core::warm`).
    #[must_use]
    pub fn with_warm(mut self, pool: &'a WarmPool) -> Self {
        self.warm = Some(pool);
        self
    }

    /// Enables or disables Morton reordering of batch dispatch (on by
    /// default). Results are returned in input order either way.
    #[must_use]
    pub fn with_reorder(mut self, reorder: bool) -> Self {
        self.reorder = reorder;
        self
    }

    /// The database this engine serves.
    pub fn db(&self) -> &'a dyn SpatialIndex {
        self.db
    }

    /// The dominance operator in effect.
    pub fn op(&self) -> Operator {
        self.op
    }

    /// The filter configuration in effect.
    pub fn cfg(&self) -> FilterConfig {
        self.cfg
    }

    /// Runs one NNC query (Algorithm 1) — identical to
    /// [`nn_candidates`](crate::nn_candidates) under this engine's
    /// configuration (warm execution changes which cache served a value,
    /// never the value).
    pub fn run(&self, query: &PreparedQuery) -> NncResult {
        match self.warm {
            Some(pool) => nn_candidates_warm(self.db, query, self.op, &self.cfg, pool),
            None => nn_candidates(self.db, query, self.op, &self.cfg),
        }
    }

    /// Runs one NNC query scatter-gather over a sharded index: each shard
    /// is searched independently across up to `threads` scoped workers and
    /// the union is re-filtered sequentially — same candidates as
    /// [`QueryEngine::run`], different traversal counters (see
    /// [`nn_candidates_scatter`](crate::nn_candidates_scatter)). On a
    /// one-shard index this is exactly [`QueryEngine::run`].
    pub fn run_scatter(&self, query: &PreparedQuery, threads: usize) -> NncResult {
        match self.warm {
            Some(pool) => {
                nn_candidates_scatter_warm(self.db, query, self.op, &self.cfg, threads, pool)
            }
            None => nn_candidates_scatter(self.db, query, self.op, &self.cfg, threads),
        }
    }

    /// Runs a batch of queries across up to `threads` worker threads and
    /// returns the results in input order.
    ///
    /// Work is claimed dynamically (an atomic cursor over the query list),
    /// so stragglers don't idle the other workers. Each claimed query gets
    /// a fresh per-query cache inside its worker; no mutable state crosses
    /// threads, which is why the candidate sets — and, after
    /// [`batch_stats`] merging, the counters — are identical to running
    /// the same queries sequentially.
    ///
    /// `threads` is clamped to `[1, queries.len()]`; with one thread the
    /// batch runs inline on the caller's thread. A panicking query is
    /// propagated to the caller after the scope unwinds.
    ///
    /// When tracing is on, each result's trace is stamped with its input
    /// index as `seq` — the stable identity the flight recorder keys its
    /// order-independent retention on, so per-worker recorders merge to
    /// the same retained set regardless of how the workers claimed work.
    ///
    /// Unless [`QueryEngine::with_reorder`]`(false)` was requested, work is
    /// *claimed* in Morton order of the query MBR centers (nearby queries
    /// run back to back, maximising warm-cache and index locality), but
    /// results are always **returned in input order** — the schedule is an
    /// internal detail and is fully deterministic for a given batch.
    pub fn run_batch(&self, queries: &[PreparedQuery], threads: usize) -> Vec<NncResult> {
        let n = queries.len();
        let workers = threads.max(1).min(n.max(1));
        let order: Vec<usize> = if self.reorder {
            morton_order(queries)
        } else {
            (0..n).collect()
        };
        let mut indexed: Vec<(usize, NncResult)> = if workers <= 1 {
            order.iter().map(|&i| (i, self.run(&queries[i]))).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let order = &order;
            let mut indexed: Vec<(usize, NncResult)> = Vec::with_capacity(n);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut claimed = Vec::new();
                            loop {
                                let j = cursor.fetch_add(1, Ordering::Relaxed);
                                if j >= n {
                                    break;
                                }
                                let i = order[j];
                                claimed.push((i, self.run(&queries[i])));
                            }
                            claimed
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join() {
                        Ok(part) => indexed.extend(part),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            indexed
        };
        indexed.sort_by_key(|&(i, _)| i);
        let mut results: Vec<NncResult> = indexed.into_iter().map(|(_, r)| r).collect();
        for (i, r) in results.iter_mut().enumerate() {
            if let Some(t) = r.trace.as_mut() {
                t.seq = i as u64;
            }
        }
        results
    }
}

/// The Morton (Z-order) schedule of a batch: input indices sorted by the
/// bit-interleaved quantized coordinates of each query MBR's center, ties
/// broken by input index. Queries whose centers are close in space end up
/// close in the schedule, so consecutively claimed queries revisit the
/// same index regions — and the same warm-cache entries — back to back.
///
/// Purely a scheduling permutation: deterministic for a given batch, and
/// callers re-emit results in input order regardless.
fn morton_order(queries: &[PreparedQuery]) -> Vec<usize> {
    let n = queries.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let dim = queries[0].mbr().dim();
    // Bounding box of the query centers, over the dimensions all share.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for q in queries {
        let c = q.mbr().center();
        for (d, slot) in lo.iter_mut().enumerate() {
            let x = c.coords().get(d).copied().unwrap_or(0.0);
            *slot = slot.min(x);
            hi[d] = hi[d].max(x);
        }
    }
    let bits = (64 / dim.max(1)).min(16) as u32;
    let scale = ((1u64 << bits) - 1) as f64;
    let mut keyed: Vec<(u64, usize)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let c = q.mbr().center();
            let cells: Vec<u64> = (0..dim)
                .map(|d| {
                    let span = hi[d] - lo[d];
                    let x = c.coords().get(d).copied().unwrap_or(lo[d]);
                    let t = if span > 0.0 && span.is_finite() {
                        ((x - lo[d]) / span).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    (t * scale) as u64
                })
                .collect();
            // MSB-first interleave: bit b of every dimension, high to low.
            let mut key = 0u64;
            for b in (0..bits).rev() {
                for cell in &cells {
                    key = (key << 1) | ((cell >> b) & 1);
                }
            }
            (key, i)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Merges the per-query counters of a batch into one [`Stats`] total via
/// [`Stats::merge`]. Exact: equals the counters of the same queries run
/// sequentially against one accumulator.
pub fn batch_stats(results: &[NncResult]) -> Stats {
    let mut total = Stats::default();
    for r in results {
        total.merge(&r.stats);
    }
    total
}

/// Merges the per-query instrumentation registries of a batch into one
/// [`QueryMetrics`] total via [`QueryMetrics::merge`]. The merge is exact
/// and order-independent for every deterministic quantity (counters, phase
/// sample counts, gauges, per-operator tallies), so 1-thread and N-thread
/// batches fold to identical totals; only wall-clock nanoseconds vary run
/// to run. All-zero unless the `obs` feature is on.
pub fn batch_metrics(results: &[NncResult]) -> QueryMetrics {
    let mut total = QueryMetrics::new();
    for r in results {
        total.merge(&r.metrics);
    }
    total
}

/// Records every trace a batch produced into `recorder`, in input order.
/// A no-op on untraced results (the common case); with tracing on, each
/// trace carries the `seq` stamped by [`QueryEngine::run_batch`], so
/// feeding disjoint slices into per-worker recorders and merging them
/// retains exactly the traces one sequential recorder would.
pub fn record_batch(recorder: &mut FlightRecorder, results: &[NncResult]) {
    for r in results {
        if let Some(t) = &r.trace {
            recorder.record(t.clone());
        }
    }
}

/// Compile-time `Send + Sync` checks for everything the batch executor
/// shares or moves across threads (the `static_assertions` idiom, without
/// the dependency). A non-thread-safe field sneaking into any of these
/// types fails compilation here rather than at a distant spawn site.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Database>();
const _: () = assert_send_sync::<crate::ShardedDatabase>();
const _: () = assert_send_sync::<crate::ShardSlice<'static>>();
const _: () = assert_send_sync::<PreparedQuery>();
const _: () = assert_send_sync::<crate::DominanceCache>();
const _: () = assert_send_sync::<NncResult>();
const _: () = assert_send_sync::<QueryEngine<'static>>();
const _: () = assert_send_sync::<crate::CheckCtx<'static>>();
const _: () = assert_send_sync::<osd_rtree::RTree<usize>>();
const _: () = assert_send_sync::<osd_uncertain::UncertainObject>();
const _: () = assert_send_sync::<crate::WarmPool>();
const _: () = assert_send_sync::<crate::WarmCache>();
const _: () = assert_send_sync::<crate::WarmView>();

#[cfg(test)]
mod tests {
    use super::*;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    /// A deterministic pseudo-random scatter of multi-instance objects
    /// (xorshift — no RNG dependency in core's dev-deps).
    fn scatter(n: usize, instances: usize, seed: u64) -> Vec<UncertainObject> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        };
        (0..n)
            .map(|_| {
                UncertainObject::uniform(
                    (0..instances)
                        .map(|_| Point::new(vec![next(), next()]))
                        .collect(),
                )
            })
            .collect()
    }

    fn queries(k: usize, seed: u64) -> Vec<PreparedQuery> {
        scatter(k, 2, seed)
            .into_iter()
            .map(PreparedQuery::new)
            .collect()
    }

    /// All worker threads of a batch run see the *same* columnar snapshot:
    /// the engine borrows the database, which holds one `Arc<InstanceStore>`
    /// — no per-worker copies of the instance data exist.
    #[test]
    fn workers_share_one_store_snapshot() {
        let db = Database::new(scatter(12, 3, 0xACE));
        let snapshot = std::sync::Arc::clone(db.store());
        let engine = QueryEngine::new(&db, Operator::SSd);
        let _ = engine.run_batch(&queries(6, 11), 3);
        assert!(
            std::sync::Arc::ptr_eq(&snapshot, db.store()),
            "batch execution must not clone or replace the instance store"
        );
        // 1 (db) + 1 (snapshot) — workers have exited and added none.
        assert_eq!(std::sync::Arc::strong_count(db.store()), 2);
    }

    #[test]
    fn run_matches_nn_candidates() {
        let db = Database::new(scatter(24, 3, 0xBEEF));
        let q = queries(1, 7).remove(0);
        for op in Operator::ALL {
            let engine = QueryEngine::new(&db, op);
            let a = engine.run(&q);
            let b = nn_candidates(&db, &q, op, &FilterConfig::all());
            assert_eq!(a.ids(), b.ids(), "{op:?}");
            assert_eq!(a.stats, b.stats, "{op:?}");
        }
    }

    /// The deterministic projection of a registry: everything except the
    /// wall-clock nanoseconds and latency buckets, which legitimately vary
    /// run to run.
    type MetricsProjection = (Vec<u64>, u64, Vec<u64>, Vec<(&'static str, u64)>);

    fn metrics_projection(m: &QueryMetrics) -> MetricsProjection {
        (
            osd_obs::Counter::ALL
                .iter()
                .map(|&c| m.counter(c))
                .collect(),
            m.heap_high_water(),
            osd_obs::Phase::ALL
                .iter()
                .map(|&p| m.phase_count(p))
                .collect(),
            m.candidates_by_op(),
        )
    }

    #[test]
    fn batch_is_identical_across_thread_counts() {
        let db = Database::new(scatter(40, 3, 0x0517));
        let qs = queries(9, 99);
        let engine = QueryEngine::new(&db, Operator::PSd);
        let sequential = engine.run_batch(&qs, 1);
        for threads in [2, 4, 8] {
            let parallel = engine.run_batch(&qs, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(sequential.iter()) {
                assert_eq!(p.ids(), s.ids(), "{threads} threads");
                assert_eq!(p.stats, s.stats, "{threads} threads");
                assert_eq!(p.objects_checked, s.objects_checked, "{threads} threads");
                assert_eq!(
                    metrics_projection(&p.metrics),
                    metrics_projection(&s.metrics),
                    "{threads} threads: per-query metrics must be deterministic"
                );
            }
            assert_eq!(
                metrics_projection(&batch_metrics(&parallel)),
                metrics_projection(&batch_metrics(&sequential)),
                "{threads} threads: folded totals must be exact"
            );
        }
    }

    #[test]
    fn metrics_mirror_stats_counters() {
        // The registry's rtree/cache counters must agree with the legacy
        // Stats counters recorded at the same sites — in the enabled build
        // they are equal, in the disabled build the registry reads zero.
        let db = Database::new(scatter(25, 3, 0xF00D));
        let q = queries(1, 42).remove(0);
        for op in Operator::ALL {
            let r = QueryEngine::new(&db, op).run(&q);
            if QueryMetrics::enabled() {
                assert_eq!(
                    r.metrics.counter(osd_obs::Counter::RtreeNodeVisits),
                    r.stats.rtree_nodes_visited,
                    "{op:?}"
                );
                assert_eq!(
                    r.metrics.counter(osd_obs::Counter::CacheHits),
                    r.stats.cache_hits,
                    "{op:?}"
                );
                assert_eq!(
                    r.metrics.counter(osd_obs::Counter::CacheMisses),
                    r.stats.cache_misses,
                    "{op:?}"
                );
                assert_eq!(
                    r.metrics.counter(osd_obs::Counter::CandidatesEmitted),
                    r.candidates.len() as u64,
                    "{op:?}"
                );
            } else {
                assert_eq!(
                    r.metrics,
                    QueryMetrics::new(),
                    "{op:?}: disabled build records nothing"
                );
            }
        }
    }

    #[test]
    fn merged_stats_equal_sequential_sum() {
        let db = Database::new(scatter(30, 2, 0xACE));
        let qs = queries(6, 3);
        let engine = QueryEngine::with_config(&db, Operator::SsSd, FilterConfig::all());
        let mut expected = Stats::default();
        for q in &qs {
            expected.merge(&engine.run(q).stats);
        }
        let batched = engine.run_batch(&qs, 4);
        assert_eq!(batch_stats(&batched), expected);
    }

    #[test]
    fn batch_stamps_trace_seq_and_tracing_changes_nothing() {
        let db = Database::new(scatter(30, 3, 0x7AC3));
        let qs = queries(6, 17);
        let plain = QueryEngine::with_config(&db, Operator::SSd, FilterConfig::all());
        let traced = QueryEngine::with_config(&db, Operator::SSd, FilterConfig::all().traced());
        let base = plain.run_batch(&qs, 3);
        let with_traces = traced.run_batch(&qs, 3);
        for (i, (p, t)) in base.iter().zip(with_traces.iter()).enumerate() {
            assert_eq!(p.ids(), t.ids(), "tracing must not change candidates");
            assert_eq!(p.stats, t.stats, "tracing must not change counters");
            assert!(p.trace.is_none(), "untraced results carry no trace");
            if osd_obs::QueryTrace::enabled() {
                let trace = t.trace.as_ref().expect("traced run yields a trace");
                assert_eq!(trace.seq, i as u64, "seq is the input index");
                assert_eq!(trace.label, Operator::SSd.label());
                assert!(!trace.spans.is_empty());
            } else {
                assert!(t.trace.is_none(), "obs off: the trace flag is inert");
            }
        }
    }

    /// Per-worker recorders fed disjoint slices of a batch merge to the
    /// same retained set as one recorder fed sequentially — the engine-level
    /// face of `FlightRecorder::merge`'s order independence.
    #[test]
    fn per_worker_recorders_merge_exactly() {
        if !osd_obs::QueryTrace::enabled() {
            return;
        }
        let db = Database::new(scatter(30, 3, 0x51AB));
        let qs = queries(8, 23);
        let engine = QueryEngine::with_config(&db, Operator::PSd, FilterConfig::all().traced());
        let results = engine.run_batch(&qs, 4);
        let mut sequential = FlightRecorder::new(4, 0, 2);
        record_batch(&mut sequential, &results);
        for split in 1..results.len() {
            let mut left = FlightRecorder::new(4, 0, 2);
            let mut right = FlightRecorder::new(4, 0, 2);
            record_batch(&mut left, &results[..split]);
            record_batch(&mut right, &results[split..]);
            left.merge(right);
            let seqs = |r: &FlightRecorder, n: usize| -> Vec<u64> {
                r.last(n).iter().map(|t| t.seq).collect()
            };
            assert_eq!(
                seqs(&left, 8),
                seqs(&sequential, 8),
                "split at {split}: merged ring must equal the sequential ring"
            );
            assert_eq!(
                left.slowest(2).iter().map(|t| t.seq).collect::<Vec<_>>(),
                sequential
                    .slowest(2)
                    .iter()
                    .map(|t| t.seq)
                    .collect::<Vec<_>>(),
                "split at {split}: merged slow log must match"
            );
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let db = Database::new(scatter(10, 2, 5));
        let qs = queries(2, 11);
        let engine = QueryEngine::new(&db, Operator::SSd);
        // More threads than queries, and zero threads, both behave.
        let a = engine.run_batch(&qs, 64);
        let b = engine.run_batch(&qs, 0);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ids(), y.ids());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let db = Database::new(scatter(4, 2, 21));
        let engine = QueryEngine::new(&db, Operator::FSd);
        assert!(engine.run_batch(&[], 4).is_empty());
        assert_eq!(batch_stats(&[]), Stats::default());
    }

    /// Warm execution and Morton reordering are both transparent: the
    /// candidate sets, `min_dist` bits and `Stats` of every result equal
    /// the cold, unordered baseline, and results come back in input order.
    #[test]
    fn warm_and_reordered_batches_match_cold_in_input_order() {
        let db = Database::new(scatter(40, 3, 0xC0FFEE));
        let qs = queries(10, 123);
        let cold = QueryEngine::new(&db, Operator::SSd)
            .with_reorder(false)
            .run_batch(&qs, 1);
        let pool = crate::WarmPool::new();
        for threads in [1usize, 4] {
            let warm = QueryEngine::new(&db, Operator::SSd)
                .with_warm(&pool)
                .run_batch(&qs, threads);
            assert_eq!(warm.len(), cold.len());
            for (w, c) in warm.iter().zip(cold.iter()) {
                assert_eq!(w.ids(), c.ids(), "{threads} threads");
                assert_eq!(w.stats, c.stats, "{threads} threads: Stats are warm-blind");
                let bits = |r: &NncResult| -> Vec<u64> {
                    r.candidates.iter().map(|c| c.min_dist.to_bits()).collect()
                };
                assert_eq!(bits(w), bits(c), "{threads} threads: min_dist bits");
            }
        }
        if QueryMetrics::enabled() {
            let stats = pool.stats();
            assert!(
                stats.hits > 0,
                "repeated batch over one snapshot must hit the warm cache"
            );
        }
    }

    /// The Morton schedule is a permutation, is deterministic, and groups
    /// spatially close queries; `with_reorder(false)` restores the
    /// identity schedule (observable only through scheduling, so we pin
    /// the permutation property itself).
    #[test]
    fn morton_order_is_a_deterministic_permutation() {
        let qs = queries(17, 0x5EED);
        let a = morton_order(&qs);
        let b = morton_order(&qs);
        assert_eq!(a, b, "schedule must be deterministic");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..qs.len()).collect::<Vec<_>>(), "permutation");
        // Two co-located clusters: the schedule must not interleave them.
        let near: Vec<PreparedQuery> = (0..4)
            .map(|i| {
                PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![
                    i as f64 * 0.01,
                    0.0,
                ])]))
            })
            .collect();
        let far: Vec<PreparedQuery> = (0..4)
            .map(|i| {
                PreparedQuery::new(UncertainObject::uniform(vec![Point::new(vec![
                    90.0 + i as f64 * 0.01,
                    90.0,
                ])]))
            })
            .collect();
        let mut mixed = Vec::new();
        for i in 0..4 {
            mixed.push(near[i].clone());
            mixed.push(far[i].clone());
        }
        let order = morton_order(&mixed);
        let first_half: Vec<usize> = order[..4].to_vec();
        assert!(
            first_half.iter().all(|&i| i % 2 == 0) || first_half.iter().all(|&i| i % 2 == 1),
            "clusters must be contiguous in the schedule, got {order:?}"
        );
    }
}
