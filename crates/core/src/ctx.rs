//! The per-query check context.
//!
//! Every dominance check `SD(U, V, Q)` of §5.1 runs against the same
//! environment: the database the operands live in, the prepared query, the
//! active filter switches, the per-query derived-state cache and the cost
//! counters. [`CheckCtx`] bundles that environment into one value so the
//! operator kernels take `(u, v, ctx)` instead of threading eight loose
//! arguments, and so one query's mutable state (cache + stats) is a single
//! owned unit that can move onto a worker thread with the query.

use crate::cache::{AggStats, BoundPair, DominanceCache, LevelSnapshot, MappedInstances};
use crate::config::{FilterConfig, Stats};
#[cfg(test)]
use crate::db::Database;
use crate::index::SpatialIndex;
use crate::ops::Operator;
use crate::query::PreparedQuery;
use crate::warm::WarmView;
use osd_flow::MaxFlow;
use osd_obs::{
    trace::DEFAULT_TRACE_EVENTS, AttrValue, Phase, PhaseTimer, QueryMetrics, QueryTrace,
};
use osd_uncertain::DistanceDistribution;
use std::sync::Arc;

/// Reusable scratch buffers for the dominance checks, owned by the context
/// so the exact-network path of one query allocates O(1) amortised across
/// all of its checks: edge lists, the necessary-condition bitmap, the
/// Dinic arena, and the `⪯_Q` distance tables all keep their allocations
/// between `(u, v)` pairs.
///
/// The buffers carry no state across checks — every user clears or
/// overwrites before reading — so reuse cannot change any result.
#[derive(Default)]
pub(crate) struct CheckScratch {
    /// Bipartite edge list `(i, j)` of the current network.
    pub(crate) edges: Vec<(usize, usize)>,
    /// Per-`u` "has an outgoing edge" bitmap (flow necessary condition).
    pub(crate) has_edge: Vec<bool>,
    /// Resettable max-flow arena.
    pub(crate) flow: MaxFlow,
    /// Blocked distance table `δ²(u_i, q)`, query-major.
    pub(crate) dist_u: Vec<f64>,
    /// Blocked distance table `δ²(v_j, q)`, query-major.
    pub(crate) dist_v: Vec<f64>,
}

/// The environment of one query's dominance checks: shared read-only data
/// (`db`, `query`), the filter configuration, and the query-local mutable
/// state (`cache`, `stats`).
///
/// A `CheckCtx` is cheap to create (the cache fills lazily) and is never
/// shared between queries — parallel executors build one per query per
/// worker, which is what makes inter-query parallelism safe without locks.
pub struct CheckCtx<'a> {
    /// The database both operands live in.
    pub db: &'a dyn SpatialIndex,
    /// The prepared query `Q`.
    pub query: &'a PreparedQuery,
    /// The §5.1 filtering switches in effect.
    pub cfg: FilterConfig,
    /// Lazily-populated per-object derived state for this query.
    pub cache: DominanceCache,
    /// Cost counters accumulated across every check run in this context.
    pub stats: Stats,
    /// Instrumentation registry for this query (zero-sized no-op unless
    /// the `obs` feature is on).
    pub metrics: QueryMetrics,
    /// Per-query structured trace recorder. Active only when
    /// `cfg.trace` is set *and* the `obs` feature is on; otherwise every
    /// call is an inert no-op, so the check kernels instrument
    /// unconditionally.
    pub trace: QueryTrace,
    /// Reusable scratch buffers for the allocation-free check paths.
    pub(crate) scratch: CheckScratch,
}

impl<'a> CheckCtx<'a> {
    /// Creates a fresh context (empty cache, zeroed counters) for one query.
    pub fn new(db: &'a dyn SpatialIndex, query: &'a PreparedQuery, cfg: FilterConfig) -> Self {
        Self::with_warm(db, query, cfg, None)
    }

    /// Creates a fresh context whose cache resolves snapshot-pure misses
    /// through `warm` (see `core::warm`). `None` gives the plain cold
    /// context of [`CheckCtx::new`]; results are bit-identical either way.
    pub fn with_warm(
        db: &'a dyn SpatialIndex,
        query: &'a PreparedQuery,
        cfg: FilterConfig,
        warm: Option<WarmView>,
    ) -> Self {
        CheckCtx {
            db,
            query,
            cfg,
            cache: DominanceCache::with_warm(db.len(), warm),
            stats: Stats::default(),
            metrics: QueryMetrics::new(),
            trace: if cfg.trace {
                QueryTrace::start("query", DEFAULT_TRACE_EVENTS)
            } else {
                QueryTrace::off()
            },
            scratch: CheckScratch::default(),
        }
    }

    /// Checks whether object `u` dominates object `v` under `op` — the
    /// method form of [`crate::ops::dominates`].
    ///
    /// When tracing, every check becomes a `check` span carrying the
    /// operand pair, the flow-run delta it cost and its verdict — the
    /// per-pair narrative the aggregate `dominance_checks` counter can't
    /// give.
    pub fn dominates(&mut self, op: Operator, u: usize, v: usize) -> bool {
        let span = self.trace.open("check");
        let flows_before = self.stats.flow_runs;
        let result = crate::ops::dominates(op, u, v, self);
        if span != osd_obs::SpanId::NONE {
            self.trace.attr(span, "u", AttrValue::U64(u as u64));
            self.trace.attr(span, "v", AttrValue::U64(v as u64));
            self.trace.attr(
                span,
                "flow_runs",
                AttrValue::U64(self.stats.flow_runs - flows_before),
            );
            self.trace
                .attr(span, "dominates", AttrValue::U64(result as u64));
        }
        self.trace.close(span);
        result
    }

    /// The full distance distribution `U_Q` of object `id` (cached).
    pub fn dist_q(&mut self, id: usize) -> Arc<DistanceDistribution> {
        let misses_before = self.stats.cache_misses;
        let dist = self
            .cache
            .dist_q(self.db, self.query, id, &mut self.stats, &mut self.metrics);
        if self.trace.is_active() && self.stats.cache_misses > misses_before {
            let event = self.trace.instant("cache-build");
            self.trace
                .attr(event, "kind", AttrValue::Str("dist_q".into()));
            self.trace.attr(event, "id", AttrValue::U64(id as u64));
        }
        dist
    }

    /// The per-query-instance distributions `U_q` of object `id` (cached).
    pub fn per_q(&mut self, id: usize) -> Arc<Vec<DistanceDistribution>> {
        self.cache
            .per_q(self.db, self.query, id, &mut self.stats, &mut self.metrics)
    }

    /// min/mean/max of `U_Q` (cached).
    pub fn agg(&mut self, id: usize) -> AggStats {
        self.cache
            .agg(self.db, self.query, id, &mut self.stats, &mut self.metrics)
    }

    /// min/mean/max of each `U_q` (cached).
    pub fn per_q_agg(&mut self, id: usize) -> Arc<Vec<AggStats>> {
        self.cache
            .per_q_agg(self.db, self.query, id, &mut self.stats, &mut self.metrics)
    }

    /// Fixed-point instance masses of object `id` (cached).
    pub fn quanta(&mut self, id: usize) -> Arc<Vec<u64>> {
        self.cache
            .quanta(self.db, id, &mut self.stats, &mut self.metrics)
    }

    /// Distance-space image of object `id` w.r.t. the query hull (cached).
    pub fn mapped(&mut self, id: usize) -> Arc<MappedInstances> {
        self.cache
            .mapped(self.db, self.query, id, &mut self.stats, &mut self.metrics)
    }

    /// Instances of `id` inside the query's convex hull (cached).
    pub fn in_hull_instances(&mut self, id: usize) -> Arc<Vec<usize>> {
        self.cache
            .in_hull_instances(self.db, self.query, id, &mut self.stats, &mut self.metrics)
    }

    /// Per-level group snapshot (MBRs + masses + caps) of object `id`'s
    /// local R-tree (cached once per traversal).
    pub fn level_snapshot(&mut self, id: usize) -> Arc<LevelSnapshot> {
        self.cache
            .level_snapshot(self.db, id, &mut self.stats, &mut self.metrics)
    }

    /// Whole-`U_Q` level-bound distributions of object `id` at `level`
    /// (cached per clamped level; the caller charges the per-use cost).
    pub(crate) fn level_bounds_whole(&mut self, id: usize, level: usize) -> Arc<BoundPair> {
        self.cache.level_bounds_whole(
            self.db,
            self.query,
            id,
            level,
            &mut self.stats,
            &mut self.metrics,
        )
    }

    /// Per-`U_q` level-bound distributions of object `id` at `level`
    /// (cached per clamped level; the caller charges the per-use cost).
    pub(crate) fn level_bounds_instance(&mut self, id: usize, level: usize) -> Arc<Vec<BoundPair>> {
        self.cache.level_bounds_instance(
            self.db,
            self.query,
            id,
            level,
            &mut self.stats,
            &mut self.metrics,
        )
    }

    /// Cover-based validation (Theorem 4), shared by the strict operators:
    /// the *strict* MBR dominance test guarantees `U_Q ≠ V_Q` on top of
    /// full spatial dominance, so it validates S-SD, SS-SD and P-SD exactly.
    pub(crate) fn validate_mbr(&mut self, u: usize, v: usize) -> bool {
        let timer = PhaseTimer::start(Phase::Validate);
        let span = self.trace.open("validate");
        self.stats.mbr_checks += 1;
        let validated = osd_geom::mbr_dominates_strict(
            self.db.object(u).mbr(),
            self.db.object(v).mbr(),
            self.query.mbr(),
        );
        if span != osd_obs::SpanId::NONE {
            self.trace.attr(span, "u", AttrValue::U64(u as u64));
            self.trace.attr(span, "v", AttrValue::U64(v as u64));
            self.trace
                .attr(span, "validated", AttrValue::U64(validated as u64));
        }
        self.trace.close(span);
        self.metrics.record(timer);
        validated
    }

    /// Strictness guard for the exact dominance paths: Definitions 2/3/5
    /// additionally require `U_Q ≠ V_Q`. Only evaluated on the "dominates"
    /// path, so the extra distribution build amortises to at most one per
    /// discarded object.
    pub(crate) fn strict_guard(&mut self, u: usize, v: usize) -> bool {
        let timer = PhaseTimer::start(Phase::Validate);
        let span = self.trace.open("strict-guard");
        let du = self.dist_q(u);
        let dv = self.dist_q(v);
        self.stats.instance_comparisons += du.support_size().min(dv.support_size()) as u64;
        let distinct = !du.approx_eq(&dv, osd_uncertain::CDF_EPS);
        if span != osd_obs::SpanId::NONE {
            self.trace
                .attr(span, "distinct", AttrValue::U64(distinct as u64));
        }
        self.trace.close(span);
        self.metrics.record(timer);
        distinct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn ctx_dominates_matches_free_function() {
        let db = Database::new(vec![
            obj(&[(1.0, 0.0), (2.0, 0.0)]),
            obj(&[(8.0, 0.0), (9.0, 0.0)]),
        ]);
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        for op in Operator::ALL {
            let mut ctx = CheckCtx::new(&db, &q, FilterConfig::all());
            let via_method = ctx.dominates(op, 0, 1);
            let mut ctx2 = CheckCtx::new(&db, &q, FilterConfig::all());
            let via_fn = crate::ops::dominates(op, 0, 1, &mut ctx2);
            assert_eq!(via_method, via_fn, "{op:?}");
            assert_eq!(ctx.stats, ctx2.stats, "{op:?} counters must agree");
        }
    }

    #[test]
    fn helpers_share_the_cache() {
        let db = Database::new(vec![obj(&[(1.0, 0.0), (2.0, 0.0)])]);
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut ctx = CheckCtx::new(&db, &q, FilterConfig::all());
        let d1 = ctx.dist_q(0);
        let cost = ctx.stats.instance_comparisons;
        let d2 = ctx.dist_q(0);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(ctx.stats.instance_comparisons, cost, "second hit is free");
    }
}
