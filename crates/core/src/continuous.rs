//! Continuous NN-candidate maintenance over an epoch-published index.
//!
//! A [`ContinuousNnc`] is a standing query: it computes the candidate set
//! once, remembers the epoch it saw, and on every subsequent snapshot
//! *repairs* the set instead of re-running Algorithm 1 from scratch.
//!
//! ## Why the repair is exact
//!
//! The full query is equivalent to filtering all live objects in
//! `(δ_min, id)` order, keeping each object iff no kept predecessor
//! dominates it (the gather pass of
//! [`nn_candidates_scatter`](crate::nn_candidates_scatter) is literally
//! this filter). The repair reproduces that filter incrementally:
//!
//! * **Deleting a non-candidate changes nothing.** A non-candidate `v` is
//!   dominated by some kept `u`; anything `v` dominates is also dominated
//!   by `u` (transitivity, Theorem 9), so no exclusion ever depended on
//!   `v`.
//! * **Deleting or updating a candidate invalidates the set** — objects it
//!   excluded may resurface — so the handle falls back to a full re-query.
//! * **An insert (or an update of a non-candidate) is a local re-check.**
//!   The new object `w` is kept iff no kept predecessor dominates it, and
//!   if kept it evicts exactly the current candidates it dominates:
//!   an old non-candidate excluded by an evicted `u` stays excluded
//!   because `w` dominates `u` dominates it, hence `w` dominates it
//!   (transitivity) and `w` precedes it (a dominator never follows its
//!   dominated object in `(δ_min, id)` order — the statistic rule on
//!   `min`).
//!
//! The re-check applies the same MBR pre-filter as the traversal's entry
//! pruning ([Theorem 4]): an object whose MBR is dominated by a standing
//! candidate's MBR is discarded before its exact `δ_min` is ever computed
//! — only objects whose MBR-δ interval intersects the standing prune
//! bound pay for a local-tree descent. Keys come from the exact same code
//! path as the traversal ([`crate::nnc::object_min_dist2`]), so repaired
//! candidates are bit-identical — ids, `min_dist` bits and order — to a
//! full re-query on the new snapshot (pinned by
//! `tests/mutate_identity.rs`).

use crate::config::FilterConfig;
use crate::ctx::CheckCtx;
use crate::index::SpatialIndex;
use crate::nnc::{mbr_pruned, nn_candidates, nn_candidates_warm, object_min_dist2, Candidate};
use crate::ops::Operator;
use crate::query::PreparedQuery;
use crate::warm::WarmPool;
use osd_geom::Mbr;
use osd_obs::{trace::DEFAULT_TRACE_EVENTS, AttrValue, QueryTrace, SpanId, Stopwatch, TraceData};
use osd_uncertain::Change;
use std::borrow::Cow;

/// How a [`ContinuousNnc::refresh`] brought the candidate set up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repair {
    /// The snapshot epoch matched the handle's — nothing to do.
    UpToDate,
    /// The delta was insert-shaped and repaired in place.
    Incremental {
        /// Changed objects that had to be re-checked at all.
        rechecked: usize,
        /// Re-checked objects discarded by the MBR pre-filter before
        /// their exact `δ_min` was computed.
        mbr_pruned: usize,
        /// New candidates admitted into the standing set.
        admitted: usize,
        /// Standing candidates evicted because an admitted object
        /// dominates them.
        evicted: usize,
    },
    /// The delta touched a standing candidate (or was unreconstructible),
    /// forcing a full re-query.
    Full,
}

/// A standing NN-candidate query over a mutating index.
///
/// The handle does not borrow the index: each [`refresh`](Self::refresh)
/// takes the current snapshot, so it composes with
/// [`PublishedIndex::pin`](crate::PublishedIndex::pin) — pin, refresh,
/// drop the pin, repeat.
#[derive(Debug, Clone)]
pub struct ContinuousNnc {
    query: PreparedQuery,
    op: Operator,
    cfg: FilterConfig,
    epoch: u64,
    candidates: Vec<Candidate>,
    cand_mbrs: Vec<Mbr>,
    /// Refreshes that found work (the `seq` source for repair traces).
    refreshes: u64,
    /// Trace of the most recent repairing refresh, when `cfg.trace` is on
    /// and the `obs` feature is enabled.
    last_trace: Option<TraceData>,
}

impl ContinuousNnc {
    /// Runs the initial full query and pins the handle to `db`'s epoch.
    pub fn new(
        db: &dyn SpatialIndex,
        query: PreparedQuery,
        op: Operator,
        cfg: FilterConfig,
    ) -> Self {
        let mut this = ContinuousNnc {
            query,
            op,
            cfg,
            epoch: 0,
            candidates: Vec::new(),
            cand_mbrs: Vec::new(),
            refreshes: 0,
            last_trace: None,
        };
        this.requery(db);
        this
    }

    /// The standing candidate set, in `(δ_min, id)` emission order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Candidate ids, in emission order.
    pub fn ids(&self) -> Vec<usize> {
        self.candidates.iter().map(|c| c.id).collect()
    }

    /// The epoch of the snapshot the candidate set is valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The standing query.
    pub fn query(&self) -> &PreparedQuery {
        &self.query
    }

    /// The dominance operator of the standing query.
    pub fn op(&self) -> Operator {
        self.op
    }

    /// Whether `id` is currently a standing candidate.
    pub fn contains(&self, id: usize) -> bool {
        self.candidates.iter().any(|c| c.id == id)
    }

    /// Trace of the most recent refresh that found work — `None` until a
    /// repairing refresh runs with tracing configured (`cfg.trace` and the
    /// `obs` feature on). `seq` counts repairing refreshes of this handle.
    pub fn last_trace(&self) -> Option<&TraceData> {
        self.last_trace.as_ref()
    }

    /// Brings the candidate set up to date with `db`'s snapshot and
    /// reports how.
    ///
    /// After this returns, the set is bit-identical — ids, `min_dist`
    /// bits, order — to `nn_candidates(db, …)` on the same snapshot.
    pub fn refresh(&mut self, db: &dyn SpatialIndex) -> Repair {
        self.refresh_with(db, None)
    }

    /// [`Self::refresh`], optionally resolving the repair's snapshot-pure
    /// cache misses through `warm` (see `core::warm`). Same repair
    /// decisions, same bit-identical candidate set — the warm pool only
    /// changes where derived state is rebuilt.
    pub fn refresh_with(&mut self, db: &dyn SpatialIndex, warm: Option<&WarmPool>) -> Repair {
        let now = db.epoch();
        if now == self.epoch {
            return Repair::UpToDate;
        }
        let mut trace = if self.cfg.trace {
            QueryTrace::start("repair", DEFAULT_TRACE_EVENTS)
        } else {
            QueryTrace::off()
        };
        let Some(changes) = db.changes_since(self.epoch) else {
            // The reader fell behind the retained change window (or the
            // handle was moved across unrelated indexes): start over.
            self.full_requery(db, warm, trace, "stale-window");
            return Repair::Full;
        };
        let scan = trace.open("changes-scan");
        if scan != SpanId::NONE {
            trace.attr(scan, "changes", AttrValue::U64(changes.len() as u64));
            for c in &changes {
                let event = trace.instant("change");
                trace.attr(event, "kind", AttrValue::Str(Cow::Borrowed(c.label())));
                trace.attr(event, "id", AttrValue::U64(c.id() as u64));
            }
        }
        let candidate_touched = changes
            .iter()
            .any(|c| matches!(c, Change::Deleted(id) | Change::Updated(id) if self.contains(*id)));
        trace.close(scan);
        if candidate_touched {
            self.full_requery(db, warm, trace, "candidate-touched");
            return Repair::Full;
        }
        // Insert-shaped delta: deletes of non-candidates are free, and
        // inserts/updates of non-candidates are local re-checks. An id
        // inserted and deleted inside the window is no longer live and
        // drops out here.
        let mut recheck: Vec<usize> = changes
            .iter()
            .filter_map(|c| match *c {
                Change::Inserted(id) | Change::Updated(id) => Some(id),
                Change::Deleted(_) => None,
            })
            .filter(|&id| db.is_live(id) && !self.contains(id))
            .collect();
        recheck.sort_unstable();
        recheck.dedup();
        let rechecked = recheck.len();

        // Fresh context: the old snapshot's per-object caches are keyed by
        // id but derived from object *content*, which an update may have
        // changed — a new epoch always gets a clean cache. The repair owns
        // the trace, so the context runs untraced.
        let mut ctx = CheckCtx::with_warm(
            db,
            &self.query,
            FilterConfig {
                trace: false,
                ..self.cfg
            },
            warm.map(|pool| pool.view_for(db, &self.query)),
        );
        let start = Stopwatch::start();
        let recheck_span = trace.open("recheck");

        // MBR pre-filter (the traversal's entry pruning, Theorem 4): only
        // objects whose MBR survives the standing prune bound pay for an
        // exact δ_min descent.
        let mut pruned = 0usize;
        let mut keyed: Vec<(f64, usize)> = Vec::with_capacity(recheck.len());
        for w in recheck {
            let w_mbr = db.object(w).mbr().clone();
            if mbr_pruned(
                &self.cand_mbrs,
                &w_mbr,
                self.query.mbr(),
                self.op,
                self.cfg.mbr_validation,
                &mut ctx.stats,
            ) {
                pruned += 1;
                continue;
            }
            let key = object_min_dist2(
                db,
                &self.query,
                self.cfg.kernels,
                w,
                &mut ctx.stats,
                &mut ctx.metrics,
            );
            keyed.push((key.max(0.0).sqrt(), w));
        }
        if recheck_span != SpanId::NONE {
            trace.attr(recheck_span, "rechecked", AttrValue::U64(rechecked as u64));
            trace.attr(recheck_span, "mbr_pruned", AttrValue::U64(pruned as u64));
        }
        trace.close(recheck_span);
        // Process survivors in the traversal's emission order so each is
        // checked against exactly its kept predecessors.
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let admit_span = trace.open("admit");
        let mut admitted = 0usize;
        let mut evicted = 0usize;
        for (dist, w) in keyed {
            // Position of `w` in the standing (δ_min, id) order: every
            // candidate before `pos` is a predecessor.
            let pos = self
                .candidates
                .partition_point(|c| c.min_dist.total_cmp(&dist).then(c.id.cmp(&w)).is_lt());
            let dominated = (0..pos).any(|i| {
                let u = self.candidates[i].id;
                ctx.dominates(self.op, u, w)
            });
            if dominated {
                continue;
            }
            self.candidates.insert(
                pos,
                Candidate {
                    id: w,
                    min_dist: dist,
                    elapsed: start.elapsed(),
                },
            );
            self.cand_mbrs.insert(pos, db.object(w).mbr().clone());
            ctx.metrics.candidate_emitted(self.op.label());
            admitted += 1;
            // Evict the successors `w` dominates. Transitivity makes this
            // scan complete: a candidate only ever excluded by an evicted
            // one would also be excluded by `w`, so no cascade is needed.
            let mut i = pos + 1;
            while i < self.candidates.len() {
                let v = self.candidates[i].id;
                if ctx.dominates(self.op, w, v) {
                    self.candidates.remove(i);
                    self.cand_mbrs.remove(i);
                    evicted += 1;
                } else {
                    i += 1;
                }
            }
        }
        if admit_span != SpanId::NONE {
            trace.attr(admit_span, "admitted", AttrValue::U64(admitted as u64));
            trace.attr(admit_span, "evicted", AttrValue::U64(evicted as u64));
        }
        trace.close(admit_span);
        self.epoch = now;
        self.store_trace(trace);
        Repair::Incremental {
            rechecked,
            mbr_pruned: pruned,
            admitted,
            evicted,
        }
    }

    /// The full-requery arm of a refresh: wraps [`Self::requery`] in a
    /// `requery` span tagged with why the incremental repair was abandoned,
    /// then stores the finished trace.
    fn full_requery(
        &mut self,
        db: &dyn SpatialIndex,
        warm: Option<&WarmPool>,
        mut trace: QueryTrace,
        reason: &'static str,
    ) {
        let span = trace.open("requery");
        if span != SpanId::NONE {
            trace.attr(span, "reason", AttrValue::Str(Cow::Borrowed(reason)));
        }
        self.requery_with(db, warm);
        if span != SpanId::NONE {
            trace.attr(
                span,
                "candidates",
                AttrValue::U64(self.candidates.len() as u64),
            );
        }
        trace.close(span);
        self.store_trace(trace);
    }

    /// Finishes a repair trace, stamps its `seq` from the refresh counter
    /// and retains it as [`Self::last_trace`].
    fn store_trace(&mut self, trace: QueryTrace) {
        let seq = self.refreshes;
        self.refreshes += 1;
        if let Some(mut t) = trace.finish() {
            t.seq = seq;
            self.last_trace = Some(t);
        }
    }

    /// Replaces the standing set with a full re-query on `db`. Runs
    /// untraced: a refresh's repair trace (if any) is owned by the caller,
    /// and the initial query of [`Self::new`] records none.
    fn requery(&mut self, db: &dyn SpatialIndex) {
        self.requery_with(db, None);
    }

    fn requery_with(&mut self, db: &dyn SpatialIndex, warm: Option<&WarmPool>) {
        let cfg = FilterConfig {
            trace: false,
            ..self.cfg
        };
        let result = match warm {
            Some(pool) => nn_candidates_warm(db, &self.query, self.op, &cfg, pool),
            None => nn_candidates(db, &self.query, self.op, &cfg),
        };
        self.cand_mbrs = result
            .candidates
            .iter()
            .map(|c| db.object(c.id).mbr().clone())
            .collect();
        self.candidates = result.candidates;
        self.epoch = db.epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::sharded::ShardedDatabase;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn line_objects(n: usize) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| {
                let x = 2.0 + 3.0 * i as f64;
                obj(&[(x, 0.0), (x + 0.5, 0.0)])
            })
            .collect()
    }

    fn assert_matches_full(handle: &ContinuousNnc, db: &dyn SpatialIndex) {
        let full = nn_candidates(db, handle.query(), handle.op(), &FilterConfig::all());
        let repaired: Vec<(usize, u64)> = handle
            .candidates()
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect();
        let fresh: Vec<(usize, u64)> = full
            .candidates
            .iter()
            .map(|c| (c.id, c.min_dist.to_bits()))
            .collect();
        assert_eq!(repaired, fresh, "repair must be bit-identical to re-query");
    }

    #[test]
    fn up_to_date_without_mutation() {
        let db = Database::new(line_objects(4));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::PSd, FilterConfig::all());
        assert_eq!(handle.refresh(&db), Repair::UpToDate);
    }

    #[test]
    fn insert_repairs_incrementally() {
        let mut db = Database::new(line_objects(4));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::PSd, FilterConfig::all());
        // A new nearest object: admitted, and it may evict old candidates.
        db.insert_object(obj(&[(0.5, 0.0), (0.6, 0.0)]));
        let repair = handle.refresh(&db);
        assert!(
            matches!(repair, Repair::Incremental { rechecked: 1, .. }),
            "insert-only delta must repair in place, got {repair:?}"
        );
        assert_eq!(handle.epoch(), db.epoch());
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn far_insert_is_mbr_pruned() {
        let mut db = Database::new(line_objects(4));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::FSd, FilterConfig::all());
        // Far behind every candidate: the MBR pre-filter discards it
        // without an exact descent.
        db.insert_object(obj(&[(500.0, 0.0), (500.5, 0.0)]));
        let repair = handle.refresh(&db);
        assert_eq!(
            repair,
            Repair::Incremental {
                rechecked: 1,
                mbr_pruned: 1,
                admitted: 0,
                evicted: 0,
            }
        );
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn deleting_a_candidate_forces_full_requery() {
        let mut db = Database::new(line_objects(5));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::SSd, FilterConfig::all());
        let first = handle.ids()[0];
        db.delete_object(first);
        assert_eq!(handle.refresh(&db), Repair::Full);
        assert!(!handle.contains(first));
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn deleting_a_non_candidate_is_a_free_repair() {
        let mut db = Database::new(line_objects(5));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::SSd, FilterConfig::all());
        let dead = (0..db.len())
            .find(|id| !handle.contains(*id))
            .expect("line db has dominated objects");
        db.delete_object(dead);
        assert_eq!(
            handle.refresh(&db),
            Repair::Incremental {
                rechecked: 0,
                mbr_pruned: 0,
                admitted: 0,
                evicted: 0,
            }
        );
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn stale_handle_falls_back_to_full() {
        let mut db = Database::new(line_objects(3));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::PSd, FilterConfig::all());
        // Overflow the change log so the delta is unreconstructible.
        for _ in 0..(osd_uncertain::DEFAULT_LOG_CAP + 1) {
            let id = db.insert_object(obj(&[(100.0, 100.0)]));
            db.delete_object(id);
        }
        assert_eq!(handle.refresh(&db), Repair::Full);
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn repair_tracks_a_sharded_index() {
        let objects: Vec<UncertainObject> = (0..12)
            .map(|i| {
                let x = (i % 4) as f64 * 5.0 + 1.0;
                let y = (i / 4) as f64 * 5.0;
                obj(&[(x, y), (x + 0.5, y)])
            })
            .collect();
        let mut db = ShardedDatabase::new(objects, 3);
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::PSd, FilterConfig::all());
        db.insert_object(obj(&[(0.25, 0.25)]));
        let repair = handle.refresh(&db);
        assert!(matches!(repair, Repair::Incremental { .. }), "{repair:?}");
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn repair_traces_narrate_both_arms() {
        let mut db = Database::new(line_objects(5));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut handle = ContinuousNnc::new(&db, q, Operator::SSd, FilterConfig::all().traced());
        assert!(handle.last_trace().is_none(), "no repair has run yet");

        // Incremental arm: an insert-only delta.
        db.insert_object(obj(&[(0.5, 0.0), (0.6, 0.0)]));
        let repair = handle.refresh(&db);
        assert!(matches!(repair, Repair::Incremental { .. }), "{repair:?}");
        if !QueryTrace::enabled() {
            assert!(handle.last_trace().is_none(), "obs off: tracing is inert");
            return;
        }
        let t = handle.last_trace().expect("incremental repair traced");
        assert_eq!(t.seq, 0);
        assert_eq!(t.label, "repair");
        assert_eq!(t.count("changes-scan"), 1);
        assert_eq!(t.count("change"), 1, "one per-change event");
        assert_eq!(t.count("recheck"), 1);
        assert_eq!(t.count("admit"), 1);
        assert_eq!(t.count("requery"), 0);

        // Full arm: deleting a standing candidate.
        let first = handle.ids()[0];
        db.delete_object(first);
        assert_eq!(handle.refresh(&db), Repair::Full);
        let t = handle.last_trace().expect("full repair traced");
        assert_eq!(t.seq, 1, "refresh counter advances");
        assert_eq!(t.count("requery"), 1);
        assert_eq!(t.count("recheck"), 0);

        // Untraced results stay bit-identical to the traced repair.
        assert_matches_full(&handle, &db);
    }

    #[test]
    fn handle_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ContinuousNnc>();
        assert_send::<Repair>();
    }
}
