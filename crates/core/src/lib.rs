//! # osd-core
//!
//! The primary contribution of *Optimal Spatial Dominance: An Effective
//! Search of Nearest Neighbor Candidates* (SIGMOD 2015): three spatial
//! dominance operators — stochastic (S-SD), strict stochastic (SS-SD) and
//! peer (P-SD) — that are *optimal* (correct and complete) with respect to
//! growing families of NN functions, plus the F-SD / F⁺-SD baselines and
//! the NN-candidate computation built on them.
//!
//! ## Quick start
//!
//! ```
//! use osd_core::{nn_candidates, Database, FilterConfig, Operator, PreparedQuery};
//! use osd_geom::Point;
//! use osd_uncertain::UncertainObject;
//!
//! let objects = vec![
//!     UncertainObject::uniform(vec![Point::from([1.0, 1.0]), Point::from([2.0, 1.0])]),
//!     UncertainObject::uniform(vec![Point::from([8.0, 8.0]), Point::from([9.0, 9.0])]),
//! ];
//! let db = Database::new(objects);
//! let query = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([0.0, 0.0])]));
//! let result = nn_candidates(&db, &query, Operator::PSd, &FilterConfig::all());
//! assert_eq!(result.ids(), vec![0]); // the far object is peer-dominated
//! ```
//!
//! ## Structure
//!
//! * [`SpatialIndex`] — what the search needs from a database, abstracted
//!   over its physical layout;
//! * [`Database`] / [`FlatDatabase`] — objects indexed by a global R-tree
//!   plus per-object local R-trees (§6's n+1-tree layout);
//! * [`ShardedDatabase`] — the store space-partitioned into STR tiles,
//!   one global R-tree per tile, searched scatter-gather with a shared
//!   prune bound;
//! * [`PreparedQuery`] — the query with its convex hull cached;
//! * [`Operator`] / [`dominates`] — the five dominance checks with the
//!   §5.1 filtering techniques, switchable via [`FilterConfig`];
//! * [`CheckCtx`] — the per-query check environment every operator runs
//!   against;
//! * [`nn_candidates`] / [`ProgressiveNnc`] — Algorithm 1 (batch and
//!   progressive);
//! * [`PublishedIndex`] — epoch-published snapshot chain for concurrent
//!   readers over a mutating index (insert/delete/update via the
//!   [`SpatialIndex`] `try_*` family);
//! * [`ContinuousNnc`] — a standing NNC query that incrementally repairs
//!   its candidate set on every published epoch;
//! * [`QueryEngine`] — single-query and multi-threaded batch execution
//!   with exact [`Stats`] / [`QueryMetrics`] merging;
//! * [`nn_candidates_bruteforce`] — the O(n²) reference oracle;
//! * [`Stats`] — instance-comparison/flow/MBR/traversal/cache counters for
//!   the Appendix C ablation;
//! * [`QueryMetrics`] (re-exported from `osd-obs`) — phase timers, latency
//!   histograms and gauges, compiled to no-ops unless the `obs` feature is
//!   on (see DESIGN.md "Observability");
//! * [`QueryTrace`] / [`TraceData`] / [`FlightRecorder`] (re-exported from
//!   `osd-obs`) — per-query structured trace trees, switched on per query
//!   by [`FilterConfig::traced`](FilterConfig::traced) and retained in
//!   fixed-capacity flight-recorder rings with a slow-query log (see
//!   DESIGN.md "Tracing & flight recorder").

#![warn(missing_docs)]

pub mod brute;
pub mod cache;
pub mod config;
pub mod continuous;
pub mod ctx;
pub mod db;
pub mod engine;
pub mod explain;
pub mod index;
#[cfg(feature = "strict-invariants")]
pub mod invariants;
pub mod knnc;
pub mod nnc;
pub mod ops;
pub mod publish;
pub mod query;
pub mod sharded;
pub mod warm;

pub use brute::nn_candidates_bruteforce;
pub use cache::DominanceCache;
pub use config::{FilterConfig, Stats};
pub use continuous::{ContinuousNnc, Repair};
pub use ctx::CheckCtx;
pub use db::{Database, DbError, FlatDatabase};
pub use engine::{batch_metrics, batch_stats, record_batch, QueryEngine};
pub use explain::{dominance_matrix, dominators_of, dominators_of_with};
pub use index::{IndexStats, ShardSlice, ShardStats, SpatialIndex};
pub use knnc::{
    k_nn_candidates, k_nn_candidates_bruteforce, k_nn_candidates_scatter, k_nn_candidates_warm,
    KnncResult,
};
pub use nnc::{
    nn_candidates, nn_candidates_scatter, nn_candidates_scatter_warm, nn_candidates_warm,
    Candidate, NncResult, ProgressiveNnc,
};
pub use ops::{
    dominates, enclosing_ball, f_plus_sd, f_sd, p_sd, peer_network_flow, s_sd, sphere_validate,
    ss_sd, Operator,
};
pub use osd_obs::{FlightRecorder, QueryMetrics, QueryTrace, TraceData};
pub use osd_uncertain::{Change, EpochLog};
pub use publish::PublishedIndex;
pub use query::PreparedQuery;
pub use sharded::{ShardConfig, ShardedDatabase};
pub use warm::{WarmCache, WarmPool, WarmStats, WarmView};
