//! k-robust NN candidates — a skyband-style extension of Definition 6.
//!
//! `NNC_k(O, Q, SD)` contains every object dominated by **fewer than `k`**
//! other objects (so `NNC_1` is the paper's NNC). The set is useful when a
//! user wants a shortlist resilient to removing up to `k − 1` objects: if
//! any `k − 1` candidates are taken away (sold out, offline, …), the NN
//! under every covered function is still inside the set.
//!
//! Correctness of the traversal argument extends from Algorithm 1: objects
//! arrive in non-decreasing true `δ_min(V, Q)`, so every dominator of `V`
//! either precedes `V` or ties it; by transitivity, a preceding object that
//! was itself excluded (≥ k dominators) contributes its own dominators, all
//! of which also dominate `V` — hence counting dominators among *kept*
//! candidates suffices (the classic k-skyband argument).

use crate::config::{FilterConfig, Stats};
use crate::ctx::CheckCtx;
use crate::db::Database;
use crate::nnc::Candidate;
use crate::ops::Operator;
use crate::query::PreparedQuery;
use osd_geom::{mbr_dominates, mbr_dominates_strict};
use osd_obs::{Counter, Phase, PhaseTimer, QueryMetrics, Stopwatch};
use osd_rtree::Node;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a k-robust candidate computation.
#[derive(Debug)]
pub struct KnncResult {
    /// Kept candidates in emission order, each with the number of kept
    /// candidates dominating it (`< k`).
    pub candidates: Vec<(Candidate, usize)>,
    /// Cost counters.
    pub stats: Stats,
    /// Instrumentation registry of the query (all-zero no-op unless the
    /// `obs` feature is on).
    pub metrics: QueryMetrics,
}

impl KnncResult {
    /// Candidate ids in emission order.
    pub fn ids(&self) -> Vec<usize> {
        self.candidates.iter().map(|(c, _)| c.id).collect()
    }
}

enum Slot<'a> {
    Node(&'a Node<usize>),
    Object(usize),
}

struct HeapItem<'a> {
    key: f64,
    slot: Slot<'a>,
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        // Total-order equality, so `==` agrees with `Ord::cmp` below even
        // for NaN/±0.0 keys.
        self.key.total_cmp(&other.key).is_eq()
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.total_cmp(&self.key)
    }
}

/// Computes the k-robust NN candidates (`k = 1` reproduces
/// [`crate::nn_candidates`]).
///
/// ```
/// use osd_core::{k_nn_candidates, Database, FilterConfig, Operator, PreparedQuery};
/// use osd_geom::Point;
/// use osd_uncertain::UncertainObject;
///
/// // A dominance chain along a line: NNC_k is exactly the first k objects.
/// let objects: Vec<UncertainObject> = (0..5)
///     .map(|i| UncertainObject::uniform(vec![Point::from([2.0 + 3.0 * i as f64, 0.0])]))
///     .collect();
/// let db = Database::new(objects);
/// let q = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([0.0, 0.0])]));
/// let res = k_nn_candidates(&db, &q, Operator::PSd, 2, &FilterConfig::all());
/// let mut ids = res.ids();
/// ids.sort_unstable();
/// assert_eq!(ids, vec![0, 1]);
/// ```
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_nn_candidates(
    db: &Database,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
) -> KnncResult {
    assert!(k >= 1, "k must be at least 1");
    let prepare = PhaseTimer::start(Phase::Prepare);
    let mut ctx = CheckCtx::new(db, query, *cfg);
    let mut kept: Vec<(Candidate, usize)> = Vec::new();
    // MBR of each kept candidate, cached at emission for entry pruning.
    let mut kept_mbrs: Vec<osd_geom::Mbr> = Vec::new();

    let mut heap = BinaryHeap::new();
    if let Some(root) = db.global_tree().root() {
        heap.push(HeapItem {
            key: root.mbr().min_dist2(query.mbr()),
            slot: Slot::Node(root),
        });
    }
    let strict = !matches!(op, Operator::FPlusSd | Operator::FSd);
    ctx.metrics.incr_by(Counter::HeapPushes, heap.len() as u64);
    ctx.metrics.heap_depth(heap.len() as u64);
    ctx.metrics.record(prepare);
    let start = Stopwatch::start();

    while let Some(HeapItem { key, slot }) = heap.pop() {
        match slot {
            Slot::Object(v) => {
                let mut dominators = 0usize;
                let kept_ids: Vec<usize> = kept.iter().map(|(c, _)| c.id).collect();
                for u in kept_ids {
                    if ctx.dominates(op, u, v) {
                        dominators += 1;
                        if dominators >= k {
                            break;
                        }
                    }
                }
                if dominators < k {
                    kept.push((
                        Candidate {
                            id: v,
                            min_dist: key.max(0.0).sqrt(),
                            elapsed: start.elapsed(),
                        },
                        dominators,
                    ));
                    kept_mbrs.push(db.object(v).mbr().clone());
                    ctx.metrics.candidate_emitted(op.label());
                }
            }
            Slot::Node(node) => {
                let timer = PhaseTimer::start(Phase::RtreeDescent);
                ctx.stats.rtree_nodes_visited += 1;
                ctx.metrics.incr(Counter::RtreeNodeVisits);
                if !entry_pruned(&mut ctx, &kept_mbrs, k, strict, &node.mbr()) {
                    let depth_before = heap.len();
                    match node {
                        Node::Leaf(entries) => {
                            for e in entries {
                                if !entry_pruned(&mut ctx, &kept_mbrs, k, strict, &e.mbr) {
                                    let key = object_min_dist2(db, query, e.item, &mut ctx);
                                    heap.push(HeapItem {
                                        key,
                                        slot: Slot::Object(e.item),
                                    });
                                }
                            }
                        }
                        Node::Inner(children) => {
                            for c in children {
                                if !entry_pruned(&mut ctx, &kept_mbrs, k, strict, &c.mbr) {
                                    heap.push(HeapItem {
                                        key: c.mbr.min_dist2(query.mbr()),
                                        slot: Slot::Node(&c.node),
                                    });
                                }
                            }
                        }
                    }
                    let pushed = (heap.len() - depth_before) as u64;
                    ctx.metrics.incr_by(Counter::HeapPushes, pushed);
                    ctx.metrics.heap_depth(heap.len() as u64);
                }
                ctx.metrics.record(timer);
            }
        }
    }
    KnncResult {
        candidates: kept,
        stats: ctx.stats,
        metrics: ctx.metrics,
    }
}

/// Brute-force oracle: objects dominated by fewer than `k` others.
pub fn k_nn_candidates_bruteforce(
    db: &Database,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    let mut ctx = CheckCtx::new(db, query, *cfg);
    (0..db.len())
        .filter(|&v| {
            let dominators = (0..db.len())
                .filter(|&u| u != v && ctx.dominates(op, u, v))
                .count();
            dominators < k
        })
        .collect()
}

/// Subtree pruning: discard when at least `k` kept candidates MBR-dominate
/// the entry (every object inside then has ≥ k dominators). `kept_mbrs`
/// holds the kept candidates' MBRs, cached at emission.
fn entry_pruned(
    ctx: &mut CheckCtx<'_>,
    kept_mbrs: &[osd_geom::Mbr],
    k: usize,
    strict: bool,
    e_mbr: &osd_geom::Mbr,
) -> bool {
    if !ctx.cfg.mbr_validation {
        return false;
    }
    let mut dominators = 0usize;
    for u_mbr in kept_mbrs {
        ctx.stats.mbr_checks += 1;
        let dominated = if strict {
            mbr_dominates_strict(u_mbr, e_mbr, ctx.query.mbr())
        } else {
            mbr_dominates(u_mbr, e_mbr, ctx.query.mbr())
        };
        if dominated {
            dominators += 1;
            if dominators >= k {
                return true;
            }
        }
    }
    false
}

/// Exact squared `δ_min(V, Q)` — same kernel/scalar split (and the same
/// bit-identity argument) as [`crate::nnc::ProgressiveNnc`]'s helper.
fn object_min_dist2(db: &Database, query: &PreparedQuery, v: usize, ctx: &mut CheckCtx<'_>) -> f64 {
    let tree = db.local_tree(v);
    let mut best = f64::INFINITY;
    let mut visits = 0u64;
    if ctx.cfg.kernels {
        ctx.stats.instance_comparisons += query.len() as u64;
        if let Some(d2) = tree.min_dist2_multi(query.instance_points(), &mut visits) {
            let d = d2.sqrt();
            best = d * d;
        }
    } else {
        for q in query.instance_points() {
            ctx.stats.instance_comparisons += 1;
            if let Some((_, d)) = tree.nearest_counting(q, &mut visits) {
                best = best.min(d * d);
            }
        }
    }
    ctx.stats.rtree_nodes_visited += visits;
    ctx.metrics.incr_by(Counter::RtreeNodeVisits, visits);
    best
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::nnc::nn_candidates;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn line_db() -> Database {
        // Objects at increasing distance along a line: each dominates all
        // the ones after it.
        Database::new(
            (0..6)
                .map(|i| {
                    let x = 2.0 + 3.0 * i as f64;
                    obj(&[(x, 0.0), (x + 0.5, 0.0)])
                })
                .collect(),
        )
    }

    #[test]
    fn k1_equals_nnc() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        for op in Operator::ALL {
            let k1 = k_nn_candidates(&db, &q, op, 1, &FilterConfig::all());
            let nnc = nn_candidates(&db, &q, op, &FilterConfig::all());
            assert_eq!(k1.ids(), nnc.ids(), "k=1 must equal NNC for {op:?}");
        }
    }

    #[test]
    fn chain_grows_one_per_k() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        // On a dominance chain, NNC_k is exactly the first k objects.
        for k in 1..=6 {
            let res = k_nn_candidates(&db, &q, Operator::SSd, k, &FilterConfig::all());
            let mut ids = res.ids();
            ids.sort_unstable();
            assert_eq!(ids, (0..k).collect::<Vec<_>>(), "k = {k}");
        }
    }

    #[test]
    fn matches_bruteforce_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let objects: Vec<UncertainObject> = (0..30)
            .map(|_| {
                let cx = rng.gen_range(0.0..100.0);
                let cy = rng.gen_range(0.0..100.0);
                obj(&[
                    (cx, cy),
                    (cx + rng.gen_range(0.0..5.0), cy + rng.gen_range(0.0..5.0)),
                ])
            })
            .collect();
        let db = Database::with_fanouts(objects, 4, 2);
        let q = PreparedQuery::new(obj(&[(50.0, 50.0), (52.0, 48.0)]));
        for op in Operator::ALL {
            for k in [1usize, 2, 3, 5] {
                let mut algo = k_nn_candidates(&db, &q, op, k, &FilterConfig::all()).ids();
                algo.sort_unstable();
                let brute = k_nn_candidates_bruteforce(&db, &q, op, k, &FilterConfig::all());
                assert_eq!(algo, brute, "k-NNC mismatch for {op:?}, k = {k}");
            }
        }
    }

    #[test]
    fn monotone_in_k() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut prev: Vec<usize> = Vec::new();
        for k in 1..=6 {
            let mut ids = k_nn_candidates(&db, &q, Operator::PSd, k, &FilterConfig::all()).ids();
            ids.sort_unstable();
            assert!(
                prev.iter().all(|i| ids.contains(i)),
                "NNC_k must grow with k"
            );
            prev = ids;
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_rejected() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let _ = k_nn_candidates(&db, &q, Operator::SSd, 0, &FilterConfig::all());
    }
}
