//! k-robust NN candidates — a skyband-style extension of Definition 6.
//!
//! `NNC_k(O, Q, SD)` contains every object dominated by **fewer than `k`**
//! other objects (so `NNC_1` is the paper's NNC). The set is useful when a
//! user wants a shortlist resilient to removing up to `k − 1` objects: if
//! any `k − 1` candidates are taken away (sold out, offline, …), the NN
//! under every covered function is still inside the set.
//!
//! Correctness of the traversal argument extends from Algorithm 1: objects
//! arrive in non-decreasing true `δ_min(V, Q)`, so every dominator of `V`
//! either precedes `V` or ties it; by transitivity, a preceding object that
//! was itself excluded (≥ k dominators) contributes its own dominators, all
//! of which also dominate `V` — hence counting dominators among *kept*
//! candidates suffices (the classic k-skyband argument).

use crate::config::{FilterConfig, Stats};
use crate::ctx::CheckCtx;
#[cfg(test)]
use crate::db::Database;
use crate::index::SpatialIndex;
use crate::nnc::Candidate;
use crate::ops::Operator;
use crate::query::PreparedQuery;
use crate::warm::{WarmPool, WarmView};
use osd_geom::{mbr_dominates, mbr_dominates_strict};
use osd_obs::{AttrValue, Counter, Phase, PhaseTimer, QueryMetrics, SpanId, Stopwatch, TraceData};
use osd_rtree::Node;
use std::borrow::{Borrow, Cow};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Result of a k-robust candidate computation.
#[derive(Debug)]
pub struct KnncResult {
    /// Kept candidates in emission order, each with the number of kept
    /// candidates dominating it (`< k`).
    pub candidates: Vec<(Candidate, usize)>,
    /// Cost counters.
    pub stats: Stats,
    /// Instrumentation registry of the query (all-zero no-op unless the
    /// `obs` feature is on).
    pub metrics: QueryMetrics,
    /// Structured trace tree of the query — present only when the filter
    /// configuration requested tracing *and* the `obs` feature is on.
    pub trace: Option<TraceData>,
}

impl KnncResult {
    /// Candidate ids in emission order.
    pub fn ids(&self) -> Vec<usize> {
        self.candidates.iter().map(|(c, _)| c.id).collect()
    }
}

enum Slot<'a> {
    /// A tree node tagged with its source shard (0 on a flat database).
    Node(&'a Node<usize>, usize),
    Object(usize),
}

struct HeapItem<'a> {
    key: f64,
    slot: Slot<'a>,
}

impl HeapItem<'_> {
    /// Tie-break rank at equal keys: nodes before objects, then lower
    /// object id (same contract — and rationale — as the NNC heap).
    fn rank(&self) -> (u8, usize) {
        match self.slot {
            Slot::Node(..) => (0, 0),
            Slot::Object(id) => (1, id),
        }
    }
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        // Defined via `Ord::cmp` so `==` agrees with the total order even
        // for NaN/±0.0 keys.
        self.cmp(other).is_eq()
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.rank().cmp(&self.rank()))
    }
}

/// Computes the k-robust NN candidates (`k = 1` reproduces
/// [`crate::nn_candidates`]).
///
/// ```
/// use osd_core::{k_nn_candidates, Database, FilterConfig, Operator, PreparedQuery};
/// use osd_geom::Point;
/// use osd_uncertain::UncertainObject;
///
/// // A dominance chain along a line: NNC_k is exactly the first k objects.
/// let objects: Vec<UncertainObject> = (0..5)
///     .map(|i| UncertainObject::uniform(vec![Point::from([2.0 + 3.0 * i as f64, 0.0])]))
///     .collect();
/// let db = Database::new(objects);
/// let q = PreparedQuery::new(UncertainObject::uniform(vec![Point::from([0.0, 0.0])]));
/// let res = k_nn_candidates(&db, &q, Operator::PSd, 2, &FilterConfig::all());
/// let mut ids = res.ids();
/// ids.sort_unstable();
/// assert_eq!(ids, vec![0, 1]);
/// ```
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_nn_candidates(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
) -> KnncResult {
    k_nn_with(db, query, op, k, cfg, None)
}

/// [`k_nn_candidates`] resolving snapshot-pure cache misses through
/// `warm` (see `core::warm`). Candidate set, `min_dist` bits, order,
/// dominator counts and `Stats` are bit-identical to the cold path.
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_nn_candidates_warm(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
    warm: &WarmPool,
) -> KnncResult {
    k_nn_with(db, query, op, k, cfg, Some(warm.view_for(db, query)))
}

fn k_nn_with(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
    warm: Option<WarmView>,
) -> KnncResult {
    assert!(k >= 1, "k must be at least 1");
    let prepare = PhaseTimer::start(Phase::Prepare);
    let mut ctx = CheckCtx::with_warm(db, query, *cfg, warm);
    let prep = ctx.trace.open("prepare");
    let mut kept: Vec<(Candidate, usize)> = Vec::new();
    // MBR of each kept candidate, cached at emission for entry pruning
    // (`Arc`ed so a warm run shares the snapshot-scoped copy).
    let mut kept_mbrs: Vec<Arc<osd_geom::Mbr>> = Vec::new();

    let mut heap = BinaryHeap::new();
    // Seed every shard root — one best-first descent of the whole forest
    // (see `ProgressiveNnc::new` for the shared-bound rationale).
    for shard in 0..db.shard_count() {
        if let Some(root) = db.shard_tree(shard).root() {
            heap.push(HeapItem {
                key: root.mbr().min_dist2(query.mbr()),
                slot: Slot::Node(root, shard),
            });
        }
    }
    let strict = !matches!(op, Operator::FPlusSd | Operator::FSd);
    ctx.metrics.incr_by(Counter::HeapPushes, heap.len() as u64);
    ctx.metrics.heap_depth(heap.len() as u64);
    if prep != SpanId::NONE {
        ctx.trace
            .attr(prep, "shards", AttrValue::U64(db.shard_count() as u64));
        ctx.trace
            .attr(prep, "seeds", AttrValue::U64(heap.len() as u64));
        ctx.trace.attr(prep, "k", AttrValue::U64(k as u64));
    }
    ctx.trace.close(prep);
    ctx.metrics.record(prepare);
    let start = Stopwatch::start();

    while let Some(HeapItem { key, slot }) = heap.pop() {
        match slot {
            Slot::Object(v) => {
                let mut dominators = 0usize;
                let kept_ids: Vec<usize> = kept.iter().map(|(c, _)| c.id).collect();
                for u in kept_ids {
                    if ctx.dominates(op, u, v) {
                        dominators += 1;
                        if dominators >= k {
                            break;
                        }
                    }
                }
                if dominators < k {
                    kept.push((
                        Candidate {
                            id: v,
                            min_dist: key.max(0.0).sqrt(),
                            elapsed: start.elapsed(),
                        },
                        dominators,
                    ));
                    let mbr = match ctx.cache.warm() {
                        Some(w) => w.object_mbr(db, v, &mut ctx.metrics),
                        None => Arc::new(db.object(v).mbr().clone()),
                    };
                    kept_mbrs.push(mbr);
                    ctx.metrics.candidate_emitted(op.label());
                    if ctx.trace.is_active() {
                        let event = ctx.trace.instant("candidate");
                        ctx.trace.attr(event, "id", AttrValue::U64(v as u64));
                        ctx.trace
                            .attr(event, "min_dist", AttrValue::F64(key.max(0.0).sqrt()));
                        ctx.trace
                            .attr(event, "dominators", AttrValue::U64(dominators as u64));
                    }
                }
            }
            Slot::Node(node, shard) => {
                let timer = PhaseTimer::start(Phase::RtreeDescent);
                let span = ctx.trace.open("rtree-descent");
                if span != SpanId::NONE {
                    ctx.trace.attr(span, "shard", AttrValue::U64(shard as u64));
                    ctx.trace.attr(span, "key", AttrValue::F64(key));
                }
                ctx.stats.rtree_nodes_visited += 1;
                ctx.metrics.incr(Counter::RtreeNodeVisits);
                ctx.metrics.shard_visit(shard);
                if !entry_pruned(&mut ctx, &kept_mbrs, k, strict, &node.mbr()) {
                    let depth_before = heap.len();
                    // per-shard descent: begin
                    match node {
                        Node::Leaf(entries) => {
                            for e in entries {
                                if !entry_pruned(&mut ctx, &kept_mbrs, k, strict, &e.mbr) {
                                    let key = object_min_dist2(db, query, e.item, &mut ctx);
                                    heap.push(HeapItem {
                                        key,
                                        slot: Slot::Object(e.item),
                                    });
                                }
                            }
                        }
                        Node::Inner(children) => {
                            for c in children {
                                if !entry_pruned(&mut ctx, &kept_mbrs, k, strict, &c.mbr) {
                                    heap.push(HeapItem {
                                        key: c.mbr.min_dist2(query.mbr()),
                                        slot: Slot::Node(&c.node, shard),
                                    });
                                }
                            }
                        }
                    }
                    // per-shard descent: end
                    let pushed = (heap.len() - depth_before) as u64;
                    ctx.metrics.incr_by(Counter::HeapPushes, pushed);
                    ctx.metrics.heap_depth(heap.len() as u64);
                    ctx.trace.attr(span, "pushed", AttrValue::U64(pushed));
                } else {
                    ctx.trace.attr(
                        span,
                        "pruned",
                        AttrValue::Str(Cow::Borrowed("mbr-dominated")),
                    );
                }
                ctx.trace.close(span);
                ctx.metrics.record(timer);
            }
        }
    }
    if let Some(w) = ctx.cache.warm() {
        w.record_gauges(&mut ctx.metrics);
    }
    let mut trace = ctx.trace.finish();
    if let Some(t) = trace.as_mut() {
        t.label = Cow::Borrowed(op.label());
    }
    KnncResult {
        candidates: kept,
        stats: ctx.stats,
        metrics: ctx.metrics,
        trace,
    }
}

/// Scatter-gather k-NNC over a sharded index: each shard runs the full
/// k-skyband search independently (up to `threads` scoped workers), then a
/// sequential gather re-filters the union in `(δ_min, id)` order,
/// recounting dominators among the globally kept candidates.
///
/// Identical candidate set (ids, `min_dist` bits, order, dominator counts)
/// to [`k_nn_candidates`] over the same index: a union candidate with ≥ k
/// same-shard kept dominators would — by the distributed k-skyband
/// argument — also have ≥ k globally kept dominators, so per-shard
/// exclusion never removes a global candidate; the gather recount then
/// applies exactly the merged traversal's keep test. Traversal counters
/// differ (no shared prune bound across the independent descents).
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_nn_candidates_scatter(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
    threads: usize,
) -> KnncResult {
    assert!(k >= 1, "k must be at least 1");
    let shards = db.shard_count();
    if shards <= 1 {
        return k_nn_candidates(db, query, op, k, cfg);
    }
    let parts = crate::nnc::scatter_over_shards(db, threads, |shard| {
        k_nn_candidates(&crate::index::ShardSlice::new(db, shard), query, op, k, cfg)
    });
    let mut union: Vec<Candidate> = parts
        .iter()
        .flat_map(|r| r.candidates.iter().map(|(c, _)| c.clone()))
        .collect();
    union.sort_by(|a, b| a.min_dist.total_cmp(&b.min_dist).then(a.id.cmp(&b.id)));
    let mut ctx = CheckCtx::new(db, query, *cfg);
    // Scatter parts appear in the gather trace as one point event each —
    // same folding as `nn_candidates_scatter`.
    for (shard, r) in parts.iter().enumerate() {
        if !ctx.trace.is_active() {
            break;
        }
        let event = ctx.trace.instant("scatter-part");
        ctx.trace.attr(event, "shard", AttrValue::U64(shard as u64));
        ctx.trace.attr(
            event,
            "candidates",
            AttrValue::U64(r.candidates.len() as u64),
        );
        if let Some(t) = &r.trace {
            ctx.trace.attr(event, "part_ns", AttrValue::U64(t.total_ns));
        }
    }
    let gather = ctx.trace.open("gather");
    let union_len = union.len();
    let mut kept: Vec<(Candidate, usize)> = Vec::with_capacity(union.len());
    for c in union {
        let mut dominators = 0usize;
        for (kc, _) in &kept {
            if ctx.dominates(op, kc.id, c.id) {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            ctx.metrics.candidate_emitted(op.label());
            kept.push((c, dominators));
        }
    }
    if gather != SpanId::NONE {
        ctx.trace
            .attr(gather, "union", AttrValue::U64(union_len as u64));
        ctx.trace
            .attr(gather, "kept", AttrValue::U64(kept.len() as u64));
    }
    ctx.trace.close(gather);
    let mut stats = Stats::default();
    let mut metrics = QueryMetrics::new();
    for r in &parts {
        stats.merge(&r.stats);
        metrics.merge(&r.metrics);
    }
    stats.merge(&ctx.stats);
    metrics.merge(&ctx.metrics);
    let mut trace = ctx.trace.finish();
    if let Some(t) = trace.as_mut() {
        t.label = Cow::Borrowed(op.label());
    }
    KnncResult {
        candidates: kept,
        stats,
        metrics,
        trace,
    }
}

/// Brute-force oracle: objects dominated by fewer than `k` others.
pub fn k_nn_candidates_bruteforce(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    k: usize,
    cfg: &FilterConfig,
) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    let mut ctx = CheckCtx::new(db, query, *cfg);
    (0..db.len())
        .filter(|&v| {
            let dominators = (0..db.len())
                .filter(|&u| u != v && ctx.dominates(op, u, v))
                .count();
            dominators < k
        })
        .collect()
}

/// Subtree pruning: discard when at least `k` kept candidates MBR-dominate
/// the entry (every object inside then has ≥ k dominators). `kept_mbrs`
/// holds the kept candidates' MBRs, cached at emission.
fn entry_pruned<M: Borrow<osd_geom::Mbr>>(
    ctx: &mut CheckCtx<'_>,
    kept_mbrs: &[M],
    k: usize,
    strict: bool,
    e_mbr: &osd_geom::Mbr,
) -> bool {
    if !ctx.cfg.mbr_validation {
        return false;
    }
    let mut dominators = 0usize;
    for u_mbr in kept_mbrs {
        let u_mbr = u_mbr.borrow();
        ctx.stats.mbr_checks += 1;
        let dominated = if strict {
            mbr_dominates_strict(u_mbr, e_mbr, ctx.query.mbr())
        } else {
            mbr_dominates(u_mbr, e_mbr, ctx.query.mbr())
        };
        if dominated {
            dominators += 1;
            if dominators >= k {
                return true;
            }
        }
    }
    false
}

/// Exact squared `δ_min(V, Q)` — same kernel/scalar split (and the same
/// bit-identity argument) as [`crate::nnc::ProgressiveNnc`]'s helper.
fn object_min_dist2(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    v: usize,
    ctx: &mut CheckCtx<'_>,
) -> f64 {
    let tree = db.local_tree(v);
    let mut best = f64::INFINITY;
    let mut visits = 0u64;
    if ctx.cfg.kernels {
        ctx.stats.instance_comparisons += query.len() as u64;
        if let Some(d2) = tree.min_dist2_multi(query.instance_points(), &mut visits) {
            let d = d2.sqrt();
            best = d * d;
        }
    } else {
        for q in query.instance_points() {
            ctx.stats.instance_comparisons += 1;
            if let Some((_, d)) = tree.nearest_counting(q, &mut visits) {
                best = best.min(d * d);
            }
        }
    }
    ctx.stats.rtree_nodes_visited += visits;
    ctx.metrics.incr_by(Counter::RtreeNodeVisits, visits);
    best
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::nnc::nn_candidates;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn line_db() -> Database {
        // Objects at increasing distance along a line: each dominates all
        // the ones after it.
        Database::new(
            (0..6)
                .map(|i| {
                    let x = 2.0 + 3.0 * i as f64;
                    obj(&[(x, 0.0), (x + 0.5, 0.0)])
                })
                .collect(),
        )
    }

    #[test]
    fn k1_equals_nnc() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        for op in Operator::ALL {
            let k1 = k_nn_candidates(&db, &q, op, 1, &FilterConfig::all());
            let nnc = nn_candidates(&db, &q, op, &FilterConfig::all());
            assert_eq!(k1.ids(), nnc.ids(), "k=1 must equal NNC for {op:?}");
        }
    }

    #[test]
    fn chain_grows_one_per_k() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        // On a dominance chain, NNC_k is exactly the first k objects.
        for k in 1..=6 {
            let res = k_nn_candidates(&db, &q, Operator::SSd, k, &FilterConfig::all());
            let mut ids = res.ids();
            ids.sort_unstable();
            assert_eq!(ids, (0..k).collect::<Vec<_>>(), "k = {k}");
        }
    }

    #[test]
    fn matches_bruteforce_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let objects: Vec<UncertainObject> = (0..30)
            .map(|_| {
                let cx = rng.gen_range(0.0..100.0);
                let cy = rng.gen_range(0.0..100.0);
                obj(&[
                    (cx, cy),
                    (cx + rng.gen_range(0.0..5.0), cy + rng.gen_range(0.0..5.0)),
                ])
            })
            .collect();
        let db = Database::with_fanouts(objects, 4, 2);
        let q = PreparedQuery::new(obj(&[(50.0, 50.0), (52.0, 48.0)]));
        for op in Operator::ALL {
            for k in [1usize, 2, 3, 5] {
                let mut algo = k_nn_candidates(&db, &q, op, k, &FilterConfig::all()).ids();
                algo.sort_unstable();
                let brute = k_nn_candidates_bruteforce(&db, &q, op, k, &FilterConfig::all());
                assert_eq!(algo, brute, "k-NNC mismatch for {op:?}, k = {k}");
            }
        }
    }

    #[test]
    fn monotone_in_k() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let mut prev: Vec<usize> = Vec::new();
        for k in 1..=6 {
            let mut ids = k_nn_candidates(&db, &q, Operator::PSd, k, &FilterConfig::all()).ids();
            ids.sort_unstable();
            assert!(
                prev.iter().all(|i| ids.contains(i)),
                "NNC_k must grow with k"
            );
            prev = ids;
        }
    }

    #[test]
    fn scatter_on_flat_database_matches_merged() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        for k in [1usize, 2, 4] {
            let merged = k_nn_candidates(&db, &q, Operator::SSd, k, &FilterConfig::all());
            let scattered =
                k_nn_candidates_scatter(&db, &q, Operator::SSd, k, &FilterConfig::all(), 4);
            assert_eq!(merged.ids(), scattered.ids(), "k = {k}");
            assert_eq!(
                merged.stats, scattered.stats,
                "k = {k} (one shard: same path)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_rejected() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let _ = k_nn_candidates(&db, &q, Operator::SSd, 0, &FilterConfig::all());
    }
}
