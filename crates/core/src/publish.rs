//! Epoch publishing: snapshot-swapped concurrent access to a mutable
//! index.
//!
//! A [`PublishedIndex`] owns a chain of immutable snapshots of an index.
//! Readers [`pin`](PublishedIndex::pin) the current snapshot — an `Arc`
//! bump under a briefly-held read lock — and keep querying it for as long
//! as they like; they never observe a partially-applied mutation and never
//! block a writer. Writers [`publish`](PublishedIndex::publish): clone the
//! current snapshot *outside* any lock readers touch, mutate the private
//! clone, and atomically swap it in. The columnar store is shared
//! structurally between consecutive snapshots (`Arc`-backed copy-on-write
//! via `osd_uncertain::epoch`), so a snapshot clone is cheap until the
//! mutation actually touches the instance data.
//!
//! One writer at a time: publishes serialise on a writer mutex, so the
//! epoch sequence is linear and `changes_since` deltas compose.

use crate::db::DbError;
use crate::index::SpatialIndex;
use crate::warm::WarmPool;
use osd_obs::{AttrValue, FlightRecorder, QueryTrace, SpanId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Span arena capacity of a mutation trace — a publish records a handful
/// of spans (clone / splice / swap), far below a query's event volume.
const MUTATION_TRACE_EVENTS: usize = 16;

/// A concurrently readable, snapshot-published index.
///
/// `D` is any clonable [`SpatialIndex`] — in this crate,
/// [`FlatDatabase`](crate::FlatDatabase) and
/// [`ShardedDatabase`](crate::ShardedDatabase).
#[derive(Debug)]
pub struct PublishedIndex<D> {
    /// The current snapshot. The lock is held only for the duration of an
    /// `Arc` clone (readers) or an `Arc` store (the publishing writer) —
    /// never across a query or a mutation.
    current: RwLock<Arc<D>>,
    /// Serialises writers so snapshot construction happens off every
    /// reader-visible lock.
    writer: Mutex<()>,
    /// Flight recorder for mutation traces — `None` (the default) records
    /// nothing. Behind its own mutex: recording happens on the writer path
    /// only, and taking the recorder never blocks readers.
    recorder: Mutex<Option<FlightRecorder>>,
    /// Publishes attempted — the `seq` source for mutation traces, so the
    /// recorder's retention key stays unique across the writer stream.
    publishes: AtomicU64,
    /// Snapshot-scoped warm cache pool following this publish chain. A
    /// published index is exactly "one snapshot chain", the granularity
    /// `core::warm`'s incremental invalidation is correct at, so owning the
    /// pool here gives every reader the right sharing scope for free.
    warm: WarmPool,
}

impl<D: SpatialIndex + Clone> PublishedIndex<D> {
    /// Publishes `db` as the first snapshot.
    pub fn new(db: D) -> Self {
        PublishedIndex {
            current: RwLock::new(Arc::new(db)),
            writer: Mutex::new(()),
            recorder: Mutex::new(None),
            publishes: AtomicU64::new(0),
            warm: WarmPool::new(),
        }
    }

    /// The warm-cache pool that follows this publish chain. Pass it to
    /// [`QueryEngine::with_warm`](crate::QueryEngine::with_warm) (or the
    /// `*_warm` search entry points) together with a pinned snapshot:
    /// queries over the current epoch share one [`crate::WarmCache`], and a
    /// publish rolls the pool forward incrementally on next use.
    pub fn warm_pool(&self) -> &WarmPool {
        &self.warm
    }

    /// Installs a flight recorder for mutation traces: every subsequent
    /// [`publish`](PublishedIndex::publish) records a `mutate` trace with
    /// `clone` → `splice` → `swap` children. Inert (the recorder stays
    /// empty) unless the `obs` feature is on. Replaces any previous
    /// recorder.
    pub fn enable_tracing(&self, capacity: usize, slow_threshold_ns: u64, slow_capacity: usize) {
        *self.recorder.lock().unwrap_or_else(PoisonError::into_inner) = Some(FlightRecorder::new(
            capacity,
            slow_threshold_ns,
            slow_capacity,
        ));
    }

    /// Removes and returns the mutation recorder (if tracing was enabled),
    /// stopping further recording.
    pub fn take_recorder(&self) -> Option<FlightRecorder> {
        self.recorder
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Pins the current snapshot. The returned `Arc` stays valid — and
    /// bit-stable — for as long as the caller holds it, regardless of
    /// concurrent publishes.
    pub fn pin(&self) -> Arc<D> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }

    /// Builds the next snapshot by applying `mutate` to a private clone of
    /// the current one, then atomically swaps it in.
    ///
    /// If `mutate` fails, nothing is published: readers keep seeing the
    /// old snapshot and the clone is dropped.
    ///
    /// # Errors
    /// Whatever `mutate` returns — typically [`DbError::Dead`],
    /// [`DbError::DimensionMismatch`] or [`DbError::Empty`] from the
    /// `try_*` mutation family.
    pub fn publish<R>(
        &self,
        mutate: impl FnOnce(&mut D) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let _writing = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let tracing = self
            .recorder
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some();
        let mut trace = if tracing {
            QueryTrace::start("mutate", MUTATION_TRACE_EVENTS)
        } else {
            QueryTrace::off()
        };
        // Clone off-lock: readers pin and query the old snapshot while the
        // next one is under construction.
        let span = trace.open("clone");
        let mut next = D::clone(&self.pin());
        trace.close(span);
        let span = trace.open("splice");
        let out = mutate(&mut next);
        if span != SpanId::NONE {
            trace.attr(span, "ok", AttrValue::U64(out.is_ok() as u64));
        }
        trace.close(span);
        let seq = self.publishes.fetch_add(1, Ordering::Relaxed);
        let out = out.inspect(|_| {
            let span = trace.open("swap");
            let epoch = next.epoch();
            *self.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(next);
            trace.attr(span, "epoch", AttrValue::U64(epoch));
            trace.close(span);
        });
        if let Some(mut t) = trace.finish() {
            t.seq = seq;
            if let Some(rec) = self
                .recorder
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .as_mut()
            {
                rec.record(t);
            }
        }
        out
    }

    /// Publishes an insert; returns the new object's logical id.
    ///
    /// # Errors
    /// See [`SpatialIndex::try_insert`].
    pub fn insert(&self, object: osd_uncertain::UncertainObject) -> Result<usize, DbError> {
        self.publish(|db| db.try_insert(object))
    }

    /// Publishes a delete of logical id `id`.
    ///
    /// # Errors
    /// See [`SpatialIndex::try_delete`].
    pub fn delete(&self, id: usize) -> Result<(), DbError> {
        self.publish(|db| db.try_delete(id))
    }

    /// Publishes an in-place update of logical id `id`.
    ///
    /// # Errors
    /// See [`SpatialIndex::try_update`].
    pub fn update(&self, id: usize, object: osd_uncertain::UncertainObject) -> Result<(), DbError> {
        self.publish(|db| db.try_update(id, object))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FilterConfig;
    use crate::continuous::{ContinuousNnc, Repair};
    use crate::db::Database;
    use crate::nnc::nn_candidates;
    use crate::ops::Operator;
    use crate::query::PreparedQuery;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn seed() -> Database {
        Database::new(
            (0..4)
                .map(|i| {
                    let x = 2.0 + 3.0 * i as f64;
                    obj(&[(x, 0.0), (x + 0.5, 0.0)])
                })
                .collect(),
        )
    }

    #[test]
    fn pinned_snapshots_survive_publishes() {
        let published = PublishedIndex::new(seed());
        let before = published.pin();
        let id = published
            .insert(obj(&[(0.5, 0.0)]))
            .expect("insert publishes");
        assert_eq!(id, 4);
        // The pinned snapshot is bit-frozen: it neither sees the insert
        // nor changes epoch.
        assert_eq!(before.len(), 4);
        assert_eq!(before.epoch(), 0);
        let after = published.pin();
        assert_eq!(after.len(), 5);
        assert_eq!(after.epoch(), 1);
        assert!(!Arc::ptr_eq(&before, &after));
    }

    #[test]
    fn failed_mutations_publish_nothing() {
        let published = PublishedIndex::new(seed());
        let epoch_before = published.epoch();
        assert!(matches!(
            published.delete(17),
            Err(DbError::Dead { object: 17 })
        ));
        assert_eq!(published.epoch(), epoch_before, "no snapshot was swapped");
    }

    #[test]
    fn concurrent_readers_and_one_writer() {
        let published = Arc::new(PublishedIndex::new(seed()));
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        std::thread::scope(|scope| {
            let writer = {
                let published = Arc::clone(&published);
                scope.spawn(move || {
                    for i in 0..20 {
                        let x = 1.0 + i as f64 * 0.1;
                        let id = published
                            .insert(obj(&[(x, 0.0), (x + 0.25, 0.0)]))
                            .expect("insert publishes");
                        if i % 3 == 0 {
                            published.delete(id).expect("fresh id is live");
                        }
                    }
                })
            };
            for _ in 0..4 {
                let published = Arc::clone(&published);
                let q = q.clone();
                scope.spawn(move || {
                    for _ in 0..10 {
                        let snap = published.pin();
                        // Every pinned snapshot is internally consistent:
                        // a query runs to completion with sane results.
                        let r = nn_candidates(&*snap, &q, Operator::PSd, &FilterConfig::all());
                        assert!(!r.candidates.is_empty());
                        assert!(r.candidates.iter().all(|c| snap.is_live(c.id)));
                    }
                });
            }
            writer.join().expect("writer thread");
        });
        assert_eq!(published.epoch(), 20 + 7, "20 inserts + 7 deletes");
    }

    #[test]
    fn continuous_handle_follows_the_published_chain() {
        let published = PublishedIndex::new(seed());
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let snap = published.pin();
        let mut handle = ContinuousNnc::new(&*snap, q, Operator::PSd, FilterConfig::all());
        drop(snap);
        published
            .insert(obj(&[(0.5, 0.0), (0.75, 0.0)]))
            .expect("insert publishes");
        let snap = published.pin();
        assert!(matches!(handle.refresh(&*snap), Repair::Incremental { .. }));
        assert_eq!(handle.epoch(), snap.epoch());
        let full = nn_candidates(&*snap, handle.query(), Operator::PSd, &FilterConfig::all());
        assert_eq!(handle.ids(), full.ids());
    }

    #[test]
    fn mutation_traces_reach_the_recorder() {
        let published = PublishedIndex::new(seed());
        published.enable_tracing(8, 0, 4);
        let id = published
            .insert(obj(&[(0.5, 0.0)]))
            .expect("insert publishes");
        published.delete(id).expect("fresh id is live");
        assert!(published.delete(99).is_err(), "dead delete fails");
        let recorder = published.take_recorder().expect("tracing was enabled");
        assert!(
            published.take_recorder().is_none(),
            "taking the recorder stops recording"
        );
        if !QueryTrace::enabled() {
            assert_eq!(recorder.recorded(), 0, "obs off: tracing is inert");
            return;
        }
        assert_eq!(recorder.recorded(), 3, "every publish attempt traced");
        let last = recorder.last(3);
        assert_eq!(
            last.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![2, 1, 0],
            "publish counter stamps unique seqs, newest first"
        );
        for t in &last {
            assert_eq!(t.label, "mutate");
            assert_eq!(t.count("clone"), 1);
            assert_eq!(t.count("splice"), 1);
        }
        // The failed delete (seq 2) never reaches the swap.
        assert_eq!(last[0].count("swap"), 0);
        assert_eq!(last[1].count("swap"), 1);
        assert_eq!(last[2].count("swap"), 1);
    }

    #[test]
    fn published_index_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PublishedIndex<Database>>();
        assert_send_sync::<PublishedIndex<crate::sharded::ShardedDatabase>>();
    }
}
