//! Brute-force NNC computation — the `O(n²)` reference implementation.
//!
//! Definition 6 directly: an object is a candidate iff no other object
//! dominates it. Used as the correctness oracle for Algorithm 1 and as the
//! `BF` baseline of the Appendix C ablation.

use crate::config::{FilterConfig, Stats};
use crate::ctx::CheckCtx;
use crate::index::SpatialIndex;
use crate::ops::Operator;
use crate::query::PreparedQuery;

/// Computes `NNC(O, Q, SD)` by checking every object against every other.
/// Returns candidate ids in ascending id order plus the accumulated
/// counters.
pub fn nn_candidates_bruteforce(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> (Vec<usize>, Stats) {
    let mut ctx = CheckCtx::new(db, query, *cfg);
    let mut out = Vec::new();
    // Tombstoned ids are skipped: the dominance relation ranges over the
    // live objects of the pinned snapshot only.
    'outer: for v in (0..db.len()).filter(|&v| db.is_live(v)) {
        for u in (0..db.len()).filter(|&u| db.is_live(u)) {
            if u != v && ctx.dominates(op, u, v) {
                continue 'outer;
            }
        }
        out.push(v);
    }
    (out, ctx.stats)
}
