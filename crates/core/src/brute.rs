//! Brute-force NNC computation — the `O(n²)` reference implementation.
//!
//! Definition 6 directly: an object is a candidate iff no other object
//! dominates it. Used as the correctness oracle for Algorithm 1 and as the
//! `BF` baseline of the Appendix C ablation.

use crate::cache::DominanceCache;
use crate::config::{FilterConfig, Stats};
use crate::db::Database;
use crate::ops::{dominates, Operator};
use crate::query::PreparedQuery;

/// Computes `NNC(O, Q, SD)` by checking every object against every other.
/// Returns candidate ids in ascending id order plus the accumulated
/// counters.
pub fn nn_candidates_bruteforce(
    db: &Database,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> (Vec<usize>, Stats) {
    let mut stats = Stats::default();
    let mut cache = DominanceCache::new(db.len());
    let mut out = Vec::new();
    'outer: for v in 0..db.len() {
        for u in 0..db.len() {
            if u != v && dominates(op, db, u, v, query, cfg, &mut cache, &mut stats) {
                continue 'outer;
            }
        }
        out.push(v);
    }
    (out, stats)
}
