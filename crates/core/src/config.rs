//! Filtering configuration and cost counters.
//!
//! §5.1 of the paper layers four families of filtering techniques on the
//! brute-force dominance checks; Appendix C ablates them one by one
//! (Figure 16) with the configurations BF, L, LP, LG, LGP and All. This
//! module exposes those switches and the counters the ablation reports.

/// Switches for the dominance-check filtering techniques of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Level-by-level pruning/validation over local R-tree nodes (the `L`
    /// component, §5.1.2).
    pub level_by_level: bool,
    /// Statistic-based pruning on min/mean/max (Theorem 11) and cover-based
    /// pruning through the operator hierarchy (the `P` component).
    pub pruning: bool,
    /// Geometric optimisations: restricting `⪯_Q` tests to the convex-hull
    /// vertices of the query, the in-hull early reject, and the
    /// distance-space mapping (the `G` component).
    pub geometric: bool,
    /// Cover-based validation via the exact MBR dominance test (Theorem 4).
    pub mbr_validation: bool,
    /// Blocked row kernels and per-traversal memoization on the hot paths:
    /// the multi-point pruned `δ_min` descent, the batched `⪯_Q` distance
    /// tables, per-object level snapshots and the reusable flow arena.
    ///
    /// Unlike the §5.1 switches this is an *implementation strategy*, not
    /// an algorithmic filter: results and the paper's cost counters
    /// (`instance_comparisons`, `mbr_checks`, `flow_runs`) are bit-for-bit
    /// identical either way — `repro kernels` asserts exactly that. It
    /// defaults to on; the scalar path exists as the reference
    /// implementation the bench compares against.
    pub kernels: bool,
    /// Record a per-query structured trace tree (`osd_obs::QueryTrace`)
    /// alongside the result.
    ///
    /// Pure observability, not a filter: the tracer only ever writes into
    /// its own span arena, so candidate ids, `min_dist` bits and every
    /// cost counter are bit-identical traced or untraced (`repro trace`
    /// asserts this), and with the `obs` feature off the flag is inert —
    /// the tracer compiles to a zero-sized no-op. Off in every named
    /// configuration; enabled per query by `--trace` / the trace bench.
    pub trace: bool,
}

impl FilterConfig {
    /// Brute force: every filter disabled. The `kernels` strategy stays on
    /// — it changes how work is executed, not which work the ablation
    /// measures.
    pub const fn bf() -> Self {
        FilterConfig {
            level_by_level: false,
            pruning: false,
            geometric: false,
            mbr_validation: false,
            kernels: true,
            trace: false,
        }
    }

    /// `L`: level-by-level searching added to brute force.
    pub const fn l() -> Self {
        FilterConfig {
            level_by_level: true,
            ..Self::bf()
        }
    }

    /// `LP`: level-by-level plus pruning rules.
    pub const fn lp() -> Self {
        FilterConfig {
            pruning: true,
            ..Self::l()
        }
    }

    /// `LG`: level-by-level plus geometric strategy.
    pub const fn lg() -> Self {
        FilterConfig {
            geometric: true,
            ..Self::l()
        }
    }

    /// `LGP`: level-by-level, geometric and pruning.
    pub const fn lgp() -> Self {
        FilterConfig {
            pruning: true,
            ..Self::lg()
        }
    }

    /// `All`: every filtering technique, including MBR validation.
    pub const fn all() -> Self {
        FilterConfig {
            mbr_validation: true,
            ..Self::lgp()
        }
    }

    /// The same configuration with the blocked-kernel strategy disabled —
    /// the scalar reference path that `repro kernels` measures the blocked
    /// path against.
    pub const fn scalar(self) -> Self {
        FilterConfig {
            kernels: false,
            ..self
        }
    }

    /// The same configuration with per-query tracing switched on — results
    /// are bit-identical either way (tracing is observation only).
    pub const fn traced(self) -> Self {
        FilterConfig {
            trace: true,
            ..self
        }
    }

    /// The ablation ladder of Appendix C, in presentation order.
    pub fn ablation_ladder() -> [(&'static str, FilterConfig); 6] {
        [
            ("BF", Self::bf()),
            ("L", Self::l()),
            ("LP", Self::lp()),
            ("LG", Self::lg()),
            ("LGP", Self::lgp()),
            ("All", Self::all()),
        ]
    }
}

impl Default for FilterConfig {
    /// The full configuration used by the headline experiments.
    fn default() -> Self {
        Self::all()
    }
}

/// Cost counters for the effectiveness/efficiency experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instance-level comparisons: distance evaluations, sorted-atom scan
    /// steps and `⪯_Q` point tests — the y-axis of Figure 16.
    pub instance_comparisons: u64,
    /// Object-pair dominance checks started.
    pub dominance_checks: u64,
    /// Exact max-flow computations run by the P-SD check.
    pub flow_runs: u64,
    /// MBR-level dominance tests (validation / level-by-level / entry
    /// pruning in Algorithm 1).
    pub mbr_checks: u64,
    /// R-tree nodes expanded by best-first traversals: the global tree of
    /// Algorithm 1 plus the local-tree nearest/furthest primitives.
    pub rtree_nodes_visited: u64,
    /// Per-query derived-state cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Per-query derived-state cache lookups that had to build the entry.
    pub cache_misses: u64,
}

impl Stats {
    /// Merges another counter set into this one, field by exact field —
    /// the aggregation used by the parallel batch executor, where each
    /// worker accumulates its own `Stats` and the engine folds them
    /// together. Integer counters make this exact: merged parallel totals
    /// equal the sequential totals regardless of thread count. Every field
    /// of the struct participates — extending `Stats` means extending this
    /// merge (the exhaustive destructuring below makes forgetting a field
    /// a compile error).
    pub fn merge(&mut self, other: &Stats) {
        let Stats {
            instance_comparisons,
            dominance_checks,
            flow_runs,
            mbr_checks,
            rtree_nodes_visited,
            cache_hits,
            cache_misses,
        } = other;
        self.instance_comparisons += instance_comparisons;
        self.dominance_checks += dominance_checks;
        self.flow_runs += flow_runs;
        self.mbr_checks += mbr_checks;
        self.rtree_nodes_visited += rtree_nodes_visited;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
    }

    /// Adds another counter set into this one (alias of [`Stats::merge`],
    /// kept for the established call sites).
    pub fn absorb(&mut self, other: &Stats) {
        self.merge(other);
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn ladder_is_monotone_in_features() {
        let ladder = FilterConfig::ablation_ladder();
        assert_eq!(ladder[0].1, FilterConfig::bf());
        assert_eq!(ladder[5].1, FilterConfig::all());
        assert!(ladder[1].1.level_by_level && !ladder[1].1.pruning);
        assert!(ladder[2].1.pruning && !ladder[2].1.geometric);
        assert!(ladder[3].1.geometric && !ladder[3].1.pruning);
        assert!(ladder[4].1.geometric && ladder[4].1.pruning);
    }

    #[test]
    fn default_is_all() {
        assert_eq!(FilterConfig::default(), FilterConfig::all());
    }

    #[test]
    fn kernels_default_on_and_scalar_only_flips_kernels() {
        for (_, cfg) in FilterConfig::ablation_ladder() {
            assert!(cfg.kernels, "every ladder rung runs the blocked kernels");
            let scalar = cfg.scalar();
            assert!(!scalar.kernels);
            assert_eq!(
                FilterConfig {
                    kernels: true,
                    ..scalar
                },
                cfg,
                "scalar() must not change the §5.1 switches"
            );
        }
    }

    #[test]
    fn stats_absorb() {
        let mut a = Stats {
            instance_comparisons: 1,
            dominance_checks: 2,
            flow_runs: 3,
            mbr_checks: 4,
            rtree_nodes_visited: 5,
            cache_hits: 6,
            cache_misses: 7,
        };
        let b = Stats {
            instance_comparisons: 10,
            dominance_checks: 20,
            flow_runs: 30,
            mbr_checks: 40,
            rtree_nodes_visited: 50,
            cache_hits: 60,
            cache_misses: 70,
        };
        a.absorb(&b);
        assert_eq!(a.instance_comparisons, 11);
        assert_eq!(a.mbr_checks, 44);
        assert_eq!(a.rtree_nodes_visited, 55);
        assert_eq!(a.cache_hits, 66);
        assert_eq!(a.cache_misses, 77);
    }

    #[test]
    fn merge_is_commutative_and_exact() {
        let parts = [
            Stats {
                instance_comparisons: 7,
                dominance_checks: 1,
                flow_runs: 0,
                mbr_checks: 2,
                rtree_nodes_visited: 3,
                cache_hits: 4,
                cache_misses: 1,
            },
            Stats {
                instance_comparisons: 11,
                dominance_checks: 4,
                flow_runs: 5,
                mbr_checks: 0,
                rtree_nodes_visited: 8,
                cache_hits: 0,
                cache_misses: 6,
            },
            Stats {
                instance_comparisons: 13,
                dominance_checks: 2,
                flow_runs: 1,
                mbr_checks: 9,
                rtree_nodes_visited: 2,
                cache_hits: 5,
                cache_misses: 0,
            },
        ];
        let mut fwd = Stats::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Stats::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev, "merge order must not matter");
        assert_eq!(fwd.instance_comparisons, 31);
        assert_eq!(fwd.dominance_checks, 7);
        assert_eq!(fwd.flow_runs, 6);
        assert_eq!(fwd.mbr_checks, 11);
        assert_eq!(fwd.rtree_nodes_visited, 13);
        assert_eq!(fwd.cache_hits, 9);
        assert_eq!(fwd.cache_misses, 7);
    }
}
