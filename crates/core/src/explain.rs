//! Explanation utilities: *why* is an object (not) a candidate?
//!
//! The paper's use case has a human browsing the shortlist; these helpers
//! answer the follow-up questions — which objects dominate a non-candidate,
//! and what does the full dominance relation look like.

use crate::config::FilterConfig;
use crate::ctx::CheckCtx;
#[cfg(test)]
use crate::db::Database;
use crate::index::SpatialIndex;
use crate::ops::Operator;
use crate::query::PreparedQuery;
use crate::warm::WarmPool;

/// All objects that dominate `v` under `op` (empty iff `v` is a candidate).
pub fn dominators_of(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    v: usize,
    cfg: &FilterConfig,
) -> Vec<usize> {
    dominators_of_with(db, query, op, v, cfg, None)
}

/// [`dominators_of`], optionally resolving snapshot-pure cache misses
/// through `warm` — same answer, fewer rebuilds when the explanation runs
/// next to a warmed query session.
pub fn dominators_of_with(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    v: usize,
    cfg: &FilterConfig,
    warm: Option<&WarmPool>,
) -> Vec<usize> {
    let view = warm.map(|pool| pool.view_for(db, query));
    let mut ctx = CheckCtx::with_warm(db, query, *cfg, view);
    (0..db.len())
        .filter(|&u| u != v && db.is_live(u) && db.is_live(v) && ctx.dominates(op, u, v))
        .collect()
}

/// The full `n × n` dominance matrix: `m[u][v]` iff `u` dominates `v`.
/// Quadratic — intended for analysis of small candidate sets, not full
/// databases.
pub fn dominance_matrix(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> Vec<Vec<bool>> {
    let mut ctx = CheckCtx::new(db, query, *cfg);
    let n = db.len();
    let mut m = vec![vec![false; n]; n];
    for (u, row) in m.iter_mut().enumerate() {
        if !db.is_live(u) {
            continue;
        }
        for (v, cell) in row.iter_mut().enumerate() {
            if u != v && db.is_live(v) {
                *cell = ctx.dominates(op, u, v);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::nnc::nn_candidates;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn setup() -> (Database, PreparedQuery) {
        let db = Database::new(vec![
            obj(&[(1.0, 0.0), (2.0, 0.0)]),
            obj(&[(5.0, 0.0), (6.0, 0.0)]),
            obj(&[(9.0, 0.0), (10.0, 0.0)]),
        ]);
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        (db, q)
    }

    #[test]
    fn dominators_match_candidacy() {
        let (db, q) = setup();
        let cfg = FilterConfig::all();
        let candidates = nn_candidates(&db, &q, Operator::PSd, &cfg).ids();
        for v in 0..db.len() {
            let doms = dominators_of(&db, &q, Operator::PSd, v, &cfg);
            assert_eq!(
                doms.is_empty(),
                candidates.contains(&v),
                "object {v}: dominators {doms:?} vs candidates {candidates:?}"
            );
        }
    }

    #[test]
    fn matrix_consistent_with_dominators() {
        let (db, q) = setup();
        let cfg = FilterConfig::all();
        let m = dominance_matrix(&db, &q, Operator::SSd, &cfg);
        // `v` is a column index, not a row: range-loop is the clear spelling.
        #[allow(clippy::needless_range_loop)]
        for v in 0..db.len() {
            let from_matrix: Vec<usize> = (0..db.len()).filter(|&u| m[u][v]).collect();
            assert_eq!(from_matrix, dominators_of(&db, &q, Operator::SSd, v, &cfg));
        }
        // A dominance chain: 0 → 1 → 2 with transitivity 0 → 2.
        assert!(m[0][1] && m[1][2] && m[0][2]);
        assert!(!m[1][0] && !m[2][1] && !m[2][0]);
    }

    #[test]
    fn diagonal_is_false() {
        let (db, q) = setup();
        let m = dominance_matrix(&db, &q, Operator::FSd, &FilterConfig::all());
        for (i, row) in m.iter().enumerate() {
            assert!(!row[i]);
        }
    }
}
