//! Algorithm 1: NN-candidate computation.
//!
//! Objects are visited in non-decreasing order of their **actual** minimal
//! distance `δ_min(V, Q)` via a best-first traversal of the global R-tree
//! (tree nodes are keyed by the MBR lower bound, objects by the exact
//! value). An object visited in this order can never be dominated by an
//! object visited later — a later object has `min(W_Q) ≥ min(V_Q)`, which
//! contradicts the `min` statistic required for dominance (Theorem 11) —
//! so checking each arrival against the candidates found *so far*
//! suffices; together with transitivity (Theorem 9) this makes the result
//! exact. Entries (subtrees) are discarded wholesale when a current
//! candidate MBR-dominates their MBR (Theorem 4 cover validation).
//!
//! The traversal is **progressive**: candidates are final the moment they
//! are emitted, so callers can consume them one by one (Figure 14) or
//! through the [`Iterator`] implementation.

use crate::config::{FilterConfig, Stats};
use crate::ctx::CheckCtx;
#[cfg(test)]
use crate::db::Database;
use crate::index::{ShardSlice, SpatialIndex};
use crate::ops::Operator;
use crate::query::PreparedQuery;
use crate::warm::{WarmPool, WarmView};
use osd_geom::{mbr_dominates, mbr_dominates_strict, Mbr};
use osd_obs::{AttrValue, Counter, Phase, PhaseTimer, QueryMetrics, SpanId, Stopwatch, TraceData};
use osd_rtree::Node;
use std::borrow::{Borrow, Cow};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

/// One emitted NN candidate with bookkeeping for the progressive analysis.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Object id.
    pub id: usize,
    /// The exact `δ_min(U, Q)` — the traversal key at emission.
    pub min_dist: f64,
    /// Wall-clock time from query start until this candidate was emitted.
    pub elapsed: Duration,
}

/// Result of an NNC computation.
#[derive(Debug)]
pub struct NncResult {
    /// The candidates, in emission (non-decreasing `mindist`) order.
    pub candidates: Vec<Candidate>,
    /// Cost counters accumulated over the whole query.
    pub stats: Stats,
    /// Total number of objects that reached an instance-level dominance
    /// check (visited and not pruned at entry level).
    pub objects_checked: usize,
    /// Instrumentation registry of the query (all-zero no-op unless the
    /// `obs` feature is on).
    pub metrics: QueryMetrics,
    /// The query's structured trace tree — present only when
    /// `cfg.trace` was set *and* the `obs` feature is on. The batch
    /// executor stamps `seq` with the query's input index before feeding
    /// the trace to a flight recorder.
    pub trace: Option<TraceData>,
}

impl NncResult {
    /// Candidate ids, in emission order.
    pub fn ids(&self) -> Vec<usize> {
        self.candidates.iter().map(|c| c.id).collect()
    }
}

enum Slot<'a> {
    /// A tree node, tagged with the shard whose global tree it came from
    /// (always 0 on a flat database) for per-shard attribution.
    Node(&'a Node<usize>, usize),
    Object(usize),
}

struct HeapItem<'a> {
    key: f64,
    slot: Slot<'a>,
}

impl HeapItem<'_> {
    /// Tie-break rank at equal keys: nodes before objects, then lower
    /// object id. Nodes-first guarantees every tied-key object is heaped
    /// before the first tied-key object pops, and the id order then fixes
    /// the emission sequence — which is what makes flat and sharded
    /// traversals emit identically even when keys collide.
    fn rank(&self) -> (u8, usize) {
        match self.slot {
            Slot::Node(..) => (0, 0),
            Slot::Object(id) => (1, id),
        }
    }
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        // Defined via `Ord::cmp` so `==` agrees with the total order even
        // for NaN/±0.0 keys (the `Eq` impl requires the two to be
        // consistent).
        self.cmp(other).is_eq()
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key) // min-heap: smaller key pops first
            .then_with(|| other.rank().cmp(&self.rank()))
    }
}

/// Computes the NN candidates of `query` over `db` under the dominance
/// operator `op` (Algorithm 1).
pub fn nn_candidates(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> NncResult {
    run_with(db, query, op, cfg, None)
}

/// [`nn_candidates`] resolving snapshot-pure cache misses through `warm`
/// (see `core::warm`). Result ids, `min_dist` bits, ordering and `Stats`
/// are bit-identical to the cold path; warm traffic is counted only in
/// the dedicated `warm_hits` / `warm_misses` metrics.
pub fn nn_candidates_warm(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
    warm: &WarmPool,
) -> NncResult {
    run_with(db, query, op, cfg, Some(warm.view_for(db, query)))
}

fn run_with(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
    warm: Option<WarmView>,
) -> NncResult {
    let mut progressive = ProgressiveNnc::with_warm(db, query, op, cfg, warm);
    while progressive.next_candidate().is_some() {}
    progressive.into_result()
}

/// Scatter-gather NNC over a sharded index: each shard is searched
/// independently (fanned out over up to `threads` scoped worker threads),
/// then the per-shard candidate sets are merged by a sequential gather
/// pass that re-filters the union in `(δ_min, id)` order.
///
/// The candidate set — ids, `min_dist` bits and order — is identical to
/// [`nn_candidates`] over the same index: a union candidate survives the
/// gather filter exactly when no globally kept candidate dominates it,
/// which by transitivity of the dominance operators is the same test the
/// merged traversal applies at emission. Traversal *counters* differ — the
/// per-shard descents don't share a prune bound, which is precisely the
/// overhead the merged traversal avoids (measured by `repro scale`).
///
/// On a one-shard index this is exactly [`nn_candidates`].
pub fn nn_candidates_scatter(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
    threads: usize,
) -> NncResult {
    scatter_with(db, query, op, cfg, threads, None)
}

/// [`nn_candidates_scatter`] with warm-cache resolution: the query's warm
/// view is resolved once and shared by every per-shard worker and the
/// gather pass (all shard slices of an index share its store snapshot, so
/// one view serves them all). Same bit-identity contract as
/// [`nn_candidates_warm`].
pub fn nn_candidates_scatter_warm(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
    threads: usize,
    warm: &WarmPool,
) -> NncResult {
    scatter_with(db, query, op, cfg, threads, Some(warm.view_for(db, query)))
}

fn scatter_with(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
    threads: usize,
    warm: Option<WarmView>,
) -> NncResult {
    let shards = db.shard_count();
    if shards <= 1 {
        return run_with(db, query, op, cfg, warm);
    }
    let parts = scatter_over_shards(db, threads, |shard| {
        run_with(&ShardSlice::new(db, shard), query, op, cfg, warm.clone())
    });
    // Gather: sort the union by (δ_min, id) — the merged traversal's
    // emission order — and keep exactly the candidates no kept
    // predecessor dominates.
    let mut union: Vec<Candidate> = parts
        .iter()
        .flat_map(|r| r.candidates.iter().cloned())
        .collect();
    union.sort_by(|a, b| a.min_dist.total_cmp(&b.min_dist).then(a.id.cmp(&b.id)));
    let mut ctx = CheckCtx::with_warm(db, query, *cfg, warm);
    // The gather trace summarises each scatter part as one point event
    // (per-shard interior spans live in the parts, which are folded away
    // here — the merged traversal is the path that yields full depth).
    for (shard, r) in parts.iter().enumerate() {
        if !ctx.trace.is_active() {
            break;
        }
        let event = ctx.trace.instant("scatter-part");
        ctx.trace.attr(event, "shard", AttrValue::U64(shard as u64));
        ctx.trace.attr(
            event,
            "candidates",
            AttrValue::U64(r.candidates.len() as u64),
        );
        if let Some(t) = &r.trace {
            ctx.trace.attr(event, "part_ns", AttrValue::U64(t.total_ns));
        }
    }
    let gather = ctx.trace.open("gather");
    let union_len = union.len();
    let mut kept: Vec<Candidate> = Vec::with_capacity(union.len());
    for c in union {
        let mut dominated = false;
        for k in &kept {
            if ctx.dominates(op, k.id, c.id) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            ctx.metrics.candidate_emitted(op.label());
            kept.push(c);
        }
    }
    if gather != SpanId::NONE {
        ctx.trace
            .attr(gather, "union", AttrValue::U64(union_len as u64));
        ctx.trace
            .attr(gather, "kept", AttrValue::U64(kept.len() as u64));
    }
    ctx.trace.close(gather);
    let mut stats = Stats::default();
    let mut metrics = QueryMetrics::new();
    let mut objects_checked = 0;
    for r in &parts {
        stats.merge(&r.stats);
        metrics.merge(&r.metrics);
        objects_checked += r.objects_checked;
    }
    stats.merge(&ctx.stats);
    metrics.merge(&ctx.metrics);
    let mut trace = ctx.trace.finish();
    if let Some(t) = trace.as_mut() {
        t.label = Cow::Borrowed(op.label());
    }
    NncResult {
        candidates: kept,
        stats,
        objects_checked,
        metrics,
        trace,
    }
}

/// Runs `work` for every shard id, fanned out over up to `threads` scoped
/// worker threads (dynamic claiming, results in shard order). With one
/// worker the loop runs inline on the caller's thread.
pub(crate) fn scatter_over_shards<R: Send>(
    db: &dyn SpatialIndex,
    threads: usize,
    work: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let shards = db.shard_count();
    let workers = threads.max(1).min(shards.max(1));
    if workers <= 1 {
        return (0..shards).map(work).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= shards {
                            break;
                        }
                        claimed.push((i, work(i)));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A resumable Algorithm-1 traversal that emits candidates one at a time —
/// the progressive behaviour evaluated in Figure 14.
///
/// Also an [`Iterator`] over [`Candidate`]s, so the traversal composes with
/// adapters: `ProgressiveNnc::new(..).take(3)` yields the first three
/// candidates without finishing the query.
pub struct ProgressiveNnc<'a> {
    op: Operator,
    heap: BinaryHeap<HeapItem<'a>>,
    candidates: Vec<Candidate>,
    /// MBR of each emitted candidate, cached at emission so entry pruning
    /// reads a contiguous list instead of chasing the store per check.
    /// `Arc`ed so a warm run shares the snapshot-scoped copy instead of
    /// cloning coordinates per query.
    cand_mbrs: Vec<Arc<Mbr>>,
    ctx: CheckCtx<'a>,
    objects_checked: usize,
    start: Stopwatch,
}

impl<'a> ProgressiveNnc<'a> {
    /// Starts a traversal.
    pub fn new(
        db: &'a dyn SpatialIndex,
        query: &'a PreparedQuery,
        op: Operator,
        cfg: &FilterConfig,
    ) -> Self {
        Self::with_warm(db, query, op, cfg, None)
    }

    /// Starts a traversal whose context resolves snapshot-pure cache
    /// misses through `warm`; results are bit-identical to [`Self::new`].
    pub fn with_warm(
        db: &'a dyn SpatialIndex,
        query: &'a PreparedQuery,
        op: Operator,
        cfg: &FilterConfig,
        warm: Option<WarmView>,
    ) -> Self {
        let timer = PhaseTimer::start(Phase::Prepare);
        let mut ctx = CheckCtx::with_warm(db, query, *cfg, warm);
        let prep = ctx.trace.open("prepare");
        ctx.metrics.snapshot(
            db.epoch(),
            db.live_len() as u64,
            db.tombstone_count() as u64,
        );
        let mut heap = BinaryHeap::new();
        // Seed every shard root (a flat database has exactly one): the
        // traversal is then one best-first descent of the whole forest,
        // and cross-shard candidate pruning acts as a prune bound shared
        // by all shards — the `min_dist2_multi` trick, one level up.
        for shard in 0..db.shard_count() {
            if let Some(root) = db.shard_tree(shard).root() {
                heap.push(HeapItem {
                    key: root.mbr().min_dist2(query.mbr()),
                    slot: Slot::Node(root, shard),
                });
            }
        }
        ctx.metrics.incr_by(Counter::HeapPushes, heap.len() as u64);
        ctx.metrics.heap_depth(heap.len() as u64);
        if prep != SpanId::NONE {
            ctx.trace
                .attr(prep, "shards", AttrValue::U64(db.shard_count() as u64));
            ctx.trace
                .attr(prep, "seeds", AttrValue::U64(heap.len() as u64));
            ctx.trace.attr(prep, "epoch", AttrValue::U64(db.epoch()));
        }
        ctx.trace.close(prep);
        ctx.metrics.record(timer);
        ProgressiveNnc {
            op,
            heap,
            candidates: Vec::new(),
            cand_mbrs: Vec::new(),
            ctx,
            objects_checked: 0,
            start: Stopwatch::start(),
        }
    }

    /// Candidates emitted so far.
    pub fn emitted(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Cost counters accumulated so far (readable mid-traversal).
    pub fn stats(&self) -> &Stats {
        &self.ctx.stats
    }

    /// Instrumentation registry accumulated so far (readable
    /// mid-traversal; all-zero unless the `obs` feature is on).
    pub fn metrics(&self) -> &QueryMetrics {
        &self.ctx.metrics
    }

    /// Objects that reached a full dominance check so far.
    pub fn objects_checked(&self) -> usize {
        self.objects_checked
    }

    /// Consumes the traversal into an [`NncResult`] with everything emitted
    /// so far.
    pub fn into_result(mut self) -> NncResult {
        // Stamp the warm gauges at completion, when resident bytes reflect
        // everything this query published (max-merged, so late is safe).
        if let Some(w) = self.ctx.cache.warm() {
            w.record_gauges(&mut self.ctx.metrics);
        }
        let mut trace = self.ctx.trace.finish();
        if let Some(t) = trace.as_mut() {
            t.label = Cow::Borrowed(self.op.label());
        }
        NncResult {
            candidates: self.candidates,
            stats: self.ctx.stats,
            objects_checked: self.objects_checked,
            metrics: self.ctx.metrics,
            trace,
        }
    }

    /// Advances the traversal until the next candidate is found; `None` when
    /// the heap is exhausted.
    pub fn next_candidate(&mut self) -> Option<Candidate> {
        while let Some(HeapItem { key, slot }) = self.heap.pop() {
            match slot {
                Slot::Object(v) => {
                    self.objects_checked += 1;
                    if !self.dominated(v) {
                        let c = Candidate {
                            id: v,
                            min_dist: key.max(0.0).sqrt(),
                            elapsed: self.start.elapsed(),
                        };
                        self.candidates.push(c.clone());
                        let mbr = match self.ctx.cache.warm() {
                            Some(w) => w.object_mbr(self.ctx.db, v, &mut self.ctx.metrics),
                            None => Arc::new(self.ctx.db.object(v).mbr().clone()),
                        };
                        self.cand_mbrs.push(mbr);
                        self.ctx.metrics.candidate_emitted(self.op.label());
                        let event = self.ctx.trace.instant("candidate");
                        if event != SpanId::NONE {
                            self.ctx.trace.attr(event, "id", AttrValue::U64(v as u64));
                            self.ctx
                                .trace
                                .attr(event, "min_dist", AttrValue::F64(c.min_dist));
                        }
                        return Some(c);
                    }
                }
                Slot::Node(node, shard) => {
                    let timer = PhaseTimer::start(Phase::RtreeDescent);
                    let span = self.ctx.trace.open("rtree-descent");
                    if span != SpanId::NONE {
                        self.ctx
                            .trace
                            .attr(span, "shard", AttrValue::U64(shard as u64));
                        self.ctx.trace.attr(span, "key", AttrValue::F64(key));
                    }
                    self.ctx.stats.rtree_nodes_visited += 1;
                    self.ctx.metrics.incr(Counter::RtreeNodeVisits);
                    self.ctx.metrics.shard_visit(shard);
                    if !self.entry_pruned(&node.mbr()) {
                        let depth_before = self.heap.len();
                        // per-shard descent: begin
                        match node {
                            Node::Leaf(entries) => {
                                for e in entries {
                                    if !self.entry_pruned(&e.mbr) {
                                        // Objects are keyed by their *actual*
                                        // minimal distance δ_min(V, Q): the
                                        // exactness argument (statistic rule on
                                        // `min`) needs the true value, and the
                                        // MBR distance is only a lower bound.
                                        let key = self.object_min_dist2(e.item);
                                        self.heap.push(HeapItem {
                                            key,
                                            slot: Slot::Object(e.item),
                                        });
                                    }
                                }
                            }
                            Node::Inner(children) => {
                                for c in children {
                                    if !self.entry_pruned(&c.mbr) {
                                        self.heap.push(HeapItem {
                                            key: c.mbr.min_dist2(self.ctx.query.mbr()),
                                            slot: Slot::Node(&c.node, shard),
                                        });
                                    }
                                }
                            }
                        }
                        // per-shard descent: end
                        let pushed = (self.heap.len() - depth_before) as u64;
                        self.ctx.metrics.incr_by(Counter::HeapPushes, pushed);
                        self.ctx.metrics.heap_depth(self.heap.len() as u64);
                        self.ctx.trace.attr(span, "pushed", AttrValue::U64(pushed));
                    } else {
                        self.ctx.trace.attr(
                            span,
                            "pruned",
                            AttrValue::Str(Cow::Borrowed("mbr-dominated")),
                        );
                    }
                    self.ctx.trace.close(span);
                    self.ctx.metrics.record(timer);
                }
            }
        }
        None
    }

    /// Whether any current candidate dominates object `v`.
    fn dominated(&mut self, v: usize) -> bool {
        // Iterate over ids (cheap copy) because the dominance check needs
        // mutable access to the cache.
        for idx in 0..self.candidates.len() {
            let u = self.candidates[idx].id;
            if self.ctx.dominates(self.op, u, v) {
                return true;
            }
        }
        false
    }

    /// Exact squared `δ_min(V, Q)` via the object's local R-tree.
    fn object_min_dist2(&mut self, v: usize) -> f64 {
        object_min_dist2(
            self.ctx.db,
            self.ctx.query,
            self.ctx.cfg.kernels,
            v,
            &mut self.ctx.stats,
            &mut self.ctx.metrics,
        )
    }

    /// Entry-level pruning against the candidates emitted so far.
    fn entry_pruned(&mut self, e_mbr: &Mbr) -> bool {
        mbr_pruned(
            &self.cand_mbrs,
            e_mbr,
            self.ctx.query.mbr(),
            self.op,
            self.ctx.cfg.mbr_validation,
            &mut self.ctx.stats,
        )
    }
}

/// Exact squared `δ_min(V, Q)` via the object's local R-tree — the
/// traversal key of [`ProgressiveNnc`], shared with the continuous repair
/// path ([`crate::continuous::ContinuousNnc`]) so both compute
/// bit-identical keys.
///
/// The kernel path answers all query instances in one pruned descent
/// sharing the running best as bound; `min` is monotone under
/// `sqrt`-then-square, so the result is bit-identical to the per-`q`
/// nearest searches of the scalar path (which square each nearest
/// distance before folding). `instance_comparisons` charges one unit
/// per query instance on both paths; the node-visit saving shows up in
/// `rtree_nodes_visited`, which is reported but not frozen.
pub(crate) fn object_min_dist2(
    db: &dyn SpatialIndex,
    query: &PreparedQuery,
    kernels: bool,
    v: usize,
    stats: &mut Stats,
    metrics: &mut QueryMetrics,
) -> f64 {
    let tree = db.local_tree(v);
    let mut best = f64::INFINITY;
    let mut visits = 0u64;
    if kernels {
        stats.instance_comparisons += query.len() as u64;
        if let Some(d2) = tree.min_dist2_multi(query.instance_points(), &mut visits) {
            let d = d2.sqrt();
            best = d * d;
        }
    } else {
        for q in query.instance_points() {
            stats.instance_comparisons += 1;
            if let Some((_, d)) = tree.nearest_counting(q, &mut visits) {
                best = best.min(d * d);
            }
        }
    }
    stats.rtree_nodes_visited += visits;
    metrics.incr_by(Counter::RtreeNodeVisits, visits);
    best
}

/// Entry-level pruning: discard a subtree (or object) when some MBR in
/// `cand_mbrs` fully dominates `e_mbr` w.r.t. the query MBR (Theorem 4).
/// The strict operators use the strict MBR test so that a pruned subtree
/// can never contain a distribution-equal twin of a candidate.
///
/// Shared by the traversal's entry pruning and the continuous repair
/// pre-filter so both apply the exact same gate. Generic over the MBR
/// holder so the traversal's warm-shared `Arc<Mbr>` list and the repair
/// path's owned `Vec<Mbr>` go through the identical code.
pub(crate) fn mbr_pruned<M: Borrow<Mbr>>(
    cand_mbrs: &[M],
    e_mbr: &Mbr,
    query_mbr: &Mbr,
    op: Operator,
    mbr_validation: bool,
    stats: &mut Stats,
) -> bool {
    if !mbr_validation && op != Operator::FPlusSd && op != Operator::FSd {
        // With validation disabled (BF-style ablations) entries are
        // never pruned for the strict operators, to keep the measured
        // work faithful to the unfiltered algorithm.
        return false;
    }
    let strict = !matches!(op, Operator::FPlusSd | Operator::FSd);
    for u_mbr in cand_mbrs {
        let u_mbr = u_mbr.borrow();
        stats.mbr_checks += 1;
        let dominated = if strict {
            mbr_dominates_strict(u_mbr, e_mbr, query_mbr)
        } else {
            mbr_dominates(u_mbr, e_mbr, query_mbr)
        };
        if dominated {
            return true;
        }
    }
    false
}

impl Iterator for ProgressiveNnc<'_> {
    type Item = Candidate;

    fn next(&mut self) -> Option<Candidate> {
        self.next_candidate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osd_geom::Point;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn line_db() -> Database {
        Database::new(
            (0..5)
                .map(|i| {
                    let x = 2.0 + 3.0 * i as f64;
                    obj(&[(x, 0.0), (x + 0.5, 0.0)])
                })
                .collect(),
        )
    }

    #[test]
    fn iterator_matches_next_candidate() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let via_iter: Vec<usize> =
            ProgressiveNnc::new(&db, &q, Operator::PSd, &FilterConfig::all())
                .map(|c| c.id)
                .collect();
        let via_batch = nn_candidates(&db, &q, Operator::PSd, &FilterConfig::all()).ids();
        assert_eq!(via_iter, via_batch);
    }

    #[test]
    fn iterator_composes_with_take() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        let first = ProgressiveNnc::new(&db, &q, Operator::SSd, &FilterConfig::all())
            .take(1)
            .map(|c| c.id)
            .collect::<Vec<_>>();
        assert_eq!(
            first,
            vec![0],
            "nearest object is always the first candidate"
        );
    }

    #[test]
    fn heap_item_eq_agrees_with_ord_on_special_floats() {
        // Identical NaN keys: the id tie-break decides, and Eq agrees.
        let a = HeapItem {
            key: f64::NAN,
            slot: Slot::Object(0),
        };
        let b = HeapItem {
            key: f64::NAN,
            slot: Slot::Object(1),
        };
        // `a` is greater in the reversed (min-heap) order: lower id pops
        // first among equal keys.
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
        let same = HeapItem {
            key: f64::NAN,
            slot: Slot::Object(0),
        };
        assert_eq!(a.cmp(&same), Ordering::Equal);
        assert!(a == same, "Eq must agree with Ord for identical items");
        let z_pos = HeapItem {
            key: 0.0,
            slot: Slot::Object(2),
        };
        let z_neg = HeapItem {
            key: -0.0,
            slot: Slot::Object(2),
        };
        assert_eq!(
            z_pos == z_neg,
            z_pos.cmp(&z_neg) == Ordering::Equal,
            "±0.0 equality must match the total order"
        );
    }

    #[test]
    fn nodes_pop_before_objects_at_equal_keys() {
        let db = line_db();
        let root = db.global_tree().root().unwrap();
        let node = HeapItem {
            key: 1.0,
            slot: Slot::Node(root, 0),
        };
        let object = HeapItem {
            key: 1.0,
            slot: Slot::Object(0),
        };
        // Greater pops first from `BinaryHeap`.
        assert_eq!(node.cmp(&object), Ordering::Greater);
    }

    #[test]
    fn scatter_on_flat_database_matches_merged() {
        let db = line_db();
        let q = PreparedQuery::new(obj(&[(0.0, 0.0)]));
        for op in Operator::ALL {
            let merged = nn_candidates(&db, &q, op, &FilterConfig::all());
            let scattered = nn_candidates_scatter(&db, &q, op, &FilterConfig::all(), 4);
            assert_eq!(merged.ids(), scattered.ids(), "{op:?}");
            assert_eq!(
                merged.stats, scattered.stats,
                "{op:?} (one shard: same path)"
            );
        }
    }
}
