//! Algorithm 1: NN-candidate computation.
//!
//! Objects are visited in non-decreasing order of their **actual** minimal
//! distance `δ_min(V, Q)` via a best-first traversal of the global R-tree
//! (tree nodes are keyed by the MBR lower bound, objects by the exact
//! value). An object visited in this order can never be dominated by an
//! object visited later — a later object has `min(W_Q) ≥ min(V_Q)`, which
//! contradicts the `min` statistic required for dominance (Theorem 11) —
//! so checking each arrival against the candidates found *so far*
//! suffices; together with transitivity (Theorem 9) this makes the result
//! exact. Entries (subtrees) are discarded wholesale when a current
//! candidate MBR-dominates their MBR (Theorem 4 cover validation).
//!
//! The traversal is **progressive**: candidates are final the moment they
//! are emitted, so callers can consume them one by one (Figure 14).

use crate::cache::DominanceCache;
use crate::config::{FilterConfig, Stats};
use crate::db::Database;
use crate::ops::{dominates, Operator};
use crate::query::PreparedQuery;
use osd_geom::{mbr_dominates, mbr_dominates_strict, Mbr};
use osd_rtree::Node;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// One emitted NN candidate with bookkeeping for the progressive analysis.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Object id.
    pub id: usize,
    /// The exact `δ_min(U, Q)` — the traversal key at emission.
    pub min_dist: f64,
    /// Wall-clock time from query start until this candidate was emitted.
    pub elapsed: Duration,
}

/// Result of an NNC computation.
#[derive(Debug)]
pub struct NncResult {
    /// The candidates, in emission (non-decreasing `mindist`) order.
    pub candidates: Vec<Candidate>,
    /// Cost counters accumulated over the whole query.
    pub stats: Stats,
    /// Total number of objects that reached an instance-level dominance
    /// check (visited and not pruned at entry level).
    pub objects_checked: usize,
}

impl NncResult {
    /// Candidate ids, in emission order.
    pub fn ids(&self) -> Vec<usize> {
        self.candidates.iter().map(|c| c.id).collect()
    }
}

enum Slot<'a> {
    Node(&'a Node<usize>),
    Object(usize),
}

struct HeapItem<'a> {
    key: f64,
    slot: Slot<'a>,
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.total_cmp(&self.key) // min-heap
    }
}

/// Computes the NN candidates of `query` over `db` under the dominance
/// operator `op` (Algorithm 1).
pub fn nn_candidates(
    db: &Database,
    query: &PreparedQuery,
    op: Operator,
    cfg: &FilterConfig,
) -> NncResult {
    let mut progressive = ProgressiveNnc::new(db, query, op, cfg);
    let mut out = Vec::new();
    while let Some(c) = progressive.next_candidate() {
        out.push(c);
    }
    NncResult {
        candidates: out,
        stats: progressive.stats,
        objects_checked: progressive.objects_checked,
    }
}

/// A resumable Algorithm-1 traversal that emits candidates one at a time —
/// the progressive behaviour evaluated in Figure 14.
pub struct ProgressiveNnc<'a> {
    db: &'a Database,
    query: &'a PreparedQuery,
    op: Operator,
    cfg: FilterConfig,
    heap: BinaryHeap<HeapItem<'a>>,
    candidates: Vec<Candidate>,
    cache: DominanceCache,
    /// Cost counters (public so callers can read them mid-traversal).
    pub stats: Stats,
    /// Objects that reached a full dominance check.
    pub objects_checked: usize,
    start: Instant,
}

impl<'a> ProgressiveNnc<'a> {
    /// Starts a traversal.
    pub fn new(
        db: &'a Database,
        query: &'a PreparedQuery,
        op: Operator,
        cfg: &FilterConfig,
    ) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = db.global_tree().root() {
            heap.push(HeapItem {
                key: root.mbr().min_dist2(query.mbr()),
                slot: Slot::Node(root),
            });
        }
        ProgressiveNnc {
            db,
            query,
            op,
            cfg: *cfg,
            heap,
            candidates: Vec::new(),
            cache: DominanceCache::new(db.len()),
            stats: Stats::default(),
            objects_checked: 0,
            start: Instant::now(),
        }
    }

    /// Candidates emitted so far.
    pub fn emitted(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Advances the traversal until the next candidate is found; `None` when
    /// the heap is exhausted.
    pub fn next_candidate(&mut self) -> Option<Candidate> {
        while let Some(HeapItem { key, slot }) = self.heap.pop() {
            match slot {
                Slot::Object(v) => {
                    self.objects_checked += 1;
                    if !self.dominated(v) {
                        let c = Candidate {
                            id: v,
                            min_dist: key.max(0.0).sqrt(),
                            elapsed: self.start.elapsed(),
                        };
                        self.candidates.push(c.clone());
                        return Some(c);
                    }
                }
                Slot::Node(node) => {
                    if self.entry_pruned(&node.mbr()) {
                        continue;
                    }
                    match node {
                        Node::Leaf(entries) => {
                            for e in entries {
                                if !self.entry_pruned(&e.mbr) {
                                    // Objects are keyed by their *actual*
                                    // minimal distance δ_min(V, Q): the
                                    // exactness argument (statistic rule on
                                    // `min`) needs the true value, and the
                                    // MBR distance is only a lower bound.
                                    let key = self.object_min_dist2(e.item);
                                    self.heap.push(HeapItem {
                                        key,
                                        slot: Slot::Object(e.item),
                                    });
                                }
                            }
                        }
                        Node::Inner(children) => {
                            for c in children {
                                if !self.entry_pruned(&c.mbr) {
                                    self.heap.push(HeapItem {
                                        key: c.mbr.min_dist2(self.query.mbr()),
                                        slot: Slot::Node(&c.node),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Whether any current candidate dominates object `v`.
    fn dominated(&mut self, v: usize) -> bool {
        // Iterate over ids (cheap copy) because the dominance check needs
        // mutable access to the cache.
        for idx in 0..self.candidates.len() {
            let u = self.candidates[idx].id;
            if dominates(
                self.op,
                self.db,
                u,
                v,
                self.query,
                &self.cfg,
                &mut self.cache,
                &mut self.stats,
            ) {
                return true;
            }
        }
        false
    }

    /// Exact squared `δ_min(V, Q)` via the object's local R-tree.
    fn object_min_dist2(&mut self, v: usize) -> f64 {
        let tree = self.db.local_tree(v);
        let mut best = f64::INFINITY;
        for q in self.query.points() {
            self.stats.instance_comparisons += 1;
            if let Some((_, d)) = tree.nearest(q) {
                best = best.min(d * d);
            }
        }
        best
    }

    /// Entry-level pruning: discard a subtree when some candidate's MBR
    /// fully dominates its MBR w.r.t. the query MBR (Theorem 4). The strict
    /// operators use the strict MBR test so that a pruned subtree can never
    /// contain a distribution-equal twin of a candidate.
    fn entry_pruned(&mut self, e_mbr: &Mbr) -> bool {
        if !self.cfg.mbr_validation && self.op != Operator::FPlusSd && self.op != Operator::FSd {
            // With validation disabled (BF-style ablations) entries are
            // never pruned for the strict operators, to keep the measured
            // work faithful to the unfiltered algorithm.
            return false;
        }
        let strict = !matches!(self.op, Operator::FPlusSd | Operator::FSd);
        for c in &self.candidates {
            self.stats.mbr_checks += 1;
            let u_mbr = self.db.object(c.id).mbr();
            let dominated = if strict {
                mbr_dominates_strict(u_mbr, e_mbr, self.query.mbr())
            } else {
                mbr_dominates(u_mbr, e_mbr, self.query.mbr())
            };
            if dominated {
                return true;
            }
        }
        false
    }
}
