//! The [`SpatialIndex`] trait: what the dominance search needs from a
//! database, abstracted over its physical layout.
//!
//! Two implementations exist:
//!
//! * [`FlatDatabase`](crate::FlatDatabase) — one global R-tree over every
//!   object MBR (the §6 layout; the default);
//! * [`ShardedDatabase`](crate::ShardedDatabase) — the columnar store is
//!   space-partitioned into STR tiles, each tile owning its own global
//!   R-tree over a contiguous span of the (permuted) store.
//!
//! The search algorithms ([`nn_candidates`](crate::nn_candidates),
//! [`k_nn_candidates`](crate::k_nn_candidates), the caches and the check
//! contexts) take `&dyn SpatialIndex` and are oblivious to the layout:
//! a sharded index simply exposes *several* global trees
//! ([`SpatialIndex::shard_tree`]), and the best-first traversal seeds its
//! heap with all shard roots — the cross-shard candidate pruning then *is*
//! the shared lower-bound trick of `min_dist2_multi`, lifted one level up.
//!
//! Everything else — object ids, local instance trees, the columnar
//! snapshot — is layout-independent: ids address the same logical objects
//! in every implementation, which is what makes flat and sharded results
//! bit-identical (see `tests/shard_identity.rs`).

use osd_geom::Point;
use osd_rtree::RTree;
use osd_uncertain::{Change, InstanceStore, ObjectRef, StoreError, UncertainObject};
use std::fmt;
use std::sync::Arc;

/// Why an index could not be built or mutated.
///
/// Lives with the trait (not a concrete layout) because the
/// [`SpatialIndex`] default mutators return it; `crate::db` re-exports it
/// from its historical home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// No objects were supplied.
    Empty,
    /// An object disagrees with the database's dimensionality.
    DimensionMismatch {
        /// Id (input position, or would-be id on insert) of the offending
        /// object.
        object: usize,
        /// Dimensionality of the database (set by the first object).
        expected: usize,
        /// Dimensionality of the offending object.
        found: usize,
    },
    /// The addressed id is tombstoned (deleted) or was never assigned.
    Dead {
        /// The offending logical object id.
        object: usize,
    },
    /// The index layout does not support mutation (e.g. a read-only
    /// shard slice).
    Immutable,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Empty => write!(f, "a database needs at least one object"),
            DbError::DimensionMismatch {
                object,
                expected,
                found,
            } => write!(
                f,
                "object {object}: dimensionality must match the database: \
                 expected {expected}, found {found}"
            ),
            DbError::Dead { object } => write!(
                f,
                "object {object} is not live (deleted, or never inserted)"
            ),
            DbError::Immutable => write!(f, "this index layout does not support mutation"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Lifts a columnar-store error, attaching the id of the offending
    /// object (the store reports *what* went wrong, the database knows
    /// *which* object tripped it).
    pub fn from_store(e: StoreError, object: usize) -> Self {
        match e {
            StoreError::Empty => DbError::Empty,
            StoreError::DimensionMismatch { expected, found } => DbError::DimensionMismatch {
                object,
                expected,
                found,
            },
        }
    }
}

/// Per-shard size statistics (one entry per shard; a flat database reports
/// exactly one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Objects indexed by this shard's global tree.
    pub objects: usize,
    /// Instances owned by those objects.
    pub instances: usize,
    /// Nodes (leaves + inner) of the shard's global R-tree — an upper bound
    /// on the node visits any single descent of that tree can charge.
    pub tree_nodes: usize,
    /// Height of the shard's global R-tree (`None` when empty).
    pub tree_height: Option<usize>,
    /// Approximate bytes of columnar instance data owned by the shard
    /// (coords + probs + spans + MBRs; excludes the R-trees).
    pub approx_bytes: usize,
}

/// Size statistics of a whole index, per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Total objects.
    pub objects: usize,
    /// Total instances.
    pub instances: usize,
    /// One entry per shard.
    pub shards: Vec<ShardStats>,
}

/// What the NN-candidate search needs from a database, independent of its
/// physical layout (one global R-tree, or many shard trees over a
/// space-partitioned store).
///
/// Object ids are *logical* and layout-independent: `object(id)` denotes
/// the same object in every implementation over the same data, so result
/// sets (candidate ids, distances, emission order) are comparable — and,
/// by the frozen-counter contract, bit-identical — across layouts.
pub trait SpatialIndex: Send + Sync {
    /// Size of the *logical id space*: one slot per object ever inserted,
    /// live or tombstoned. Ids are stable and never reused, so per-query
    /// structures sized by `len()` (caches, scratch) stay addressable
    /// across mutations.
    fn len(&self) -> usize;

    /// Whether the index holds no objects (never true for the concrete
    /// databases, which are non-empty by construction).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Epoch of the current snapshot: the number of mutations ever
    /// published. A never-mutated index reports 0.
    fn epoch(&self) -> u64 {
        0
    }

    /// Number of *live* objects (`len()` minus tombstones).
    fn live_len(&self) -> usize {
        self.len()
    }

    /// Whether logical id `id` currently denotes a live object.
    fn is_live(&self, id: usize) -> bool {
        id < self.len()
    }

    /// Number of tombstoned (deleted) ids in the logical id space.
    fn tombstone_count(&self) -> usize {
        self.len() - self.live_len()
    }

    /// The mutations published after epoch `since`, oldest first, or
    /// `None` when the delta is no longer reconstructible (the reader
    /// fell behind the retained change window and must refresh fully).
    fn changes_since(&self, since: u64) -> Option<Vec<Change>> {
        if since == self.epoch() {
            Some(Vec::new())
        } else {
            None
        }
    }

    /// Publishes an insert, returning the new object's logical id.
    ///
    /// # Errors
    /// [`DbError::Immutable`] for read-only layouts (the default);
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    fn try_insert(&mut self, object: UncertainObject) -> Result<usize, DbError> {
        let _ = object;
        Err(DbError::Immutable)
    }

    /// Publishes a delete: the object's rows are compacted out of the
    /// store, its global-tree entry condensed away, and its id
    /// tombstoned (never reused).
    ///
    /// # Errors
    /// [`DbError::Immutable`] for read-only layouts (the default);
    /// [`DbError::Dead`] if `id` is not live; [`DbError::Empty`] when the
    /// delete would leave the index empty.
    fn try_delete(&mut self, id: usize) -> Result<(), DbError> {
        let _ = id;
        Err(DbError::Immutable)
    }

    /// Publishes an update: the object is replaced in place under the
    /// same logical id, and its index entries are re-routed like an
    /// insert.
    ///
    /// # Errors
    /// [`DbError::Immutable`] for read-only layouts (the default);
    /// [`DbError::Dead`] if `id` is not live;
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    fn try_update(&mut self, id: usize, object: UncertainObject) -> Result<(), DbError> {
        let _ = (id, object);
        Err(DbError::Immutable)
    }

    /// Dimensionality of the instance space.
    fn dim(&self) -> usize;

    /// The columnar instance snapshot behind the index. Cloning the `Arc`
    /// shares the allocation with zero copies.
    fn store(&self) -> &Arc<InstanceStore>;

    /// Zero-copy view of object `id`.
    fn object(&self, id: usize) -> ObjectRef<'_>;

    /// Local R-tree over the instances of object `id` (payload = instance
    /// index *within the object*).
    fn local_tree(&self, id: usize) -> &RTree<usize>;

    /// Number of global-tree shards (1 for a flat database).
    fn shard_count(&self) -> usize;

    /// Global R-tree of shard `shard` (payload = logical object id).
    fn shard_tree(&self, shard: usize) -> &RTree<usize>;

    /// Smallest squared distance from any of `probes` to any instance of
    /// object `id`, best-first over the local tree with a bound shared
    /// across probes; `visits` is charged one per expanded tree node.
    fn min_dist2_multi(&self, id: usize, probes: &[Point], visits: &mut u64) -> Option<f64> {
        self.local_tree(id).min_dist2_multi(probes, visits)
    }

    /// Per-shard size statistics.
    fn index_stats(&self) -> IndexStats;
}

/// Computes the [`ShardStats`] of one global tree over the objects it
/// indexes (shared by both concrete databases).
pub(crate) fn shard_stats_of(index: &dyn SpatialIndex, tree: &RTree<usize>) -> ShardStats {
    let mut instances = 0;
    let mut approx_bytes = 0;
    for &id in tree.items() {
        let view = index.object(id);
        instances += view.len();
        approx_bytes += view.approx_bytes();
    }
    ShardStats {
        objects: tree.len(),
        instances,
        tree_nodes: tree.node_count(),
        tree_height: tree.height(),
        approx_bytes,
    }
}

/// A single shard of a sharded index, viewed *as* a [`SpatialIndex`] — the
/// adapter behind the scatter execution path: each worker runs the full
/// sequential search against one `ShardSlice` and the union is merged.
///
/// The slice deliberately reports the **whole** index's `len()` and serves
/// every object id: ids stay logical (per-query caches size to the full
/// database and shard-local results speak the global id space, so the
/// gather step can merge them without translation). Only the *global-tree
/// view* is narrowed — `shard_count()` is 1 and `shard_tree(0)` is the
/// base's tree for this shard, so a search over the slice visits exactly
/// this shard's objects.
#[derive(Clone, Copy)]
pub struct ShardSlice<'a> {
    base: &'a dyn SpatialIndex,
    shard: usize,
}

impl<'a> ShardSlice<'a> {
    /// Views shard `shard` of `base` as a one-shard index.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn new(base: &'a dyn SpatialIndex, shard: usize) -> Self {
        assert!(
            shard < base.shard_count(),
            "shard {shard} out of range (index has {})",
            base.shard_count()
        );
        ShardSlice { base, shard }
    }
}

impl SpatialIndex for ShardSlice<'_> {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn epoch(&self) -> u64 {
        self.base.epoch()
    }

    fn live_len(&self) -> usize {
        self.base.live_len()
    }

    fn is_live(&self, id: usize) -> bool {
        self.base.is_live(id)
    }

    fn changes_since(&self, since: u64) -> Option<Vec<Change>> {
        self.base.changes_since(since)
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn store(&self) -> &Arc<InstanceStore> {
        self.base.store()
    }

    fn object(&self, id: usize) -> ObjectRef<'_> {
        self.base.object(id)
    }

    fn local_tree(&self, id: usize) -> &RTree<usize> {
        self.base.local_tree(id)
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn shard_tree(&self, shard: usize) -> &RTree<usize> {
        assert_eq!(shard, 0, "a shard slice has exactly one shard");
        self.base.shard_tree(self.shard)
    }

    fn index_stats(&self) -> IndexStats {
        let stats = shard_stats_of(self, self.base.shard_tree(self.shard));
        IndexStats {
            objects: stats.objects,
            instances: stats.instances,
            shards: vec![stats],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use osd_uncertain::UncertainObject;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    #[test]
    fn flat_database_is_a_one_shard_index() {
        let db = Database::new(vec![
            obj(&[(0.0, 0.0), (1.0, 1.0)]),
            obj(&[(5.0, 5.0), (6.0, 6.0), (7.0, 5.0)]),
        ]);
        let index: &dyn SpatialIndex = &db;
        assert_eq!(index.shard_count(), 1);
        assert_eq!(index.shard_tree(0).len(), 2);
        let stats = index.index_stats();
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.instances, 5);
        assert_eq!(stats.shards.len(), 1);
        assert_eq!(stats.shards[0].objects, 2);
        assert_eq!(stats.shards[0].instances, 5);
        assert!(stats.shards[0].tree_nodes >= 1);
        assert!(stats.shards[0].approx_bytes > 0);
    }

    #[test]
    fn shard_slice_narrows_only_the_tree_view() {
        let db = Database::new(vec![
            obj(&[(0.0, 0.0)]),
            obj(&[(9.0, 9.0)]),
            obj(&[(4.0, 4.0)]),
        ]);
        let slice = ShardSlice::new(&db, 0);
        // Ids stay logical: every object is addressable through the slice.
        assert_eq!(slice.len(), 3);
        assert_eq!(slice.object(2).row(0), &[4.0, 4.0]);
        assert_eq!(slice.shard_count(), 1);
        assert_eq!(slice.shard_tree(0).len(), 3);
        assert!(Arc::ptr_eq(slice.store(), db.store()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_slice_rejects_bad_shard() {
        let db = Database::new(vec![obj(&[(0.0, 0.0)])]);
        let _ = ShardSlice::new(&db, 1);
    }
}
