//! [`ShardedDatabase`]: the columnar store space-partitioned into STR
//! tiles, each tile owning its own global R-tree over a contiguous span.
//!
//! The flat layout keeps one global R-tree over every object MBR. At
//! million-object scale that tree's upper levels become a serial
//! bottleneck and the columnar store a single cache-hostile span. The
//! sharded layout instead
//!
//! 1. runs the Sort-Tile-Recursive slicing of the bulk loader **once at
//!    the object-MBR level** ([`osd_rtree::str_partition`]) to cut the
//!    object set into `shards` spatially coherent tiles,
//! 2. **permutes the columnar store shard-major** so each tile owns a
//!    contiguous sub-span of the coordinate/probability columns (readers
//!    of one shard touch one contiguous memory range), and
//! 3. bulk-loads one **global R-tree per tile** whose payloads are the
//!    *logical* (pre-permutation) object ids.
//!
//! Object ids stay logical everywhere: `object(id)` resolves through the
//! `slot` map to the permuted row, and shard-tree payloads carry logical
//! ids, so NNC results are directly comparable with — and bit-identical
//! to — the flat layout's (`tests/shard_identity.rs`).
//!
//! **One-shard degeneracy.** With `shards <= 1` the STR partition returns
//! the identity order; the builder detects any identity permutation and
//! reuses the base `Arc<InstanceStore>` without copying, and the single
//! shard tree is bulk-loaded exactly like the flat global tree — one
//! shard is the flat database, bit for bit.
//!
//! **Inserts after sharding.** [`ShardedDatabase::try_insert_object`]
//! appends to the store (copy-on-write) and routes the new object to the
//! shard whose tree MBR needs the least volume enlargement (ties: smaller
//! volume, then lower shard id) — classic R-tree subtree choice, lifted to
//! shard granularity. The contiguous-span property describes the initial
//! bulk build only; inserted rows live at the store's tail.

use crate::db::{DbError, DEFAULT_GLOBAL_FANOUT, DEFAULT_LOCAL_FANOUT};
use crate::index::{shard_stats_of, IndexStats, SpatialIndex};
use osd_geom::Mbr;
use osd_rtree::{str_partition, Entry, RTree};
use osd_uncertain::{epoch, Change, EpochLog, InstanceStore, ObjectRef, UncertainObject};
use std::sync::Arc;

/// Layout parameters of a [`ShardedDatabase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Requested number of STR tiles. The slicing may produce a few more
    /// groups than requested (slab rounding); `shard_count()` reports the
    /// actual number. `0` and `1` both mean unsharded.
    pub shards: usize,
    /// Fan-out of each shard's global R-tree.
    pub global_fanout: usize,
    /// Fan-out of the per-object local R-trees.
    pub local_fanout: usize,
}

impl ShardConfig {
    /// `shards` tiles with the default fan-outs.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            global_fanout: DEFAULT_GLOBAL_FANOUT,
            local_fanout: DEFAULT_LOCAL_FANOUT,
        }
    }
}

#[derive(Debug, Clone)]
struct Shard {
    /// Global R-tree of this tile; payloads are logical object ids.
    tree: RTree<usize>,
    /// Contiguous row span `[lo, hi)` of the permuted store covered by the
    /// initial bulk build (later inserts live at the store's tail;
    /// deletes shrink the spans so they keep tiling the surviving rows).
    span: (usize, usize),
}

/// A set of multi-instance objects indexed as STR tiles, each with its own
/// global R-tree over a contiguous span of the shard-major-permuted store.
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    /// Shard-major permutation of the input store (or the input `Arc`
    /// itself when the permutation is the identity).
    store: Arc<InstanceStore>,
    /// Local instance trees, indexed by permuted row.
    local: Vec<RTree<usize>>,
    shards: Vec<Shard>,
    /// Logical id → permuted row (`None` = tombstone).
    slot: Vec<Option<usize>>,
    /// Permuted row → logical id.
    ext: Vec<usize>,
    local_fanout: usize,
    /// Published-mutation log; its length is the snapshot epoch.
    epochs: EpochLog,
}

impl ShardedDatabase {
    /// Indexes `objects` into (about) `shards` STR tiles with default
    /// fan-outs.
    ///
    /// # Panics
    /// Panics if `objects` is empty or dimensionalities are inconsistent.
    /// Use [`ShardedDatabase::try_new`] for untrusted data.
    #[track_caller]
    pub fn new(objects: Vec<UncertainObject>, shards: usize) -> Self {
        match Self::try_new(objects, shards) {
            Ok(db) => db,
            Err(e) => crate::db::FlatDatabase::invalid(e),
        }
    }

    /// Fallible variant of [`ShardedDatabase::new`].
    ///
    /// # Errors
    /// Returns a [`DbError`] describing the first violated invariant.
    pub fn try_new(objects: Vec<UncertainObject>, shards: usize) -> Result<Self, DbError> {
        Self::try_with_config(objects, ShardConfig::with_shards(shards))
    }

    /// Fallible constructor with explicit layout parameters.
    ///
    /// # Errors
    /// Returns a [`DbError`] describing the first violated invariant.
    pub fn try_with_config(
        objects: Vec<UncertainObject>,
        cfg: ShardConfig,
    ) -> Result<Self, DbError> {
        if objects.is_empty() {
            return Err(DbError::Empty);
        }
        let store = InstanceStore::from_objects(&objects).map_err(|e| {
            let object = objects
                .iter()
                .position(|o| o.dim() != objects[0].dim())
                .unwrap_or(0);
            DbError::from_store(e, object)
        })?;
        Self::from_store(Arc::new(store), cfg)
    }

    /// Shards an existing columnar snapshot. When the STR order turns out
    /// to be the identity permutation (always the case for `shards <= 1`),
    /// the snapshot `Arc` is reused without copying.
    ///
    /// # Errors
    /// [`DbError::Empty`] if the store holds no objects.
    pub fn from_store(store: Arc<InstanceStore>, cfg: ShardConfig) -> Result<Self, DbError> {
        if store.is_empty() {
            return Err(DbError::Empty);
        }
        let dim = store.dim();
        let mbrs: Vec<Mbr> = store.iter().map(|o| o.mbr().clone()).collect();
        let groups = str_partition(&mbrs, cfg.shards);
        let ext: Vec<usize> = groups.iter().flatten().copied().collect();
        let identity = ext.iter().enumerate().all(|(row, &id)| row == id);
        let store = if identity {
            store
        } else {
            Arc::new(store.permuted(&ext))
        };
        let mut slot = vec![None; ext.len()];
        for (row, &id) in ext.iter().enumerate() {
            slot[id] = Some(row);
        }
        let local: Vec<RTree<usize>> = store
            .iter()
            .map(|o| RTree::bulk_load_rows(cfg.local_fanout, dim, o.coords()))
            .collect();
        let mut shards = Vec::with_capacity(groups.len());
        let mut lo = 0;
        for group in &groups {
            let hi = lo + group.len();
            let entries: Vec<Entry<usize>> = (lo..hi)
                .map(|row| Entry {
                    mbr: store.object(row).mbr().clone(),
                    item: ext[row],
                })
                .collect();
            shards.push(Shard {
                tree: RTree::bulk_load(cfg.global_fanout, entries),
                span: (lo, hi),
            });
            lo = hi;
        }
        Ok(ShardedDatabase {
            store,
            local,
            shards,
            slot,
            ext,
            local_fanout: cfg.local_fanout,
            epochs: EpochLog::default(),
        })
    }

    /// The row span `[lo, hi)` of the permuted store covered by shard
    /// `shard`'s initial bulk build, shrunk as deletes compact rows out.
    pub fn shard_span(&self, shard: usize) -> (usize, usize) {
        self.shards[shard].span
    }

    /// The permuted row holding live logical object `id`.
    ///
    /// # Panics
    /// Panics if `id` is tombstoned or out of range.
    pub fn row_of(&self, id: usize) -> usize {
        match self.row_of_checked(id) {
            Ok(row) => row,
            Err(e) => crate::db::FlatDatabase::invalid(e),
        }
    }

    /// The permuted row holding live object `id`.
    ///
    /// # Errors
    /// [`DbError::Dead`] if `id` is tombstoned or out of range.
    fn row_of_checked(&self, id: usize) -> Result<usize, DbError> {
        self.slot
            .get(id)
            .copied()
            .flatten()
            .ok_or(DbError::Dead { object: id })
    }

    /// Appends a new object, routing it to the shard whose tree MBR needs
    /// the least volume enlargement. Returns the new (logical) object id.
    ///
    /// # Panics
    /// Panics if the object's dimensionality differs from the database's.
    /// Use [`ShardedDatabase::try_insert_object`] for untrusted data.
    #[track_caller]
    pub fn insert_object(&mut self, object: UncertainObject) -> usize {
        match self.try_insert_object(object) {
            Ok(id) => id,
            Err(e) => crate::db::FlatDatabase::invalid(e),
        }
    }

    /// Fallible variant of [`ShardedDatabase::insert_object`].
    ///
    /// If the snapshot is currently shared, the columns are cloned once
    /// before the append (copy-on-write). The new object's permuted row
    /// equals its logical id (both are appended at the tail), so existing
    /// spans and the slot/ext maps stay consistent.
    ///
    /// # Errors
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    pub fn try_insert_object(&mut self, object: UncertainObject) -> Result<usize, DbError> {
        let id = self.slot.len();
        let row =
            epoch::append(&mut self.store, &object).map_err(|e| DbError::from_store(e, id))?;
        debug_assert_eq!(row, self.ext.len(), "appends land at the store tail");
        let view = self.store.object(row);
        let mbr = view.mbr().clone();
        self.local.push(RTree::bulk_load_rows(
            self.local_fanout,
            view.dim(),
            view.coords(),
        ));
        self.ext.push(id);
        self.slot.push(Some(row));
        let shard = self.choose_shard(&mbr);
        self.shards[shard].tree.insert(mbr, id);
        self.epochs.record(Change::Inserted(id));
        Ok(id)
    }

    /// Deletes live object `id`: its rows are compacted out of the
    /// permuted snapshot (copy-on-write), the owning shard's tree entry
    /// is removed with condensation, and every shard span covering a
    /// later row shrinks so the spans keep tiling the surviving rows.
    ///
    /// # Panics
    /// Panics if `id` is not live or the delete would empty the database.
    /// Use [`ShardedDatabase::try_delete_object`] for untrusted input.
    #[track_caller]
    pub fn delete_object(&mut self, id: usize) {
        if let Err(e) = self.try_delete_object(id) {
            crate::db::FlatDatabase::invalid(e)
        }
    }

    /// Fallible variant of [`ShardedDatabase::delete_object`].
    ///
    /// # Errors
    /// [`DbError::Dead`] if `id` is tombstoned or out of range;
    /// [`DbError::Empty`] when the delete would leave no live objects.
    pub fn try_delete_object(&mut self, id: usize) -> Result<(), DbError> {
        let row = self.row_of_checked(id)?;
        if self.store.len() == 1 {
            return Err(DbError::Empty);
        }
        let mbr = self.store.object(row).mbr().clone();
        // Every live id lives in exactly one shard tree; condense the
        // owner (remove_item leaves non-owning trees untouched).
        let removed = self
            .shards
            .iter_mut()
            .any(|s| s.tree.remove_item(&mbr, |&x| x == id).is_some());
        debug_assert!(removed, "live id {id} must be in some shard tree");
        epoch::remove(&mut self.store, row);
        self.local.remove(row);
        self.ext.remove(row);
        self.slot[id] = None;
        for s in self.slot.iter_mut().flatten() {
            if *s > row {
                *s -= 1;
            }
        }
        for shard in &mut self.shards {
            let (lo, hi) = shard.span;
            shard.span = if row < lo {
                (lo - 1, hi - 1)
            } else if row < hi {
                (lo, hi - 1)
            } else {
                (lo, hi)
            };
        }
        self.epochs.record(Change::Deleted(id));
        Ok(())
    }

    /// Replaces live object `id` in place (same logical id): the rows are
    /// respliced in the snapshot (copy-on-write), the local tree rebuilt,
    /// and the global entry re-routed to the shard whose tree MBR needs
    /// the least enlargement — the same rule as insert.
    ///
    /// # Panics
    /// Panics if `id` is not live or dimensionalities mismatch. Use
    /// [`ShardedDatabase::try_update_object`] for untrusted input.
    #[track_caller]
    pub fn update_object(&mut self, id: usize, object: UncertainObject) {
        if let Err(e) = self.try_update_object(id, object) {
            crate::db::FlatDatabase::invalid(e)
        }
    }

    /// Fallible variant of [`ShardedDatabase::update_object`].
    ///
    /// # Errors
    /// [`DbError::Dead`] if `id` is tombstoned or out of range;
    /// [`DbError::DimensionMismatch`] on dimensionality mismatch.
    pub fn try_update_object(&mut self, id: usize, object: UncertainObject) -> Result<(), DbError> {
        let row = self.row_of_checked(id)?;
        let old_mbr = self.store.object(row).mbr().clone();
        epoch::replace(&mut self.store, row, &object).map_err(|e| DbError::from_store(e, id))?;
        let removed = self
            .shards
            .iter_mut()
            .any(|s| s.tree.remove_item(&old_mbr, |&x| x == id).is_some());
        debug_assert!(removed, "live id {id} must be in some shard tree");
        let view = self.store.object(row);
        self.local[row] = RTree::bulk_load_rows(self.local_fanout, view.dim(), view.coords());
        let mbr = view.mbr().clone();
        let shard = self.choose_shard(&mbr);
        self.shards[shard].tree.insert(mbr, id);
        self.epochs.record(Change::Updated(id));
        Ok(())
    }

    /// The shard whose tree MBR needs the least volume enlargement to
    /// admit `mbr` (ties: smaller current volume, then lower shard id).
    fn choose_shard(&self, mbr: &Mbr) -> usize {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, shard) in self.shards.iter().enumerate() {
            let key = match shard.tree.mbr() {
                Some(current) => {
                    let grown = current.union(mbr).volume();
                    (grown - current.volume(), current.volume())
                }
                // An empty shard admits anything for free.
                None => (0.0, 0.0),
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

impl SpatialIndex for ShardedDatabase {
    fn len(&self) -> usize {
        self.slot.len()
    }

    fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    fn live_len(&self) -> usize {
        self.store.len()
    }

    fn is_live(&self, id: usize) -> bool {
        self.slot.get(id).copied().flatten().is_some()
    }

    fn changes_since(&self, since: u64) -> Option<Vec<Change>> {
        self.epochs.changes_since(since)
    }

    fn try_insert(&mut self, object: UncertainObject) -> Result<usize, DbError> {
        self.try_insert_object(object)
    }

    fn try_delete(&mut self, id: usize) -> Result<(), DbError> {
        self.try_delete_object(id)
    }

    fn try_update(&mut self, id: usize, object: UncertainObject) -> Result<(), DbError> {
        self.try_update_object(id, object)
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }

    fn object(&self, id: usize) -> ObjectRef<'_> {
        self.store.object(self.row_of(id))
    }

    fn local_tree(&self, id: usize) -> &RTree<usize> {
        &self.local[self.row_of(id)]
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_tree(&self, shard: usize) -> &RTree<usize> {
        &self.shards[shard].tree
    }

    fn index_stats(&self) -> IndexStats {
        let shards: Vec<_> = self
            .shards
            .iter()
            .map(|s| shard_stats_of(self, &s.tree))
            .collect();
        IndexStats {
            objects: self.live_len(),
            instances: self.store.instance_count(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact expected values are intentional in tests.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::db::Database;
    use osd_geom::Point;

    fn obj(pts: &[(f64, f64)]) -> UncertainObject {
        UncertainObject::uniform(pts.iter().map(|&(x, y)| Point::new(vec![x, y])).collect())
    }

    fn grid(n: usize) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 3.0;
                let y = (i / 10) as f64 * 3.0;
                obj(&[(x, y), (x + 1.0, y + 1.0)])
            })
            .collect()
    }

    #[test]
    fn one_shard_reuses_the_flat_snapshot_arc() {
        let flat = Database::new(grid(25));
        let sharded =
            ShardedDatabase::from_store(Arc::clone(flat.store()), ShardConfig::with_shards(1))
                .unwrap();
        // Identity permutation: the snapshot is shared, not copied.
        assert!(Arc::ptr_eq(sharded.store(), flat.store()));
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.shard_span(0), (0, 25));
        for id in 0..25 {
            assert_eq!(sharded.row_of(id), id);
        }
    }

    #[test]
    fn sharding_permutes_but_preserves_logical_objects() {
        let objects = grid(40);
        let flat = Database::new(objects.clone());
        let sharded = ShardedDatabase::new(objects, 4);
        assert!(sharded.shard_count() >= 4);
        assert_eq!(sharded.len(), 40);
        // Every logical id resolves to bit-identical instance data.
        for id in 0..40 {
            let a = flat.object(id);
            let b = sharded.object(id);
            assert_eq!(a.coords(), b.coords(), "object {id}");
            assert_eq!(a.probs(), b.probs(), "object {id}");
            assert_eq!(a.mbr(), b.mbr(), "object {id}");
        }
        // Shard trees partition the logical id space.
        let mut seen: Vec<usize> = (0..sharded.shard_count())
            .flat_map(|s| sharded.shard_tree(s).items().into_iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
        // Spans tile the permuted store contiguously.
        let mut lo = 0;
        for s in 0..sharded.shard_count() {
            let (a, b) = sharded.shard_span(s);
            assert_eq!(a, lo);
            assert_eq!(b - a, sharded.shard_tree(s).len());
            lo = b;
        }
        assert_eq!(lo, 40);
    }

    #[test]
    fn more_shards_than_objects_yields_singletons() {
        let sharded = ShardedDatabase::new(grid(3), 64);
        assert_eq!(sharded.shard_count(), 3);
        for s in 0..3 {
            assert_eq!(sharded.shard_tree(s).len(), 1);
        }
        let stats = sharded.index_stats();
        assert_eq!(stats.objects, 3);
        assert_eq!(stats.instances, 6);
        assert_eq!(stats.shards.len(), 3);
        assert!(stats.shards.iter().all(|s| s.objects == 1));
    }

    #[test]
    fn coincident_objects_still_partition_cleanly() {
        // All objects in one tile position: STR still cuts the run into
        // groups (by sort order), and every id must survive the round trip.
        let objects: Vec<_> = (0..12).map(|_| obj(&[(5.0, 5.0), (5.5, 5.5)])).collect();
        let sharded = ShardedDatabase::new(objects, 3);
        let mut seen: Vec<usize> = (0..sharded.shard_count())
            .flat_map(|s| sharded.shard_tree(s).items().into_iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        for id in 0..12 {
            assert_eq!(sharded.object(id).row(0), &[5.0, 5.0]);
        }
    }

    #[test]
    fn insert_after_sharding_extends_one_shard() {
        let mut sharded = ShardedDatabase::new(grid(20), 4);
        let before: usize = (0..sharded.shard_count())
            .map(|s| sharded.shard_tree(s).len())
            .sum();
        let id = sharded.insert_object(obj(&[(2.0, 2.0), (2.5, 2.5)]));
        assert_eq!(id, 20);
        assert_eq!(sharded.len(), 21);
        assert_eq!(sharded.object(20).row(0), &[2.0, 2.0]);
        let after: usize = (0..sharded.shard_count())
            .map(|s| sharded.shard_tree(s).len())
            .sum();
        assert_eq!(after, before + 1);
        // The local tree exists and serves NN queries.
        let q = Point::new(vec![2.1, 2.1]);
        assert!(sharded.local_tree(20).nearest(&q).is_some());
    }

    #[test]
    fn insert_is_copy_on_write_for_shared_snapshots() {
        let mut sharded = ShardedDatabase::new(grid(8), 2);
        let before = Arc::clone(sharded.store());
        sharded.insert_object(obj(&[(50.0, 50.0)]));
        assert_eq!(before.len(), 8);
        assert_eq!(sharded.store().len(), 9);
        assert!(!Arc::ptr_eq(sharded.store(), &before));
    }

    #[test]
    fn insert_wrong_dim_reports_would_be_id() {
        let mut sharded = ShardedDatabase::new(grid(4), 2);
        let e = sharded
            .try_insert_object(UncertainObject::uniform(vec![Point::new(vec![1.0])]))
            .unwrap_err();
        assert_eq!(
            e,
            DbError::DimensionMismatch {
                object: 4,
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn empty_and_mixed_inputs_are_rejected() {
        assert_eq!(
            ShardedDatabase::try_new(vec![], 4).unwrap_err(),
            DbError::Empty
        );
        let mixed = vec![
            obj(&[(0.0, 0.0)]),
            UncertainObject::uniform(vec![Point::new(vec![1.0])]),
        ];
        assert_eq!(
            ShardedDatabase::try_new(mixed, 4).unwrap_err(),
            DbError::DimensionMismatch {
                object: 1,
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn delete_condenses_owner_and_shrinks_spans() {
        let mut sharded = ShardedDatabase::new(grid(24), 4);
        let before_live = sharded.live_len();
        let row = sharded.row_of(7);
        sharded.delete_object(7);
        assert_eq!(sharded.len(), 24);
        assert_eq!(sharded.live_len(), before_live - 1);
        assert!(!sharded.is_live(7));
        sharded.store().validate().unwrap();
        // Shard trees partition the surviving id space.
        let mut seen: Vec<usize> = (0..sharded.shard_count())
            .flat_map(|s| sharded.shard_tree(s).items().into_iter().copied())
            .collect();
        seen.sort_unstable();
        let want: Vec<usize> = (0..24).filter(|&i| i != 7).collect();
        assert_eq!(seen, want);
        // Spans still tile the compacted row space contiguously.
        let mut lo = 0;
        for s in 0..sharded.shard_count() {
            let (a, b) = sharded.shard_span(s);
            assert_eq!(a, lo);
            lo = b;
        }
        assert_eq!(lo, sharded.live_len());
        // Every survivor resolves to its original bits.
        for id in want {
            let x = (id % 10) as f64 * 3.0;
            let y = (id / 10) as f64 * 3.0;
            assert_eq!(sharded.object(id).row(0), &[x, y], "object {id}");
        }
        let _ = row;
    }

    #[test]
    fn update_reroutes_to_the_best_shard() {
        let mut sharded = ShardedDatabase::new(grid(20), 4);
        // Move object 3 across the plane; it should leave its old shard
        // tree and appear in exactly one tree under the same id.
        sharded.update_object(3, obj(&[(27.0, 27.0), (27.5, 27.5)]));
        assert_eq!(sharded.len(), 20);
        assert_eq!(sharded.live_len(), 20);
        sharded.store().validate().unwrap();
        assert_eq!(sharded.object(3).row(0), &[27.0, 27.0]);
        let holders: Vec<usize> = (0..sharded.shard_count())
            .filter(|&s| sharded.shard_tree(s).items().into_iter().any(|&i| i == 3))
            .collect();
        assert_eq!(holders.len(), 1);
        // The full id set is still partitioned across the trees.
        let total: usize = (0..sharded.shard_count())
            .map(|s| sharded.shard_tree(s).len())
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn interleaved_mutations_keep_epoch_log_consistent() {
        let mut sharded = ShardedDatabase::new(grid(9), 3);
        sharded.delete_object(2);
        let id = sharded.insert_object(obj(&[(40.0, 40.0)]));
        assert_eq!(id, 9, "tombstoned ids are never reused");
        sharded.update_object(id, obj(&[(41.0, 41.0)]));
        assert_eq!(sharded.epoch(), 3);
        assert_eq!(
            sharded.changes_since(0),
            Some(vec![
                Change::Deleted(2),
                Change::Inserted(9),
                Change::Updated(9)
            ])
        );
        assert_eq!(
            sharded.try_delete_object(2).unwrap_err(),
            DbError::Dead { object: 2 }
        );
        // Deleting a tail insert leaves the bulk spans untouched.
        let spans: Vec<_> = (0..sharded.shard_count())
            .map(|s| sharded.shard_span(s))
            .collect();
        sharded.delete_object(9);
        let after: Vec<_> = (0..sharded.shard_count())
            .map(|s| sharded.shard_span(s))
            .collect();
        assert_eq!(spans, after);
        sharded.store().validate().unwrap();
    }

    #[test]
    fn index_stats_cover_all_shards() {
        let sharded = ShardedDatabase::new(grid(30), 3);
        let stats = sharded.index_stats();
        assert_eq!(stats.objects, 30);
        assert_eq!(stats.instances, 60);
        assert_eq!(stats.shards.len(), sharded.shard_count());
        assert_eq!(stats.shards.iter().map(|s| s.objects).sum::<usize>(), 30);
        assert_eq!(stats.shards.iter().map(|s| s.instances).sum::<usize>(), 60);
        let whole = sharded.store().approx_bytes();
        let summed: usize = stats.shards.iter().map(|s| s.approx_bytes).sum();
        assert_eq!(summed, whole);
    }
}
